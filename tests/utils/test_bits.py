"""Tests for bit-manipulation helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bits import (
    bits_to_int,
    int_to_bits,
    pack_sub_byte,
    required_bits,
    unpack_sub_byte,
)


class TestRequiredBits:
    def test_powers_of_two(self):
        assert required_bits(2) == 1
        assert required_bits(64) == 6
        assert required_bits(256) == 8

    def test_non_powers_round_up(self):
        assert required_bits(3) == 2
        assert required_bits(65) == 7
        assert required_bits(100) == 7

    def test_single_value_needs_one_bit(self):
        assert required_bits(1) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            required_bits(0)


class TestIntToBits:
    def test_known_value_msb_first(self):
        np.testing.assert_array_equal(int_to_bits(np.array(5), 4), [0, 1, 0, 1])

    def test_known_value_lsb_first(self):
        np.testing.assert_array_equal(
            int_to_bits(np.array(5), 4, msb_first=False), [1, 0, 1, 0]
        )

    def test_shape_is_extended(self):
        bits = int_to_bits(np.arange(6).reshape(2, 3), 3)
        assert bits.shape == (2, 3, 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(np.array([-1]), 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(np.array([16]), 4)

    @given(
        values=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=32),
        msb_first=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_with_bits_to_int(self, values, msb_first):
        arr = np.array(values)
        bits = int_to_bits(arr, 8, msb_first=msb_first)
        np.testing.assert_array_equal(bits_to_int(bits, msb_first=msb_first), arr)


class TestBitsToInt:
    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits_to_int(np.array([0, 2, 1]))


class TestSubBytePacking:
    def test_pack_length(self):
        packed = pack_sub_byte(np.arange(10) % 16, 4)
        assert packed.dtype == np.uint8
        assert len(packed) == 5  # 10 nibbles -> 5 bytes

    def test_rejects_values_too_large(self):
        with pytest.raises(ValueError):
            pack_sub_byte(np.array([4]), 2)

    def test_rejects_bad_bitwidth(self):
        with pytest.raises(ValueError):
            pack_sub_byte(np.array([0]), 9)

    def test_unpack_needs_enough_bits(self):
        packed = pack_sub_byte(np.array([1, 2, 3]), 4)
        with pytest.raises(ValueError):
            unpack_sub_byte(packed, 4, count=10)

    @given(
        bitwidth=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, bitwidth, data):
        count = data.draw(st.integers(min_value=1, max_value=40))
        values = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=(1 << bitwidth) - 1),
                min_size=count,
                max_size=count,
            )
        )
        arr = np.array(values)
        packed = pack_sub_byte(arr, bitwidth)
        np.testing.assert_array_equal(unpack_sub_byte(packed, bitwidth, count), arr)
