"""Tests for table formatting and unit helpers."""

import pytest

from repro.utils.tabulate import format_table
from repro.utils.units import bits_to_bytes, bytes_to_kib, human_bytes


class TestFormatTable:
    def test_basic_alignment(self):
        table = format_table([[1, "ab"], [22, "c"]], headers=["x", "y"])
        lines = table.splitlines()
        assert lines[0].startswith("x")
        assert len(lines) == 4  # header, rule, two rows

    def test_none_renders_as_slash(self):
        table = format_table([["net", None]], headers=["name", "latency"])
        assert "/" in table

    def test_title_prepended(self):
        assert format_table([[1]], title="T7").startswith("T7")

    def test_float_formatting(self):
        table = format_table([[1.23456]], float_fmt=".1f")
        assert "1.2" in table
        assert "1.23" not in table

    def test_empty_rows(self):
        assert format_table([], title="empty") == "empty\n"

    def test_ragged_rows_padded(self):
        table = format_table([[1, 2], [3]])
        assert len(table.splitlines()) == 2


class TestUnits:
    def test_bits_to_bytes(self):
        assert bits_to_bytes(16) == 2.0

    def test_bits_to_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            bits_to_bytes(-1)

    def test_bytes_to_kib(self):
        assert bytes_to_kib(2048) == 2.0

    def test_human_bytes_ranges(self):
        assert human_bytes(10) == "10 B"
        assert human_bytes(2048) == "2.0 KiB"
        assert "MiB" in human_bytes(3 * 1024 * 1024)

    def test_human_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            human_bytes(-5)
