"""Tests for RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import new_rng, spawn_rngs, temp_seed


class TestNewRng:
    def test_seed_reproducibility(self):
        assert new_rng(42).integers(1000) == new_rng(42).integers(1000)

    def test_passthrough_of_generator(self):
        gen = np.random.default_rng(0)
        assert new_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(new_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_children_are_independent(self):
        children = spawn_rngs(0, 3)
        draws = [child.integers(10**9) for child in children]
        assert len(set(draws)) == 3

    def test_count_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawning_from_generator(self):
        children = spawn_rngs(np.random.default_rng(1), 2)
        assert len(children) == 2

    def test_deterministic_given_seed(self):
        a = [g.integers(10**9) for g in spawn_rngs(7, 4)]
        b = [g.integers(10**9) for g in spawn_rngs(7, 4)]
        assert a == b


class TestTempSeed:
    def test_restores_global_state(self):
        np.random.seed(123)
        before = np.random.get_state()[1].copy()
        with temp_seed(7):
            np.random.random(10)
        after = np.random.get_state()[1]
        np.testing.assert_array_equal(before, after)

    def test_none_is_noop(self):
        with temp_seed(None):
            pass
