"""Tests for the uniform quantization substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization import (
    ActivationQuantizer,
    CalibrationMethod,
    QuantParams,
    calibrate_iterative,
    calibrate_minmax,
    calibrate_percentile,
    dequantize,
    fake_quantize,
    quantize,
    quantize_weight_tensor,
)
from repro.quantization.quantizer import quantization_mse


class TestQuantParams:
    def test_unsigned_range(self):
        params = QuantParams(scale=0.1, zero_point=0, bitwidth=8)
        assert params.qmin == 0 and params.qmax == 255
        assert params.num_levels == 256

    def test_signed_range(self):
        params = QuantParams(scale=0.1, zero_point=0, bitwidth=8, signed=True)
        assert params.qmin == -128 and params.qmax == 127

    def test_from_range_covers_interval(self):
        params = QuantParams.from_range(-1.0, 3.0, 8)
        assert dequantize(params.qmin, params) <= -1.0 + params.scale
        assert dequantize(params.qmax, params) >= 3.0 - params.scale

    def test_from_range_includes_zero_exactly(self):
        params = QuantParams.from_range(0.5, 3.0, 8)
        assert dequantize(quantize(np.array(0.0), params), params) == 0.0

    def test_degenerate_range(self):
        params = QuantParams.from_range(0.0, 0.0, 4)
        assert params.scale > 0

    def test_symmetric_weights(self):
        params = QuantParams.symmetric(2.0, 8)
        assert params.signed and params.zero_point == 0
        assert params.scale == pytest.approx(2.0 / 127)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantParams(scale=0.0, zero_point=0, bitwidth=8)
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, zero_point=300, bitwidth=8)
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, zero_point=0, bitwidth=0)
        with pytest.raises(ValueError):
            QuantParams.from_range(2.0, 1.0, 8)


class TestQuantizeDequantize:
    def test_roundtrip_error_bounded_by_one_step(self):
        params = QuantParams.from_range(0.0, 4.0, 8)
        x = np.linspace(0.0, 4.0, 101)
        error = np.abs(fake_quantize(x, params) - x)
        assert error.max() <= params.scale / 2 + 1e-12

    def test_clipping_outside_range(self):
        params = QuantParams.from_range(0.0, 1.0, 4)
        assert quantize(np.array([10.0]), params)[0] == params.qmax
        assert quantize(np.array([-10.0]), params)[0] == params.qmin

    def test_fake_quantize_idempotent(self):
        params = QuantParams.from_range(-1.0, 1.0, 6)
        x = np.random.default_rng(0).normal(size=100)
        once = fake_quantize(x, params)
        np.testing.assert_allclose(fake_quantize(once, params), once, atol=1e-12)

    @given(
        bitwidth=st.integers(2, 8),
        low=st.floats(-10, 0),
        high=st.floats(0.1, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip_bounded(self, bitwidth, low, high):
        params = QuantParams.from_range(low, high, bitwidth)
        x = np.linspace(low, high, 37)
        error = np.abs(fake_quantize(x, params) - x)
        assert error.max() <= params.scale / 2 + 1e-9

    def test_more_bits_never_hurt(self):
        x = np.random.default_rng(1).normal(size=500)
        mses = [
            quantization_mse(x, QuantParams.from_range(x.min(), x.max(), b, signed=False))
            for b in (2, 4, 6, 8)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(mses, mses[1:]))


class TestCalibration:
    def test_minmax_covers_extremes(self):
        samples = np.array([-2.0, 0.0, 5.0])
        params = calibrate_minmax(samples, 8)
        assert quantize(np.array([5.0]), params)[0] == params.qmax

    def test_percentile_clips_outliers(self):
        rng = np.random.default_rng(0)
        samples = np.concatenate([rng.normal(size=10000), [100.0]])
        minmax = calibrate_minmax(samples, 8)
        pct = calibrate_percentile(samples, 8, percentile=99.5)
        assert pct.scale < minmax.scale

    def test_iterative_beats_or_matches_minmax_mse(self):
        rng = np.random.default_rng(1)
        samples = np.concatenate([rng.normal(size=5000), rng.normal(scale=8.0, size=50)])
        samples = np.abs(samples)
        minmax_mse = quantization_mse(samples, calibrate_minmax(samples, 4))
        iterative_mse = quantization_mse(samples, calibrate_iterative(samples, 4))
        assert iterative_mse <= minmax_mse + 1e-12

    def test_iterative_on_all_zero_samples(self):
        params = calibrate_iterative(np.zeros(100), 8)
        assert params.scale > 0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            calibrate_minmax(np.array([]), 8)
        with pytest.raises(ValueError):
            calibrate_iterative(np.array([]), 8)
        with pytest.raises(ValueError):
            calibrate_percentile(np.array([1.0]), 8, percentile=40)


class TestActivationQuantizer:
    def test_observe_then_freeze_then_quantize(self):
        quantizer = ActivationQuantizer(bitwidth=4, method=CalibrationMethod.MINMAX)
        x = np.random.default_rng(0).uniform(0, 2, size=(4, 8))
        out = quantizer(x)
        np.testing.assert_array_equal(out, x)  # observing: pass-through
        params = quantizer.freeze()
        assert params.bitwidth == 4
        quantized = quantizer(x)
        assert not np.allclose(quantized, x)
        assert np.abs(quantized - x).max() <= params.scale / 2 + 1e-12

    def test_freeze_without_observation_raises(self):
        with pytest.raises(RuntimeError):
            ActivationQuantizer().freeze()

    def test_set_bitwidth_reuses_samples(self):
        quantizer = ActivationQuantizer(bitwidth=8, method=CalibrationMethod.MINMAX)
        quantizer(np.random.default_rng(0).uniform(0, 1, size=100))
        quantizer.freeze()
        params4 = quantizer.set_bitwidth(4)
        assert params4.bitwidth == 4
        assert params4.scale > 0

    def test_straight_through_gradient(self):
        quantizer = ActivationQuantizer(bitwidth=8, method=CalibrationMethod.MINMAX)
        x = np.random.default_rng(1).uniform(0, 1, size=(3, 3))
        quantizer(x)
        quantizer.freeze()
        quantizer(x)
        grad = quantizer.backward(np.ones((3, 3)))
        np.testing.assert_array_equal(grad, np.ones((3, 3)))

    def test_subsampling_bounds_memory(self):
        quantizer = ActivationQuantizer(bitwidth=8, max_samples=10)
        quantizer(np.arange(1000, dtype=float))
        assert quantizer._samples[0].size <= 101

    def test_reset(self):
        quantizer = ActivationQuantizer(bitwidth=8)
        quantizer(np.ones(10))
        quantizer.freeze()
        quantizer.reset()
        assert quantizer.observing and quantizer.params is None


class TestWeightQuantization:
    def test_weight_roundtrip_error(self):
        weight = np.random.default_rng(0).normal(size=(8, 8))
        q, params = quantize_weight_tensor(weight, bitwidth=8)
        error = np.abs(dequantize(q, params) - weight)
        assert error.max() <= params.scale / 2 + 1e-12

    def test_zero_weight_tensor(self):
        q, params = quantize_weight_tensor(np.zeros((2, 2)))
        assert params.scale > 0
        np.testing.assert_array_equal(q, 0)
