"""Tests for the temporal pattern-stream generator (streaming workloads)."""

import numpy as np
import pytest

from repro.datasets import PatternLibrary, PatternStream


@pytest.fixture(scope="module")
def library():
    return PatternLibrary(num_classes=4, channels=3, image_size=32, seed=0)


def _changed_fraction(prev, cur):
    changed = np.any(prev != cur, axis=0)
    return changed.mean()


def test_frame_shape_and_determinism(library):
    a = library.stream(1, change_fraction=0.1, rng=7)
    b = library.stream(1, change_fraction=0.1, rng=7)
    for _ in range(5):
        fa, fb = a.next(), b.next()
        assert fa.shape == (3, 32, 32)
        np.testing.assert_array_equal(fa, fb)


def test_change_fraction_is_localized(library):
    stream = library.stream(0, change_fraction=0.1, rng=3)
    prev = stream.frame
    fractions = []
    for _ in range(20):
        cur = stream.next()
        fractions.append(_changed_fraction(prev, cur))
        prev = cur
    # Each frame changes a compact patch of roughly the requested area.
    assert 0.0 < np.mean(fractions) <= 0.2


def test_zero_change_fraction_is_static(library):
    stream = library.stream(2, change_fraction=0.0, rng=1)
    first = stream.frame
    for _ in range(3):
        np.testing.assert_array_equal(stream.next(), first)


def test_full_change_fraction_touches_whole_frame(library):
    stream = library.stream(2, change_fraction=1.0, rng=5)
    prev = stream.frame
    cur = stream.next()
    assert _changed_fraction(prev, cur) == 1.0


def test_take_stacks_frames(library):
    stream = library.stream(3, change_fraction=0.25, rng=0)
    frames = stream.take(4)
    assert frames.shape == (4, 3, 32, 32)
    assert stream.frames == 4


def test_invalid_parameters(library):
    with pytest.raises(ValueError):
        PatternStream(library, 0, change_fraction=1.5)
    with pytest.raises(ValueError):
        PatternStream(library, 0, drift=-0.1)
