"""Tests for the synthetic dataset substitutes."""

import numpy as np
import pytest

from repro.datasets import (
    PatternLibrary,
    SyntheticCIFAR10,
    SyntheticQuickDraw,
    make_classification_split,
)


class TestPatternLibrary:
    def test_sample_shape(self):
        lib = PatternLibrary(num_classes=5, channels=3, image_size=16, seed=0)
        sample = lib.sample(2, rng=0)
        assert sample.shape == (3, 16, 16)

    def test_deterministic_given_seeds(self):
        lib_a = PatternLibrary(num_classes=4, channels=1, image_size=12, seed=7)
        lib_b = PatternLibrary(num_classes=4, channels=1, image_size=12, seed=7)
        np.testing.assert_allclose(lib_a.sample(1, rng=3), lib_b.sample(1, rng=3))

    def test_different_classes_have_different_prototypes(self):
        lib = PatternLibrary(num_classes=3, channels=1, image_size=16, seed=0)
        assert not np.allclose(lib.prototypes[0], lib.prototypes[1])

    def test_class_index_validation(self):
        lib = PatternLibrary(num_classes=3, channels=1, image_size=16, seed=0)
        with pytest.raises(ValueError):
            lib.sample(3)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PatternLibrary(num_classes=1, channels=1, image_size=16)
        with pytest.raises(ValueError):
            PatternLibrary(num_classes=3, channels=0, image_size=16)
        with pytest.raises(ValueError):
            PatternLibrary(num_classes=3, channels=1, image_size=2, base_resolution=5)

    def test_sample_batch(self):
        lib = PatternLibrary(num_classes=3, channels=2, image_size=8, seed=0)
        images, labels = lib.sample_batch(np.array([0, 1, 2, 0]), rng=1)
        assert images.shape == (4, 2, 8, 8)
        np.testing.assert_array_equal(labels, [0, 1, 2, 0])


class TestSyntheticDatasets:
    def test_cifar_shapes_and_labels(self):
        ds = SyntheticCIFAR10(samples_per_class=3, seed=0)
        assert ds.inputs.shape == (30, 3, 32, 32)
        assert ds.input_shape == (3, 32, 32)
        assert set(ds.targets.tolist()) == set(range(10))
        counts = np.bincount(ds.targets)
        assert np.all(counts == 3)

    def test_quickdraw_shapes(self):
        ds = SyntheticQuickDraw(samples_per_class=2, num_classes=7, seed=0)
        assert ds.inputs.shape == (14, 1, 28, 28)
        assert ds.num_classes == 7

    def test_normalization(self):
        ds = SyntheticCIFAR10(samples_per_class=4, seed=0)
        assert abs(ds.inputs.mean()) < 1e-8
        assert abs(ds.inputs.std() - 1.0) < 1e-6

    def test_normalize_false_keeps_raw_values(self):
        ds = SyntheticCIFAR10(samples_per_class=4, seed=0, normalize=False)
        assert ds.normalization == (0.0, 1.0)

    def test_reproducible_from_seed(self):
        a = SyntheticCIFAR10(samples_per_class=2, seed=5)
        b = SyntheticCIFAR10(samples_per_class=2, seed=5)
        np.testing.assert_allclose(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.targets, b.targets)

    def test_different_seeds_differ(self):
        a = SyntheticCIFAR10(samples_per_class=2, seed=1)
        b = SyntheticCIFAR10(samples_per_class=2, seed=2)
        assert not np.allclose(a.inputs, b.inputs)

    def test_invalid_samples_per_class(self):
        with pytest.raises(ValueError):
            SyntheticCIFAR10(samples_per_class=0)


class TestClassificationSplit:
    def test_train_test_share_prototypes_but_not_samples(self):
        train, test = make_classification_split(
            SyntheticCIFAR10, train_per_class=3, test_per_class=2, seed=0
        )
        assert train.library is test.library
        assert len(train) == 30 and len(test) == 20

    def test_split_is_learnable_by_a_linear_probe(self):
        # A linear classifier on raw pixels should beat chance by a wide margin,
        # establishing that the synthetic task carries class signal.
        train, test = make_classification_split(
            SyntheticCIFAR10, train_per_class=20, test_per_class=10, seed=0, noise_std=0.3
        )
        x_train = train.inputs.reshape(len(train), -1)
        x_test = test.inputs.reshape(len(test), -1)
        # Ridge-regularised least squares onto one-hot targets.
        y = np.eye(10)[train.targets]
        gram = x_train.T @ x_train + 10.0 * np.eye(x_train.shape[1])
        weights = np.linalg.solve(gram, x_train.T @ y)
        predictions = (x_test @ weights).argmax(axis=1)
        accuracy = (predictions == test.targets).mean()
        assert accuracy > 0.5  # chance is 0.1
