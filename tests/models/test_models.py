"""Tests for the model zoo."""

import numpy as np
import pytest

from repro.models import (
    MODEL_REGISTRY,
    MobileNetV2,
    TinyConv,
    available_models,
    create_model,
    register_model,
    resnet10,
    resnet14,
    resnet18,
    resnet_s,
)
from repro.models.blocks import BasicBlock, InvertedResidual
from repro.nn import CrossEntropyLoss
from repro.nn.gradcheck import check_module_gradients


class TestRegistry:
    def test_paper_networks_present(self):
        for name in ("tinyconv", "resnet_s", "resnet10", "resnet14", "mobilenetv2"):
            assert name in available_models()

    def test_tiny_variants_present(self):
        assert "resnet10_tiny" in available_models()
        assert "mobilenetv2_tiny" in available_models()

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            create_model("not_a_model")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_model("tinyconv")(lambda **kwargs: None)

    def test_create_model_forwards_kwargs(self):
        model = create_model("tinyconv", num_classes=7, in_channels=1, rng=0, width_mult=0.25)
        out = model(np.zeros((1, 1, 32, 32)))
        assert out.shape == (1, 7)


class TestForwardShapes:
    @pytest.mark.parametrize(
        "factory,channels",
        [(resnet_s, 3), (resnet10, 3), (resnet14, 3)],
    )
    def test_resnet_output_shape(self, factory, channels):
        model = factory(num_classes=10, in_channels=channels, width_mult=0.25, rng=0)
        out = model(np.zeros((2, channels, 32, 32)))
        assert out.shape == (2, 10)

    def test_resnet18_runs_at_reduced_width(self):
        model = resnet18(num_classes=10, width_mult=0.125, rng=0)
        assert model(np.zeros((1, 3, 32, 32))).shape == (1, 10)

    def test_tinyconv_output_shape(self):
        model = TinyConv(num_classes=10, in_channels=3, rng=0)
        assert model(np.zeros((2, 3, 32, 32))).shape == (2, 10)

    def test_tinyconv_rejects_bad_image_size(self):
        with pytest.raises(ValueError):
            TinyConv(image_size=28)

    def test_mobilenetv2_output_shape(self):
        model = create_model("mobilenetv2_tiny", num_classes=12, rng=0)
        assert model(np.zeros((1, 3, 32, 32))).shape == (1, 12)

    def test_parameter_counts_are_ordered_by_depth(self):
        sizes = [
            create_model(name, num_classes=10, rng=0).num_parameters()
            for name in ("resnet_s", "resnet10", "resnet14")
        ]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_full_size_parameter_counts_are_paper_magnitude(self):
        # Table 3 magnitudes: TinyConv ~0.08M, ResNet-10 ~0.67M, ResNet-14 ~2.7M.
        assert 0.05e6 < TinyConv(num_classes=10).num_parameters() < 0.15e6
        assert 0.5e6 < resnet10(num_classes=10).num_parameters() < 0.8e6
        assert 2.4e6 < resnet14(num_classes=10).num_parameters() < 3.1e6


class TestBlocks:
    def test_basic_block_identity_shortcut_gradients(self):
        block = BasicBlock(4, 4, stride=1, rng=0)
        x = np.random.default_rng(0).normal(size=(2, 4, 6, 6))
        check_module_gradients(block, x, atol=5e-4, rtol=5e-3)

    def test_basic_block_projection_shortcut_gradients(self):
        block = BasicBlock(4, 8, stride=2, rng=1)
        x = np.random.default_rng(1).normal(size=(2, 4, 6, 6))
        check_module_gradients(block, x, atol=5e-4, rtol=5e-3)

    def test_inverted_residual_gradients(self):
        block = InvertedResidual(8, 8, stride=1, expand_ratio=2, rng=0)
        x = np.random.default_rng(2).normal(size=(2, 8, 5, 5))
        check_module_gradients(block, x, atol=5e-4, rtol=5e-3)

    def test_inverted_residual_without_residual_path(self):
        block = InvertedResidual(4, 6, stride=2, expand_ratio=2, rng=0)
        assert not block.use_residual
        out = block(np.zeros((1, 4, 8, 8)))
        assert out.shape == (1, 6, 4, 4)

    def test_inverted_residual_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            InvertedResidual(4, 4, stride=3)


class TestEndToEndTraining:
    def test_tinyconv_can_overfit_a_small_batch(self):
        """One optimization sanity check: the full model/loss/optimizer stack learns."""
        from repro.nn import SGD

        rng = np.random.default_rng(0)
        model = TinyConv(num_classes=3, in_channels=1, width_mult=0.25, rng=0)
        y = np.repeat(np.arange(3), 4)
        # Class-dependent mean shift on top of noise so the batch is separable;
        # standardised like the real data pipeline (unnormalised inputs kill the
        # ReLUs at this learning rate).
        x = rng.normal(size=(12, 1, 32, 32)) + y.reshape(-1, 1, 1, 1) * 1.5
        x = (x - x.mean()) / x.std()
        loss_fn = CrossEntropyLoss()
        optimizer = SGD(model.parameters(), lr=0.02, momentum=0.9)
        first_loss = None
        for _ in range(60):
            optimizer.zero_grad()
            logits = model(x)
            loss = loss_fn(logits, y)
            if first_loss is None:
                first_loss = loss
            model.backward(loss_fn.backward())
            optimizer.step()
        final_accuracy = (model(x).argmax(axis=1) == y).mean()
        assert loss < first_loss
        assert final_accuracy >= 0.75
