"""Smoke tests that the example scripts are importable and their pieces compose.

The examples themselves train small networks (tens of seconds each); running
them end-to-end belongs to the benchmark/demo tier, so here we only check that
they import cleanly (no stale API usage) and expose a ``main`` entry point.
"""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {path.name for path in EXAMPLE_FILES}
        assert "quickstart.py" in names
        assert len(EXAMPLE_FILES) >= 3

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_imports_and_has_main(self, path):
        module = _load_module(path)
        assert hasattr(module, "main"), f"{path.name} must expose a main() entry point"
        assert callable(module.main)

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} must document what it demonstrates"

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_only_uses_public_package_imports(self, path):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                assert root in {"repro", "numpy", "__future__"}, (
                    f"{path.name} imports from unexpected package '{root}'"
                )
