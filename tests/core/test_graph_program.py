"""Tests for whole-network lowering, the program IR, passes, and the executor."""

from dataclasses import replace

import numpy as np
import pytest

import repro.mcu  # noqa: F401  (registers the 'cost' executor backend)
from repro.core import (
    BitSerialInferenceEngine,
    CompressionPolicy,
    EngineConfig,
    Executor,
    compress_model,
    compile_network,
    load_program,
    lower_model,
    package_from_program,
    save_program,
)
from repro.mcu import MC_LARGE, BitSerialKernelConfig, estimate_weight_pool_network
from repro.models import create_model
from repro.nn import DataLoader
from repro.nn.data.dataset import ArrayDataset


def _loader(seed=0, n=32, channels=3):
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=(n, channels, 32, 32))
    targets = rng.integers(0, 10, size=n)
    return DataLoader(ArrayDataset(inputs, targets), batch_size=16)


def _calibrated_engine(model_name, seed=0, lut_bitwidth=None, model_kwargs=None,
                       **policy_kwargs):
    model = create_model(
        model_name, num_classes=10, in_channels=3, rng=seed, **(model_kwargs or {})
    )
    result = compress_model(
        model, (3, 32, 32), pool_size=16,
        policy=CompressionPolicy(group_size=8, **policy_kwargs), seed=seed,
    )
    engine = BitSerialInferenceEngine(
        result.model,
        result.pool,
        EngineConfig(activation_bitwidth=8, lut_bitwidth=lut_bitwidth, calibration_batches=2),
    )
    engine.calibrate(_loader(seed))
    return engine


class TestLowering:
    def test_resnet_graph_has_residual_adds(self):
        model = create_model("resnet14_tiny", num_classes=10, rng=0)
        graph = lower_model(model, (3, 32, 32))
        kinds = graph.kinds()
        assert kinds.count("add") == 6  # one per BasicBlock
        assert kinds.count("conv") == 14 + 1  # 14 block/shortcut convs + stem
        assert kinds[-1] == "linear"  # classifier last

    def test_shape_inference_rejects_channel_mismatch(self):
        model = create_model("resnet_s_tiny", num_classes=10, in_channels=3, rng=0)
        with pytest.raises(ValueError):
            lower_model(model, (4, 32, 32))

    def test_unsupported_module_raises_not_implemented(self):
        from repro.nn import Module

        class Opaque(Module):
            def forward(self, x):
                return x

        with pytest.raises(NotImplementedError):
            lower_model(Opaque(), (3, 32, 32))


class TestCompile:
    def test_unbound_program_is_structural(self, compressed_small_model):
        program = compile_network(compressed_small_model.model, (3, 32, 32))
        assert not program.bound
        assert program.count("bitserial_conv") > 0
        with pytest.raises(RuntimeError):
            Executor(program, backend="plan")

    def test_lut_without_params_rejected(self, compressed_small_model, small_pool):
        from repro.core import build_lut

        with pytest.raises(ValueError):
            compile_network(
                compressed_small_model.model, (3, 32, 32), lut=build_lut(small_pool)
            )

    def test_optimize_folds_batchnorm_and_fuses_requantize(self):
        engine = _calibrated_engine("resnet14_tiny")
        plain = engine.compile(optimize=False)
        optimized = engine.compile(optimize=True)
        # Every BatchNorm behind a compressed conv folds into the epilogue;
        # only the (uncompressed) stem's BN survives.
        assert plain.count("batchnorm") == 15
        assert optimized.count("batchnorm") == 1
        # conv1 -> bn1 -> relu1 -> conv2 chains elide their dequantize/quantize
        # pair, one per BasicBlock; CSE merges the downsample blocks' duplicate
        # (conv1, shortcut) quantizes of the same buffer.
        assert optimized.count("requantize") == 6
        assert optimized.count("quantize") == plain.count("quantize") - 6 - 2
        # Folded relu2s before the downsample stages disappear entirely.
        assert optimized.count("activation") < plain.count("activation")

    def test_traces_match_dummy_forward_tracing(self):
        from repro.core import trace_model

        model = create_model("mobilenetv2_tiny", num_classes=10, rng=0)
        program = compile_network(model, (3, 32, 32))
        legacy = trace_model(model, (3, 32, 32))
        derived = program.layer_traces()
        assert len(derived) == len(legacy)
        for got, want in zip(derived, legacy):
            assert (got.kind, got.in_channels, got.out_channels) == (
                want.kind, want.in_channels, want.out_channels
            )
            assert (got.input_hw, got.output_hw) == (want.input_hw, want.output_hw)
            assert got.is_first == want.is_first
            assert got.macs == want.macs

    def test_describe_lists_ops(self):
        engine = _calibrated_engine("resnet_s_tiny")
        text = engine.compile().describe()
        assert "bitserial_conv" in text and "requantize" in text


@pytest.mark.parametrize("model_name", ["resnet14_tiny", "mobilenetv2_tiny"])
class TestExecutorEquivalence:
    """Property tests of the acceptance criterion: graph executor vs legacy."""

    def test_unoptimized_plan_backend_bit_exact(self, model_name):
        engine = _calibrated_engine(model_name)  # full-precision LUT
        x = np.random.default_rng(1).normal(size=(4, 3, 32, 32))
        engine.config = replace(engine.config, use_graph=False)
        legacy = engine.predict(x)
        engine.config = replace(engine.config, use_graph=True, graph_optimize=False)
        graph = engine.predict(x)
        np.testing.assert_array_equal(graph, legacy)

    def test_optimized_plan_backend_within_tolerance(self, model_name):
        engine = _calibrated_engine(model_name)
        x = np.random.default_rng(2).normal(size=(4, 3, 32, 32))
        engine.config = replace(engine.config, use_graph=False)
        legacy = engine.predict(x)
        engine.config = replace(engine.config, use_graph=True, graph_optimize=True)
        optimized = engine.predict(x)
        # Documented float-association tolerance of the fusion passes.
        scale = max(float(np.abs(legacy).max()), 1e-12)
        assert np.abs(optimized - legacy).max() < 1e-9 * scale
        assert np.array_equal(optimized.argmax(axis=1), legacy.argmax(axis=1))

    def test_reference_backend_matches_legacy_reference(self, model_name):
        engine = _calibrated_engine(model_name)
        x = np.random.default_rng(3).normal(size=(2, 3, 32, 32))
        engine.config = replace(
            engine.config, use_kernel_plans=False, use_graph=False
        )
        legacy = engine.predict(x)
        engine.config = replace(engine.config, use_graph=True, graph_optimize=False)
        graph = engine.predict(x)
        np.testing.assert_array_equal(graph, legacy)

    def test_quantized_lut_identical_predictions(self, model_name):
        engine = _calibrated_engine(model_name, lut_bitwidth=8)
        loader = _loader(seed=7, n=16)
        graph_acc = engine.evaluate(loader)
        engine.config = replace(engine.config, use_graph=False)
        legacy_acc = engine.evaluate(loader)
        assert graph_acc == legacy_acc


class TestExecutorDetails:
    def test_unknown_backend_raises(self):
        engine = _calibrated_engine("resnet_s_tiny")
        with pytest.raises(KeyError):
            Executor(engine.compile(), backend="no-such-backend")

    def test_executor_reuses_released_buffers(self):
        # The buffer pool is the fallback path: optimized plan programs
        # execute through the ahead-of-time arena plan, so the pool is
        # exercised by explicitly opting out of it.
        engine = _calibrated_engine("resnet_s_tiny")
        executor = Executor(engine.compile(), memory_plan=False)
        x = np.random.default_rng(4).normal(size=(2, 3, 32, 32))
        first = executor.run(x)
        assert executor.pool._free, "released buffers should populate the pool"
        second = executor.run(x)
        np.testing.assert_array_equal(first, second)

    def test_buffer_pool_is_bounded_across_runs(self):
        """Regression: free lists must not grow by one dead buffer per batch."""
        engine = _calibrated_engine("resnet_s_tiny")
        executor = Executor(engine.compile(), memory_plan=False)
        from repro.core.program import _BufferPool

        x = np.random.default_rng(4).normal(size=(4, 3, 32, 32))
        cap = _BufferPool._MAX_FREE_PER_KEY
        for _ in range(cap + 2):
            executor.run(x)
        sizes = {key: len(stack) for key, stack in executor.pool._free.items()}
        assert all(size <= cap for size in sizes.values())
        for _ in range(5):
            executor.run(x)
        after = {key: len(stack) for key, stack in executor.pool._free.items()}
        assert after == sizes

    def test_linear_only_model_falls_back_to_legacy_runtime(self):
        """Regression: non-(C,H,W) models must keep working through predict."""
        from repro.core import BitSerialInferenceEngine, EngineConfig
        from repro.core.layers import WeightPoolLinear
        from repro.core.weight_pool import WeightPool
        from repro.nn import Linear, Module, ReLU

        class MLP(Module):
            def __init__(self, pool):
                super().__init__()
                self.fc1 = WeightPoolLinear(32, 16, pool, rng=0)
                self.act = ReLU()
                self.fc2 = Linear(16, 10, rng=1)

            def forward(self, x):
                return self.fc2(self.act(self.fc1(x)))

        rng = np.random.default_rng(0)
        pool = WeightPool(vectors=rng.normal(size=(16, 8)))
        model = MLP(pool)
        inputs = rng.normal(size=(32, 32))
        targets = rng.integers(0, 10, size=32)
        loader = DataLoader(ArrayDataset(inputs, targets), batch_size=16)
        engine = BitSerialInferenceEngine(
            model, pool, EngineConfig(lut_bitwidth=8, calibration_batches=2)
        )
        engine.calibrate(loader)
        out = engine.predict(rng.normal(size=(4, 32)))
        assert out.shape == (4, 10)
        assert 0.0 <= engine.evaluate(loader) <= 1.0

    def test_padded_thin_layers_execute_and_match_legacy(self):
        # A width multiplier producing 5-channel convolutions with group size
        # 8 forces zero-point channel padding; the program materialises the
        # pad as an explicit compile-time op instead of a per-batch check.
        engine = _calibrated_engine(
            "tinyconv", model_kwargs={"width_mult": 0.15},
            pad_channels=True, compress_first_layer=False,
        )
        program = engine.compile(optimize=False)
        assert program.count("pad_channels") > 0
        x = np.random.default_rng(5).normal(size=(2, 3, 32, 32))
        engine.config = replace(engine.config, use_graph=False)
        legacy = engine.predict(x)
        engine.config = replace(engine.config, use_graph=True, graph_optimize=False)
        np.testing.assert_array_equal(engine.predict(x), legacy)
        engine.config = replace(engine.config, graph_optimize=True)
        optimized = engine.predict(x)
        scale = max(float(np.abs(legacy).max()), 1e-12)
        assert np.abs(optimized - legacy).max() < 1e-9 * scale

    def test_active_bits_truncation_through_graph(self):
        engine = _calibrated_engine("resnet_s_tiny")
        x = np.random.default_rng(6).normal(size=(2, 3, 32, 32))
        full = engine.predict(x)
        engine.config = replace(engine.config, active_bits=4)
        engine._invalidate_compiled()
        truncated = engine.predict(x)
        assert not np.allclose(full, truncated)


class TestProgramSerialization:
    def test_round_trip_is_bit_identical(self, tmp_path):
        engine = _calibrated_engine("resnet14_tiny", lut_bitwidth=8)
        program = engine.compile()
        x = np.random.default_rng(8).normal(size=(2, 3, 32, 32))
        expected = engine.predict(x)
        path = tmp_path / "program.npz"
        save_program(program, path)
        loaded = load_program(path)
        assert loaded.kinds() == program.kinds()
        out = Executor(loaded, backend="plan").run(x)
        np.testing.assert_array_equal(out, expected)

    def test_loaded_program_needs_no_modules(self, tmp_path):
        engine = _calibrated_engine("resnet_s_tiny", lut_bitwidth=8)
        path = tmp_path / "program.npz"
        save_program(engine.compile(), path)
        loaded = load_program(path)
        assert all(op.module is None for op in loaded.ops)
        traces = loaded.layer_traces()
        assert any(t.kind == "conv" for t in traces)

    def test_structural_program_cannot_serialize(self, compressed_small_model, tmp_path):
        program = compile_network(compressed_small_model.model, (3, 32, 32))
        with pytest.raises(ValueError):
            save_program(program, tmp_path / "x.npz")

    def test_package_from_program_matches_flash_contents(self):
        engine = _calibrated_engine("resnet_s_tiny", lut_bitwidth=8)
        program = engine.compile()
        package = package_from_program(program, "resnet_s_tiny")
        assert len(package.layers) == len(program.layer_traces())
        compressed = package.compressed_layers
        assert len(compressed) == program.count("bitserial_conv") + program.count(
            "bitserial_linear"
        )
        # Packed indices round-trip through the artifact.
        bitserial_ops = [
            op for op in program.ops if op.kind.startswith("bitserial")
        ]
        for artifact, op in zip(compressed, bitserial_ops):
            np.testing.assert_array_equal(artifact.unpack_indices(), op.attrs["indices"])
            assert artifact.activation_scale == op.attrs["params"].scale
        assert package.flash_bytes > 0


class TestCostBackend:
    def test_cost_backend_reports_layer_cycles(self, compressed_small_model):
        program = compile_network(compressed_small_model.model, (3, 32, 32))
        executor = Executor(
            program,
            backend="cost",
            device=MC_LARGE,
            config=BitSerialKernelConfig(pool_size=16),
        )
        assert executor.total_cycles > 0
        compressed = [l for l in executor.layer_latencies if l.compressed]
        assert len(compressed) == program.count("bitserial_conv") + program.count(
            "bitserial_linear"
        )

    def test_cost_backend_agrees_with_estimator(self, compressed_small_model):
        config = BitSerialKernelConfig(pool_size=16)
        program = compile_network(compressed_small_model.model, (3, 32, 32))
        executor = Executor(program, backend="cost", device=MC_LARGE, config=config)
        report = estimate_weight_pool_network(
            compressed_small_model.model, (3, 32, 32), MC_LARGE, config
        )
        assert executor.total_cycles == pytest.approx(report.total_cycles)

    def test_cost_backend_accepts_engine_options(self, compressed_small_model):
        """Regression: the engine forwards active_bits to every backend bind."""
        config = BitSerialKernelConfig(pool_size=16)
        program = compile_network(compressed_small_model.model, (3, 32, 32))
        full = Executor(program, backend="cost", device=MC_LARGE, config=config)
        truncated = Executor(
            program, backend="cost", device=MC_LARGE, config=config, active_bits=4
        )
        assert truncated.total_cycles < full.total_cycles

    def test_cost_backend_run_propagates_shapes(self, compressed_small_model):
        program = compile_network(compressed_small_model.model, (3, 32, 32))
        executor = Executor(
            program, backend="cost", device=MC_LARGE,
            config=BitSerialKernelConfig(pool_size=16),
        )
        out = executor.run(np.zeros((3, 3, 32, 32)))
        assert out.shape == (3, 10)
