"""Property tests for the ahead-of-time execution planner.

The contract under test: the arena + fused + sharded executor produces
**bitwise identical** outputs to the pooled executor (same program, same
tile), for every shard count, including ragged final tiles — and tracks the
reference backend within the documented optimization tolerance.  The arena
layout itself is validated structurally: no two simultaneously-live
storages may share bytes (the aliasing regression a bad planner would hit
on overlapping lifetimes, e.g. residual shortcuts held across a block).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    BitSerialInferenceEngine,
    CompressionPolicy,
    EngineConfig,
    Executor,
    PlanUnsupported,
    compile_network,
    compress_model,
    load_program,
    save_program,
    validate_arena_plan,
)
from repro.core.memory_plan import ArenaSlot
from repro.models import create_model
from repro.nn import DataLoader
from repro.nn.data.dataset import ArrayDataset


def _loader(seed=0, n=32, channels=3):
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=(n, channels, 32, 32))
    targets = rng.integers(0, 10, size=n)
    return DataLoader(ArrayDataset(inputs, targets), batch_size=16)


@pytest.fixture(scope="module", params=["resnet14_tiny", "mobilenetv2_tiny"])
def planned_engine(request):
    model = create_model(request.param, num_classes=10, in_channels=3, rng=0)
    result = compress_model(
        model, (3, 32, 32), pool_size=16,
        policy=CompressionPolicy(group_size=8), seed=0,
    )
    engine = BitSerialInferenceEngine(
        result.model,
        result.pool,
        EngineConfig(activation_bitwidth=8, lut_bitwidth=8, calibration_batches=2),
    )
    engine.calibrate(_loader())
    return engine


class TestBitExactness:
    """Arena + fused + sharded output must equal the pooled executor's."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_sharded_matches_pooled_bitwise(self, planned_engine, n_shards):
        program = planned_engine.compile(optimize=True)
        x = np.random.default_rng(1).normal(size=(13, 3, 32, 32))
        pooled = Executor(program, memory_plan=False, tile=4).run(x)
        planned = Executor(program, memory_plan=True, n_shards=n_shards, tile=4)
        # 13 samples over tile 4 → three full tiles and a ragged final one,
        # split across shards on whole-tile boundaries.
        np.testing.assert_array_equal(planned.run(x), pooled)
        # Arenas and scratch are reused, never re-derived: run twice.
        np.testing.assert_array_equal(planned.run(x), pooled)

    def test_default_executors_agree(self, planned_engine):
        program = planned_engine.compile(optimize=True)
        x = np.random.default_rng(2).normal(size=(16, 3, 32, 32))
        pooled = Executor(program, memory_plan=False)
        planned = Executor(program)
        assert planned.exec_plan is not None, "optimized plan programs plan by default"
        assert planned.thread_safe and not pooled.thread_safe
        np.testing.assert_array_equal(planned.run(x), pooled.run(x))

    def test_single_sample_and_empty_batches(self, planned_engine):
        program = planned_engine.compile(optimize=True)
        planned = Executor(program, n_shards=2, tile=4)
        pooled = Executor(program, memory_plan=False, tile=4)
        one = np.random.default_rng(3).normal(size=(1, 3, 32, 32))
        np.testing.assert_array_equal(planned.run(one), pooled.run(one))
        empty = planned.run(np.empty((0, 3, 32, 32)))
        assert empty.shape == (0, 10)

    def test_tracks_reference_backend_predictions(self, planned_engine):
        """The whole planned stack against the tap-loop oracle: identical
        predictions, logits within the documented optimization tolerance."""
        program = planned_engine.compile(optimize=True)
        x = np.random.default_rng(4).normal(size=(8, 3, 32, 32))
        planned = Executor(program, n_shards=2, tile=4).run(x)
        planned_engine.config = replace(
            planned_engine.config, use_kernel_plans=False, use_graph=False
        )
        try:
            reference = planned_engine.predict(x)
        finally:
            planned_engine.config = replace(
                planned_engine.config, use_kernel_plans=True, use_graph=True
            )
        scale = max(float(np.abs(reference).max()), 1e-12)
        assert np.abs(planned - reference).max() < 1e-9 * scale
        np.testing.assert_array_equal(
            planned.argmax(axis=1), reference.argmax(axis=1)
        )

    def test_evaluate_accuracy_identical(self, planned_engine):
        program = planned_engine.compile(optimize=True)
        loader = _loader(seed=7, n=48)
        pooled_acc = Executor(program, memory_plan=False).evaluate(loader)
        planned_acc = Executor(program, n_shards=2).evaluate(loader)
        assert pooled_acc == planned_acc


class TestArenaPlan:
    def test_no_live_overlap_on_residual_networks(self, planned_engine):
        """Overlapping-lifetime regression: residual shortcuts keep a buffer
        live across a whole block — simultaneously-live storages must never
        share arena bytes (validate_arena_plan raises on bad aliasing)."""
        executor = Executor(planned_engine.compile(optimize=True))
        plan = executor.exec_plan
        validate_arena_plan(plan)
        # The planner found some reuse: the arena is smaller than the sum of
        # every storage's slot (lifetimes are disjoint somewhere).
        total = sum(s.nbytes for s in plan.slots.values() if s.reused_from is None)
        assert plan.arena_bytes <= total

    def test_validator_catches_bad_aliasing(self, planned_engine):
        executor = Executor(planned_engine.compile(optimize=True))
        plan = executor.exec_plan
        # Corrupt the plan: force two live storages onto the same offset.
        live = [
            (sid, slot) for sid, slot in plan.slots.items() if slot.reused_from is None
        ]
        (sid_a, a), (sid_b, b) = live[0], live[1]
        bad = dict(plan.slots)
        bad[sid_b] = ArenaSlot(
            offset=a.offset, nbytes=b.nbytes,
            first_def=a.first_def, last_use=a.last_use,
        )
        corrupted = replace(plan, slots=bad)
        with pytest.raises(AssertionError, match="aliases live storages"):
            validate_arena_plan(corrupted)

    def test_counters_reported_in_metadata(self, planned_engine):
        program = planned_engine.compile(optimize=True)
        executor = Executor(program, n_shards=3)
        info = executor.plan_info
        assert info["arena_bytes"] > 0
        assert info["steps_fused"] > 0
        assert info["steps"] < info["ops"]
        assert info["n_shards"] == 3
        meta = program.metadata()
        assert meta["execution_plan"]["arena_bytes"] == info["arena_bytes"]
        assert meta["execution_plan"]["steps_fused"] == info["steps_fused"]

    def test_arena_below_pooled_peak(self, planned_engine):
        """The packed arena beats the pooled executor's measured peak
        (live buffers + free lists) at the same tile."""
        program = planned_engine.compile(optimize=True)
        planned = Executor(program)
        pooled = Executor(program, memory_plan=False, tile=planned.exec_plan.tile,
                          track_memory=True)
        x = np.random.default_rng(5).normal(size=(planned.exec_plan.tile, 3, 32, 32))
        for _ in range(3):
            pooled.run(x)
        assert 0 < planned.exec_plan.arena_bytes < pooled.peak_pool_bytes


class TestFallbacks:
    def test_unoptimized_and_reference_programs_stay_pooled(self, planned_engine):
        unoptimized = planned_engine.compile(optimize=False)
        assert Executor(unoptimized).exec_plan is None
        optimized = planned_engine.compile(optimize=True)
        assert Executor(optimized, backend="reference").exec_plan is None

    def test_structural_program_cannot_be_planned(self, compressed_small_model):
        program = compile_network(compressed_small_model.model, (3, 32, 32))
        with pytest.raises(RuntimeError):
            Executor(program, backend="plan", memory_plan=True)

    def test_explicit_plan_on_unplannable_backend_raises(self, planned_engine):
        program = planned_engine.compile(optimize=True)
        with pytest.raises((PlanUnsupported, RuntimeError)):
            Executor(program, backend="reference", memory_plan=True)

    def test_active_bits_flow_through_the_plan(self, planned_engine):
        program = planned_engine.compile(optimize=True)
        full = Executor(program)
        truncated = Executor(program, active_bits=4)
        x = np.random.default_rng(6).normal(size=(4, 3, 32, 32))
        assert not np.allclose(full.run(x), truncated.run(x))


class TestSerializedPrograms:
    def test_loaded_program_plans_and_matches(self, planned_engine, tmp_path):
        """Plans survive save/load: a loaded artifact re-plans from the IR
        and executes bitwise-identically to the original planned executor."""
        program = planned_engine.compile(optimize=True)
        x = np.random.default_rng(8).normal(size=(10, 3, 32, 32))
        expected = Executor(program, n_shards=2, tile=4).run(x)
        path = tmp_path / "program.npz"
        save_program(program, path)
        loaded = load_program(path)
        loaded_exec = Executor(loaded, n_shards=2, tile=4)
        assert loaded_exec.exec_plan is not None
        np.testing.assert_array_equal(loaded_exec.run(x), expected)

    def test_saved_metadata_carries_plan_counters(self, planned_engine, tmp_path):
        from repro.core import read_program_metadata

        program = planned_engine.compile(optimize=True)
        Executor(program)  # attaches plan counters to the program
        path = tmp_path / "program.npz"
        save_program(program, path)
        meta = read_program_metadata(path)
        assert meta["execution_plan"]["arena_bytes"] > 0
