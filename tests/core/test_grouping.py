"""Tests for z/xy weight grouping and reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grouping import (
    extract_linear_z_vectors,
    extract_xy_vectors,
    extract_z_vectors,
    least_squares_coefficients,
    pad_channels_to_group,
    reconstruct_from_xy_indices,
    reconstruct_from_z_indices,
    reconstruct_linear_from_z_indices,
    z_index_shape,
)


class TestZGrouping:
    def test_vector_count_matches_figure3(self):
        # Paper example: an 8x3x3 filter bank with group size 4 yields
        # (channels/4) * 3 * 3 vectors per filter.
        weight = np.random.default_rng(0).normal(size=(1, 8, 3, 3))
        vectors = extract_z_vectors(weight, 4)
        assert vectors.shape == (18, 4)

    def test_vectors_are_channel_slices(self):
        weight = np.arange(2 * 8 * 1 * 1, dtype=float).reshape(2, 8, 1, 1)
        vectors = extract_z_vectors(weight, 8)
        np.testing.assert_array_equal(vectors[0], np.arange(8))
        np.testing.assert_array_equal(vectors[1], np.arange(8, 16))

    def test_roundtrip_with_identity_pool(self):
        """Extract vectors, use them directly as the pool: reconstruction is exact."""
        rng = np.random.default_rng(1)
        weight = rng.normal(size=(3, 16, 3, 3))
        vectors = extract_z_vectors(weight, 8)
        indices = np.arange(len(vectors)).reshape(z_index_shape(weight.shape, 8))
        reconstructed = reconstruct_from_z_indices(indices, vectors)
        np.testing.assert_allclose(reconstructed, weight)

    def test_indivisible_channels_rejected(self):
        with pytest.raises(ValueError):
            extract_z_vectors(np.zeros((2, 6, 3, 3)), 8)

    def test_pad_channels(self):
        weight = np.ones((2, 6, 3, 3))
        padded = pad_channels_to_group(weight, 8)
        assert padded.shape == (2, 8, 3, 3)
        assert np.all(padded[:, 6:] == 0)
        np.testing.assert_array_equal(pad_channels_to_group(weight, 3), weight)

    def test_reconstruct_slices_padded_channels(self):
        rng = np.random.default_rng(2)
        pool = rng.normal(size=(4, 8))
        indices = np.zeros((2, 1, 3, 3), dtype=int)
        full = reconstruct_from_z_indices(indices, pool)
        sliced = reconstruct_from_z_indices(indices, pool, num_channels=6)
        assert sliced.shape == (2, 6, 3, 3)
        np.testing.assert_allclose(sliced, full[:, :6])

    def test_reconstruct_rejects_bad_indices(self):
        pool = np.zeros((4, 8))
        with pytest.raises(ValueError):
            reconstruct_from_z_indices(np.full((1, 1, 1, 1), 7), pool)

    def test_every_zgroup_of_reconstruction_is_a_pool_vector(self):
        """DESIGN invariant 4."""
        rng = np.random.default_rng(3)
        pool = rng.normal(size=(5, 8))
        indices = rng.integers(0, 5, size=(4, 2, 3, 3))
        weight = reconstruct_from_z_indices(indices, pool)
        groups = extract_z_vectors(weight, 8)
        for group in groups:
            assert any(np.allclose(group, vec) for vec in pool)

    @given(
        filters=st.integers(1, 4),
        channel_groups=st.integers(1, 3),
        kernel=st.sampled_from([1, 3]),
        group_size=st.sampled_from([4, 8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip(self, filters, channel_groups, kernel, group_size):
        rng = np.random.default_rng(filters * 10 + channel_groups)
        weight = rng.normal(size=(filters, channel_groups * group_size, kernel, kernel))
        vectors = extract_z_vectors(weight, group_size)
        indices = np.arange(len(vectors)).reshape(z_index_shape(weight.shape, group_size))
        np.testing.assert_allclose(reconstruct_from_z_indices(indices, vectors), weight)


class TestLinearZGrouping:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(5, 16))
        vectors = extract_linear_z_vectors(weight, 8)
        indices = np.arange(len(vectors)).reshape(5, 2)
        np.testing.assert_allclose(reconstruct_linear_from_z_indices(indices, vectors), weight)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            extract_linear_z_vectors(np.zeros((5, 10)), 8)

    def test_reconstruct_rejects_bad_indices(self):
        with pytest.raises(ValueError):
            reconstruct_linear_from_z_indices(np.full((1, 1), 3), np.zeros((2, 8)))


class TestXYGrouping:
    def test_extract_shape(self):
        weight = np.random.default_rng(0).normal(size=(4, 3, 3, 3))
        assert extract_xy_vectors(weight).shape == (12, 9)

    def test_roundtrip_with_identity_pool(self):
        rng = np.random.default_rng(1)
        weight = rng.normal(size=(2, 3, 3, 3))
        kernels = extract_xy_vectors(weight)
        indices = np.arange(len(kernels))
        np.testing.assert_allclose(
            reconstruct_from_xy_indices(indices, kernels, weight.shape), weight
        )

    def test_coefficients_scale_kernels(self):
        pool = np.ones((1, 9))
        indices = np.zeros(2, dtype=int)
        coeffs = np.array([2.0, -1.0])
        weight = reconstruct_from_xy_indices(indices, pool, (2, 1, 3, 3), coefficients=coeffs)
        assert np.all(weight[0] == 2.0) and np.all(weight[1] == -1.0)

    def test_least_squares_coefficients_are_optimal(self):
        rng = np.random.default_rng(2)
        pool = rng.normal(size=(3, 9))
        kernels = rng.normal(size=(5, 9))
        indices = rng.integers(0, 3, size=5)
        coeffs = least_squares_coefficients(kernels, pool, indices)
        # Perturbing any coefficient should not reduce the reconstruction error.
        def error(c):
            return ((kernels - c[:, None] * pool[indices]) ** 2).sum()
        base = error(coeffs)
        for delta in (0.01, -0.01):
            assert error(coeffs + delta) >= base - 1e-9

    def test_pool_kernel_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            reconstruct_from_xy_indices(np.zeros(1, dtype=int), np.zeros((2, 4)), (1, 1, 3, 3))
