"""Tests for streaming execution: dirty-tile incremental inference.

Edge cases the propagation rules must survive bitwise (threshold 0):
padding borders (corner dirty tiles), stride-2 convolutions, fused chains
spanning a pooling step, and regions that dilate to the full frame — each
compared against the non-streaming executor, bit for bit.
"""

import numpy as np
import pytest

from repro.core import (
    BitSerialInferenceEngine,
    CompressionPolicy,
    EngineConfig,
    StreamUnsupported,
    compile_network,
    compile_stream_plan,
    compress_model,
    stream_support,
)
from repro.datasets import PatternLibrary
from repro.models import create_model
from repro.nn import DataLoader
from repro.nn.data.dataset import ArrayDataset


def _compiled_program(model_name, image_size=32, **model_kwargs):
    model = create_model(
        model_name, num_classes=10, in_channels=3, rng=0, **model_kwargs
    )
    result = compress_model(
        model, (3, image_size, image_size), pool_size=16,
        policy=CompressionPolicy(group_size=8), seed=0,
    )
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(32, 3, image_size, image_size))
    targets = rng.integers(0, 10, size=32)
    loader = DataLoader(ArrayDataset(inputs, targets), batch_size=16)
    engine = BitSerialInferenceEngine(
        result.model, result.pool,
        EngineConfig(activation_bitwidth=8, lut_bitwidth=8, calibration_batches=2),
    )
    engine.calibrate(loader)
    return engine.compile(optimize=True)


@pytest.fixture(scope="module")
def resnet_plan():
    """resnet_s_tiny: padding-1 convs, stride-2 downsample convs, residual
    adds — compiled with a fixed crossover so tests are deterministic."""
    program = _compiled_program("resnet_s_tiny")
    return compile_stream_plan(program, tile=8, crossover=1.0, seed=0)


@pytest.fixture(scope="module")
def tinyconv_plan():
    """tinyconv: float stem conv (padding 2) + max/avg pools between the
    bit-serial convs — the chain-spanning-a-pool case."""
    program = _compiled_program("tinyconv")
    return compile_stream_plan(program, tile=8, crossover=1.0, seed=0)


def _frame(plan, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(plan.input_shape)


def _perturbed(frame, region, seed=1):
    rng = np.random.default_rng(seed)
    y0, y1, x0, x1 = region
    out = frame.copy()
    out[:, y0:y1, x0:x1] += rng.standard_normal(out[:, y0:y1, x0:x1].shape)
    return out


def _oracle(plan, frame):
    return plan.executor.run(frame[None])[0]


class TestStreamSupport:
    def test_metadata_shape(self, resnet_plan):
        support = stream_support(resnet_plan.program)
        assert support["supported"] is True
        kinds = [r["rule"] for r in support["rules"]]
        assert "dilate" in kinds and "cutoff" in kinds
        cutoff = support["cutoff_index"]
        assert support["rules"][cutoff]["rule"] == "cutoff"
        # Everything before the cutoff is spatially streamable.
        assert all(r["rule"] in ("dilate", "pass") for r in support["rules"][:cutoff])

    def test_unbound_program_rejected(self):
        model = create_model("resnet_s_tiny", num_classes=10, in_channels=3, rng=0)
        result = compress_model(
            model, (3, 32, 32), pool_size=16,
            policy=CompressionPolicy(group_size=8), seed=0,
        )
        program = compile_network(result.model, (3, 32, 32))
        with pytest.raises(StreamUnsupported) as exc:
            compile_stream_plan(program)
        assert exc.value.reason == "stream_unsupported"

    def test_bad_arguments(self, resnet_plan):
        with pytest.raises(ValueError):
            compile_stream_plan(resnet_plan.program, tile=0)
        with pytest.raises(ValueError):
            compile_stream_plan(
                resnet_plan.program, crossover=1.5, executor=resnet_plan.executor,
                verify=False,
            )
        with pytest.raises(ValueError):
            resnet_plan.session(threshold=-1.0)


class TestBitExactness:
    """Threshold 0 ⇒ streamed outputs identical to the executor's."""

    def test_pattern_stream_identity(self, resnet_plan):
        library = PatternLibrary(num_classes=4, channels=3, image_size=32, seed=0)
        stream = library.stream(1, change_fraction=0.1, rng=3)
        session = resnet_plan.session(threshold=0.0)
        modes = []
        for _ in range(6):
            frame = stream.next()
            out, info = session.process(frame)
            modes.append(info["mode"])
            np.testing.assert_array_equal(out, _oracle(resnet_plan, frame))
        assert modes[0] == "full"
        assert "incremental" in modes[1:]

    @pytest.mark.parametrize(
        "corner",
        [(0, 5, 0, 5), (0, 5, 27, 32), (27, 32, 0, 5), (27, 32, 27, 32)],
        ids=["top-left", "top-right", "bottom-left", "bottom-right"],
    )
    def test_padding_border_corner_tiles(self, resnet_plan, corner):
        """Dirty tiles touching the image border exercise the conv halo
        padding (out-of-range rows filled with the layer zero point)."""
        base = _frame(resnet_plan)
        frame = _perturbed(base, corner)
        session = resnet_plan.session(threshold=0.0)
        session.process(base)
        out, info = session.process(frame)
        assert info["mode"] == "incremental"
        np.testing.assert_array_equal(out, _oracle(resnet_plan, frame))

    def test_stride2_convs_odd_offsets(self, resnet_plan):
        """Tile-unaligned regions through the stride-2 downsample convs."""
        base = _frame(resnet_plan)
        for region in [(3, 11, 5, 14), (9, 10, 21, 22), (14, 25, 0, 7)]:
            frame = _perturbed(base, region)
            session = resnet_plan.session(threshold=0.0)
            session.process(base)
            out, info = session.process(frame)
            assert info["mode"] == "incremental"
            np.testing.assert_array_equal(out, _oracle(resnet_plan, frame))

    def test_chain_spanning_pool(self, tinyconv_plan):
        """A dirty region crossing a pooling-window boundary propagates
        through conv → pool → quantize → bit-serial conv chains bitwise."""
        base = _frame(tinyconv_plan)
        # Straddles the 2x2 max-pool grid and the 8-pixel tile grid.
        frame = _perturbed(base, (5, 12, 7, 13))
        session = tinyconv_plan.session(threshold=0.0)
        session.process(base)
        out, info = session.process(frame)
        assert info["mode"] == "incremental"
        np.testing.assert_array_equal(out, _oracle(tinyconv_plan, frame))

    def test_dilation_to_full_frame_degrades_bitwise(self, resnet_plan):
        """A region dilating to the whole frame must degrade to exactly the
        non-streaming result (the incremental path over everything)."""
        h, w = resnet_plan.input_shape[1:]
        base = _frame(resnet_plan)
        # Dirty everywhere except one clean tile row: stays under the fixed
        # crossover (1.0) so the incremental path runs, but the receptive
        # field dilates the region to the full frame within a layer or two.
        frame = _perturbed(base, (0, h - resnet_plan.tile, 0, w))
        session = resnet_plan.session(threshold=0.0)
        session.process(base)
        out, info = session.process(frame)
        assert info["mode"] == "incremental"
        np.testing.assert_array_equal(out, _oracle(resnet_plan, frame))

    def test_consecutive_incremental_frames_accumulate(self, resnet_plan):
        """The reference state stays exact across many incremental frames
        with disjoint and overlapping dirty regions."""
        base = _frame(resnet_plan)
        session = resnet_plan.session(threshold=0.0)
        session.process(base)
        frame = base
        for i, region in enumerate([(0, 6, 0, 6), (20, 30, 18, 28), (4, 9, 2, 12)]):
            frame = _perturbed(frame, region, seed=10 + i)
            out, _ = session.process(frame)
            np.testing.assert_array_equal(out, _oracle(resnet_plan, frame))


class TestModes:
    def test_identical_frame_is_cached(self, resnet_plan):
        base = _frame(resnet_plan)
        session = resnet_plan.session(threshold=0.0)
        first, _ = session.process(base)
        out, info = session.process(base.copy())
        assert info["mode"] == "cached"
        assert info["dirty_tiles"] == 0
        np.testing.assert_array_equal(out, first)

    def test_crossover_fallback_engages(self):
        program = _compiled_program("resnet_s_tiny")
        plan = compile_stream_plan(
            program, tile=8, crossover=0.3, seed=0, verify=False
        )
        base = _frame(plan)
        frame = _perturbed(base, (0, 24, 0, 24))  # 56% of the frame dirty
        session = plan.session(threshold=0.0)
        session.process(base)
        out, info = session.process(frame)
        assert info["mode"] == "full"
        assert info["reason"] == "crossover"
        assert info["dirty_fraction"] >= 0.3
        np.testing.assert_array_equal(out, _oracle(plan, frame))

    def test_lossy_threshold_memoizes_small_changes(self, resnet_plan):
        base = _frame(resnet_plan)
        session = resnet_plan.session(threshold=0.05)
        first, _ = session.process(base)
        out, info = session.process(base + 0.01)  # sub-threshold everywhere
        assert info["mode"] == "cached"
        np.testing.assert_array_equal(out, first)

    def test_reset_recovers_with_full_recompute(self, resnet_plan):
        base = _frame(resnet_plan)
        session = resnet_plan.session(threshold=0.0)
        session.process(base)
        session.reset()
        frame = _perturbed(base, (0, 4, 0, 4))
        out, info = session.process(frame)
        assert info["mode"] == "full"
        assert info["reason"] == "first_frame"
        np.testing.assert_array_equal(out, _oracle(resnet_plan, frame))

    def test_frame_shape_validation(self, resnet_plan):
        session = resnet_plan.session()
        with pytest.raises(ValueError):
            session.process(np.zeros((3, 16, 16)))


class TestRecording:
    def test_compile_records_like_autotune(self, resnet_plan):
        record = resnet_plan.counters
        assert record["crossover"]["source"] == "fixed"
        assert record["steps"] == len(resnet_plan.steps)
        assert record["crop_steps"] > 0
        assert record["demoted_steps"] == []
        passes = {
            p["name"]: p
            for p in resnet_plan.program.pipeline_report["passes"]
        }
        assert "stream_plan" in passes
        assert passes["stream_plan"]["decisions"]["crossover"]["fraction"] == 1.0
        if resnet_plan.executor.plan_info is not None:
            assert "stream" in resnet_plan.executor.plan_info

    def test_measured_crossover_in_range(self):
        program = _compiled_program("resnet_s_tiny")
        plan = compile_stream_plan(program, tile=8, seed=0, verify=False)
        cross = plan.counters["crossover"]
        assert cross["source"] == "measured"
        assert 0.05 <= cross["fraction"] <= 0.95
        assert cross["t_full_ms"] > 0

    def test_session_stats(self, resnet_plan):
        base = _frame(resnet_plan)
        session = resnet_plan.session(threshold=0.0)
        session.process(base)
        session.process(_perturbed(base, (0, 4, 0, 4)))
        stats = session.stats()
        assert stats["frames"] == 2
        assert stats["full"] == 1
        assert stats["incremental"] == 1
        assert stats["state_bytes"] > 0
        assert 0.0 < stats["avg_dirty_fraction"] < 1.0
