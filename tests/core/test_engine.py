"""Tests for the whole-network bit-serial inference engine."""

import numpy as np
import pytest

from repro.core import BitSerialInferenceEngine, EngineConfig
from repro.nn import DataLoader
from repro.nn.data.dataset import ArrayDataset


@pytest.fixture()
def calibration_loader():
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(32, 3, 32, 32))
    targets = rng.integers(0, 10, size=32)
    return DataLoader(ArrayDataset(inputs, targets), batch_size=16)


@pytest.fixture()
def engine(compressed_small_model, calibration_loader):
    eng = BitSerialInferenceEngine(
        compressed_small_model.model,
        compressed_small_model.pool,
        EngineConfig(activation_bitwidth=8, lut_bitwidth=None, calibration_batches=2),
    )
    eng.calibrate(calibration_loader)
    return eng


class TestEngineConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(activation_bitwidth=0)
        with pytest.raises(ValueError):
            EngineConfig(lut_bitwidth=1)
        with pytest.raises(ValueError):
            EngineConfig(activation_bitwidth=4, active_bits=6)


class TestBitSerialInferenceEngine:
    def test_requires_weight_pool_layers(self, small_model):
        from repro.core.weight_pool import WeightPool

        with pytest.raises(ValueError):
            BitSerialInferenceEngine(small_model, WeightPool(np.zeros((4, 8))))

    def test_enter_requires_calibration(self, compressed_small_model):
        engine = BitSerialInferenceEngine(
            compressed_small_model.model, compressed_small_model.pool
        )
        with pytest.raises(RuntimeError):
            with engine:
                pass

    def test_bitserial_output_close_to_float_at_8bit(self, engine, compressed_small_model):
        """Full-precision LUT + 8-bit activations should track the float model closely."""
        x = np.random.default_rng(1).normal(size=(4, 3, 32, 32))
        compressed_small_model.model.eval()
        float_out = compressed_small_model.model(x)
        bitserial_out = engine.predict(x)
        scale = max(float(np.abs(float_out).max()), 1e-6)
        assert np.abs(bitserial_out - float_out).max() < 0.25 * scale
        correlation = np.corrcoef(float_out.ravel(), bitserial_out.ravel())[0, 1]
        assert correlation > 0.98

    def test_runtimes_are_uninstalled_after_context(self, engine):
        with engine:
            assert all(layer.runtime is not None for layer in engine.layers)
        assert all(layer.runtime is None for layer in engine.layers)

    def test_lower_bitwidth_increases_error(self, engine, compressed_small_model):
        x = np.random.default_rng(2).normal(size=(2, 3, 32, 32))
        compressed_small_model.model.eval()
        float_out = compressed_small_model.model(x)
        errors = []
        for bits in (8, 4, 2):
            engine.set_activation_bitwidth(bits)
            errors.append(float(np.abs(engine.predict(x) - float_out).mean()))
        assert errors[0] < errors[1] < errors[2]

    def test_no_lut_mode_matches_fake_quant_reference(self, compressed_small_model, calibration_loader):
        engine = BitSerialInferenceEngine(
            compressed_small_model.model,
            compressed_small_model.pool,
            EngineConfig(activation_bitwidth=8, use_lut=False, calibration_batches=2),
        )
        engine.calibrate(calibration_loader)
        x = np.random.default_rng(3).normal(size=(2, 3, 32, 32))
        out = engine.predict(x)
        assert np.all(np.isfinite(out))

    def test_quantized_lut_changes_output_slightly(self, compressed_small_model, calibration_loader):
        engine = BitSerialInferenceEngine(
            compressed_small_model.model,
            compressed_small_model.pool,
            EngineConfig(activation_bitwidth=8, lut_bitwidth=None, calibration_batches=2),
        )
        engine.calibrate(calibration_loader)
        x = np.random.default_rng(4).normal(size=(2, 3, 32, 32))
        exact = engine.predict(x)
        engine.set_lut_bitwidth(8)
        quantized = engine.predict(x)
        assert not np.allclose(exact, quantized)
        assert np.abs(exact - quantized).max() < 0.5

    def test_evaluate_returns_fraction(self, engine, calibration_loader):
        accuracy = engine.evaluate(calibration_loader)
        assert 0.0 <= accuracy <= 1.0

    def test_evaluate_float_reference(self, engine, calibration_loader):
        accuracy = engine.evaluate_float(calibration_loader)
        assert 0.0 <= accuracy <= 1.0

    def test_set_bitwidth_requires_calibration(self, compressed_small_model):
        engine = BitSerialInferenceEngine(
            compressed_small_model.model, compressed_small_model.pool
        )
        with pytest.raises(RuntimeError):
            engine.set_activation_bitwidth(4)

    def test_recalibration_refreshes_input_shape(self, engine):
        """Regression: a second calibrate() must re-record the data shape."""
        assert engine.input_shape == (3, 32, 32)
        rng = np.random.default_rng(5)
        small = DataLoader(
            ArrayDataset(rng.normal(size=(16, 3, 16, 16)), rng.integers(0, 10, 16)),
            batch_size=8,
        )
        engine.calibrate(small)
        assert engine.input_shape == (3, 16, 16)
        out = engine.predict(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 10)

    def test_compile_returns_program_and_predict_delegates(self, engine):
        from repro.core import NetworkProgram

        program = engine.compile()
        assert isinstance(program, NetworkProgram)
        assert program.bound
        x = np.random.default_rng(11).normal(size=(2, 3, 32, 32))
        out = engine.predict(x)  # graph path: runtimes never installed
        assert out.shape == (2, 10)
        assert all(layer.runtime is None for layer in engine.layers)


class TestSetActivationBitwidthActiveBits:
    """Regression: set_activation_bitwidth used to silently reset active_bits."""

    def test_valid_active_bits_preserved(self, compressed_small_model, calibration_loader):
        engine = BitSerialInferenceEngine(
            compressed_small_model.model,
            compressed_small_model.pool,
            EngineConfig(activation_bitwidth=8, active_bits=3, calibration_batches=2),
        )
        engine.calibrate(calibration_loader)
        engine.set_activation_bitwidth(6)
        assert engine.config.active_bits == 3

    def test_invalid_active_bits_warns_and_resets(
        self, compressed_small_model, calibration_loader
    ):
        engine = BitSerialInferenceEngine(
            compressed_small_model.model,
            compressed_small_model.pool,
            EngineConfig(activation_bitwidth=8, active_bits=6, calibration_batches=2),
        )
        engine.calibrate(calibration_loader)
        with pytest.warns(UserWarning, match="active_bits"):
            engine.set_activation_bitwidth(4)
        assert engine.config.active_bits is None
        # The resulting config stays valid and executable.
        x = np.random.default_rng(12).normal(size=(2, 3, 32, 32))
        assert np.all(np.isfinite(engine.predict(x)))


class TestEngineLifecycle:
    """Runtime install/uninstall safety of the legacy (oracle) paths."""

    def test_evaluate_float_restores_installed_runtime(self, engine, calibration_loader):
        with engine:
            installed = [layer.runtime for layer in engine.layers]
            accuracy = engine.evaluate_float(calibration_loader)
            assert 0.0 <= accuracy <= 1.0
            assert [layer.runtime for layer in engine.layers] == installed
        assert all(layer.runtime is None for layer in engine.layers)

    def test_evaluate_float_restores_runtime_after_exception(self, engine):
        class ExplodingLoader:
            def __iter__(self):
                raise RuntimeError("boom")

        with engine:
            installed = [layer.runtime for layer in engine.layers]
            with pytest.raises(RuntimeError, match="boom"):
                engine.evaluate_float(ExplodingLoader())
            assert [layer.runtime for layer in engine.layers] == installed

    def test_legacy_evaluate_uninstalls_after_loader_exception(self, engine):
        from dataclasses import replace

        class ExplodingLoader:
            def __iter__(self):
                raise RuntimeError("boom")

        engine.config = replace(engine.config, use_graph=False)
        with pytest.raises(RuntimeError, match="boom"):
            engine.evaluate(ExplodingLoader())
        assert all(layer.runtime is None for layer in engine.layers)

    def test_calibrate_uninstalls_after_loader_exception(
        self, compressed_small_model
    ):
        class ExplodingLoader:
            def __iter__(self):
                raise RuntimeError("boom")

        engine = BitSerialInferenceEngine(
            compressed_small_model.model, compressed_small_model.pool
        )
        with pytest.raises(RuntimeError, match="boom"):
            engine.calibrate(ExplodingLoader())
        assert all(layer.runtime is None for layer in engine.layers)

    def test_enter_before_calibrate_raises_and_installs_nothing(
        self, compressed_small_model
    ):
        engine = BitSerialInferenceEngine(
            compressed_small_model.model, compressed_small_model.pool
        )
        with pytest.raises(RuntimeError):
            engine.__enter__()
        assert all(layer.runtime is None for layer in engine.layers)
