"""Tests for storage accounting and compression ratios (Eq. 3-4, Table 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CompressionPolicy,
    analyze_model_storage,
    compress_model,
    lut_storage_bits,
    theoretical_compression_ratio,
)
from repro.models import create_model
from repro.utils.bits import required_bits


class TestLutStorage:
    def test_paper_example_16kb(self):
        """Paper §3.2: 64 vectors, 8-element groups, 8-bit entries -> 16 kB."""
        bits = lut_storage_bits(group_size=8, pool_size=64, lut_bitwidth=8)
        assert bits / 8 / 1024 == 16.0

    def test_eq3_formula(self):
        assert lut_storage_bits(4, 32, 16) == (1 << 4) * 32 * 16

    def test_validation(self):
        with pytest.raises(ValueError):
            lut_storage_bits(0, 64, 8)


class TestTheoreticalCompressionRatio:
    def test_approaches_bound_for_large_networks(self):
        """Eq. 4 with 8-bit weights, group 8, 8-bit indices tends to 8x."""
        cr = theoretical_compression_ratio(10**8, index_bitwidth=8)
        assert 7.9 < cr < 8.0

    def test_log2s_indices_give_higher_ratio(self):
        cr_min = theoretical_compression_ratio(10**7, index_bitwidth=required_bits(64))
        cr_byte = theoretical_compression_ratio(10**7, index_bitwidth=8)
        assert cr_min > cr_byte

    def test_lut_dominates_small_networks(self):
        small = theoretical_compression_ratio(20_000)
        large = theoretical_compression_ratio(2_000_000)
        assert small < large

    def test_validation(self):
        with pytest.raises(ValueError):
            theoretical_compression_ratio(0)

    @given(params=st.integers(10_000, 10**7))
    @settings(max_examples=30, deadline=None)
    def test_never_exceeds_index_bound(self, params):
        """CR can never exceed weight_bits / (index_bits / group_size)."""
        cr = theoretical_compression_ratio(params, index_bitwidth=8)
        assert cr <= 8 / (8 / 8) + 1e-9


class TestAnalyzeModelStorage:
    def test_uncompressed_policy_vs_compressed_model_agree(self, compressed_small_model, small_model):
        hypothetical = analyze_model_storage(
            small_model, (3, 32, 32), policy=CompressionPolicy(), pool_size=16
        )
        actual = analyze_model_storage(
            compressed_small_model.model, (3, 32, 32), pool=compressed_small_model.pool
        )
        assert hypothetical.compression_ratio == pytest.approx(
            actual.compression_ratio, rel=1e-6
        )

    def test_compression_ratio_improves_with_network_size(self):
        ratios = []
        for name in ("resnet_s", "resnet10", "resnet14"):
            model = create_model(name, num_classes=10, rng=0)
            report = analyze_model_storage(
                model, (3, 32, 32), policy=CompressionPolicy(), pool_size=64, index_bitwidth=8
            )
            ratios.append(report.compression_ratio)
        assert ratios[0] < ratios[1] < ratios[2]
        assert ratios[2] > 6.5  # ResNet-14 approaches the 8x bound (paper: 7.55)

    def test_lut_overhead_shrinks_with_network_size(self):
        overheads = []
        for name in ("resnet_s", "resnet14"):
            model = create_model(name, num_classes=10, rng=0)
            report = analyze_model_storage(
                model, (3, 32, 32), policy=CompressionPolicy(), pool_size=64, index_bitwidth=8
            )
            overheads.append(report.lut_overhead)
        assert overheads[0] > overheads[1]

    def test_no_compressed_layers_means_no_lut(self):
        model = create_model("tinyconv", num_classes=10, in_channels=3, width_mult=0.1, rng=0)
        report = analyze_model_storage(model, (3, 32, 32), policy=CompressionPolicy())
        assert report.lut_bits == 0
        assert report.compression_ratio <= 1.0 + 1e-9

    def test_total_params_matches_model(self, small_model):
        from repro.core.tracing import total_weight_params, trace_model

        report = analyze_model_storage(small_model, (3, 32, 32), policy=CompressionPolicy())
        assert report.total_params == total_weight_params(trace_model(small_model, (3, 32, 32)))

    def test_larger_pool_increases_lut_share(self, small_model):
        small = analyze_model_storage(small_model, (3, 32, 32), pool_size=32)
        large = analyze_model_storage(small_model, (3, 32, 32), pool_size=128)
        assert large.lut_bits > small.lut_bits
        assert large.lut_overhead > small.lut_overhead

    def test_compressed_layer_storage_counts_indices(self, compressed_small_model):
        report = analyze_model_storage(
            compressed_small_model.model,
            (3, 32, 32),
            pool=compressed_small_model.pool,
            index_bitwidth=8,
        )
        compressed_layers = [l for l in report.layers if l.compressed]
        assert compressed_layers
        for layer in compressed_layers:
            # 8-bit indices, one per 8 weights: 1/8 of the 8-bit baseline (+ bias).
            expected = layer.weight_params / 8 * 8 + layer.bias_params * 8
            assert layer.storage_bits == pytest.approx(expected)

    def test_flash_bytes_positive(self, small_model):
        report = analyze_model_storage(small_model, (3, 32, 32))
        assert report.flash_bytes() > 0
