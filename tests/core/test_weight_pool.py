"""Tests for the WeightPool container and pool construction."""

import numpy as np
import pytest

from repro.core import CompressionPolicy, build_weight_pool
from repro.core.weight_pool import WeightPool, collect_poolable_vectors
from repro.models import create_model


class TestWeightPool:
    def test_basic_properties(self, small_pool):
        assert small_pool.size == 16
        assert small_pool.group_size == 8
        assert small_pool.index_bitwidth == 4
        assert small_pool.storage_bits(8) == 16 * 8 * 8

    def test_assign_returns_nearest_cosine(self):
        pool = WeightPool(np.array([[1.0, 0.0], [0.0, 1.0]]), metric="cosine")
        indices = pool.assign(np.array([[5.0, 0.1], [0.2, 9.0]]))
        np.testing.assert_array_equal(indices, [0, 1])

    def test_assign_scale_invariance_cosine(self, small_pool):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(40, 8))
        base = small_pool.assign(vectors)
        np.testing.assert_array_equal(small_pool.assign(vectors * 100.0), base)
        np.testing.assert_array_equal(small_pool.assign(vectors * 0.01), base)

    def test_assign_euclidean(self):
        pool = WeightPool(np.array([[0.0, 0.0], [10.0, 10.0]]), metric="euclidean")
        np.testing.assert_array_equal(
            pool.assign(np.array([[1.0, 1.0], [9.0, 9.0]])), [0, 1]
        )

    def test_assign_shape_validation(self, small_pool):
        with pytest.raises(ValueError):
            small_pool.assign(np.zeros((3, 4)))

    def test_reconstruct_gathers_vectors(self, small_pool):
        indices = np.array([[0, 1], [2, 3]])
        gathered = small_pool.reconstruct(indices)
        assert gathered.shape == (2, 2, 8)
        np.testing.assert_allclose(gathered[0, 0], small_pool.vectors[0])

    def test_reconstruct_rejects_out_of_range(self, small_pool):
        with pytest.raises(ValueError):
            small_pool.reconstruct(np.array([99]))

    def test_quantization_error_zero_for_pool_members(self, small_pool):
        assert small_pool.quantization_error(small_pool.vectors.copy()) < 1e-20

    def test_save_load_roundtrip(self, small_pool, tmp_path):
        path = tmp_path / "pool.npz"
        small_pool.save(path)
        loaded = WeightPool.load(path)
        np.testing.assert_allclose(loaded.vectors, small_pool.vectors)
        assert loaded.metric == small_pool.metric

    def test_rejects_non_2d_vectors(self):
        with pytest.raises(ValueError):
            WeightPool(np.zeros((2, 3, 4)))


class TestBuildWeightPool:
    def test_pool_has_requested_size_and_group(self, small_model):
        pool = build_weight_pool(small_model, (3, 32, 32), pool_size=16, seed=0)
        assert pool.size == 16
        assert pool.group_size == 8

    def test_collect_respects_policy(self, small_model):
        vectors, eligible = collect_poolable_vectors(
            small_model, (3, 32, 32), CompressionPolicy(group_size=8)
        )
        assert vectors.shape[1] == 8
        # The first (stem) convolution must not contribute vectors.
        assert all(not trace.is_first for trace in eligible)

    def test_no_eligible_layers_raises(self):
        model = create_model("tinyconv", num_classes=4, in_channels=3, width_mult=0.1, rng=0)
        # width 0.1 -> 4-channel convs, none divisible by 8, first layer excluded.
        with pytest.raises(ValueError):
            collect_poolable_vectors(model, (3, 32, 32), CompressionPolicy(group_size=8))

    def test_subsampling_limits_clustering_input(self, small_model):
        pool = build_weight_pool(
            small_model, (3, 32, 32), pool_size=8, max_cluster_vectors=50, seed=0
        )
        assert pool.size == 8

    def test_deterministic_given_seed(self, small_model):
        a = build_weight_pool(small_model, (3, 32, 32), pool_size=8, seed=3)
        b = build_weight_pool(small_model, (3, 32, 32), pool_size=8, seed=3)
        np.testing.assert_allclose(a.vectors, b.vectors)
