"""Property tests for the compiled kernel plans.

The central contract: plan-based execution is **bit-exact** with the legacy
tap-loop kernels (`bitserial_conv2d_reference` / `bitserial_linear_reference`)
for full-precision LUTs, across random shapes, strides, paddings, activation
bitwidths, `active_bits` truncations, and both §4.3 dispatch branches.
Quantized LUTs accumulate in integers, so the plan result equals the integer
sum times the LUT scale — compared against the reference with a tight
relative tolerance (the reference multiplies each entry by the scale before
summing).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BitSerialInferenceEngine, EngineConfig
from repro.core.bitserial import (
    bit_vector_values,
    bitserial_conv2d,
    bitserial_conv2d_reference,
    bitserial_dot,
    bitserial_linear,
    bitserial_linear_reference,
)
from repro.core.kernel_plan import ConvKernelPlan, compile_conv_plan, compile_linear_plan
from repro.core.lut import build_lut
from repro.core.weight_pool import WeightPool
from repro.nn import DataLoader
from repro.nn.data.dataset import ArrayDataset
from repro.utils.bits import min_uint_dtype


@pytest.fixture(scope="module")
def pool():
    return WeightPool(np.random.default_rng(11).normal(size=(16, 8)))


@pytest.fixture(scope="module")
def lut(pool):
    return build_lut(pool)


class TestCompactDtypes:
    def test_min_uint_dtype(self):
        assert min_uint_dtype(255) == np.uint8
        assert min_uint_dtype(256) == np.uint16
        assert min_uint_dtype(1 << 16) == np.uint32
        with pytest.raises(ValueError):
            min_uint_dtype(-1)

    def test_bit_vector_values_uint8_for_paper_group_size(self):
        groups = np.random.default_rng(0).integers(0, 256, size=(4, 8))
        addresses = bit_vector_values(groups, 8)
        assert addresses.dtype == np.uint8

    def test_bit_vector_values_uint16_for_wide_groups(self):
        groups = np.random.default_rng(0).integers(0, 4, size=(4, 12))
        assert bit_vector_values(groups, 2).dtype == np.uint16

    def test_quantized_plan_uses_integer_tables(self, pool, lut):
        indices = np.zeros((2, 2, 3, 3), dtype=int)
        plan8 = compile_conv_plan(indices, lut.quantize(8), act_bitwidth=8)
        assert plan8.integer
        assert plan8.tables.dtype == np.int16  # 8-bit entries × 8-bit weights
        plan16 = compile_conv_plan(indices, lut.quantize(16), act_bitwidth=8)
        assert plan16.tables.dtype == np.int32

    def test_full_precision_plan_keeps_float64(self, lut):
        plan = compile_conv_plan(np.zeros((2, 2, 3, 3), dtype=int), lut)
        assert not plan.integer
        assert plan.tables.dtype == np.float64


class TestConvPlanExactness:
    @given(
        seed=st.integers(0, 1000),
        act_bitwidth=st.integers(1, 8),
        stride=st.integers(1, 3),
        padding=st.integers(0, 2),
        kh=st.integers(1, 3),
        kw=st.integers(1, 3),
        filters=st.integers(1, 24),  # crosses the pool size (16): both branches
        use_active_bits=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_bit_exact_with_reference(
        self, pool, lut, seed, act_bitwidth, stride, padding, kh, kw, filters, use_active_bits
    ):
        rng = np.random.default_rng(seed)
        groups = int(rng.integers(1, 3))
        h = int(rng.integers(max(kh - 2 * padding, 1), 7))
        w = int(rng.integers(max(kw - 2 * padding, 1), 7))
        q_x = rng.integers(0, 1 << act_bitwidth, size=(2, groups * 8, h, w))
        indices = rng.integers(0, pool.size, size=(filters, groups, kh, kw))
        pad_value = int(rng.integers(0, 1 << act_bitwidth))
        active = int(rng.integers(1, act_bitwidth + 1)) if use_active_bits else None

        plan = compile_conv_plan(
            indices, lut, stride=stride, padding=padding,
            act_bitwidth=act_bitwidth, pad_value=pad_value,
        )
        expected_mode = "direct" if filters <= pool.size else "precompute"
        assert plan.mode == expected_mode
        out = plan(q_x, active_bits=active)
        ref = bitserial_conv2d_reference(
            q_x, indices, lut, stride, padding,
            act_bitwidth=act_bitwidth, active_bits=active, pad_value=pad_value,
        )
        np.testing.assert_array_equal(out, ref)

    @given(seed=st.integers(0, 500), lut_bitwidth=st.integers(2, 16))
    @settings(max_examples=25, deadline=None)
    def test_quantized_lut_close_to_reference(self, pool, lut, seed, lut_bitwidth):
        rng = np.random.default_rng(seed)
        qlut = lut.quantize(lut_bitwidth)
        q_x = rng.integers(0, 256, size=(2, 8, 5, 5))
        indices = rng.integers(0, pool.size, size=(4, 1, 3, 3))
        plan = compile_conv_plan(indices, qlut, stride=1, padding=1, act_bitwidth=8)
        ref = bitserial_conv2d_reference(q_x, indices, qlut, 1, 1, act_bitwidth=8)
        # Integer accumulation vs per-entry float dequantization: equal up to
        # float rounding of the final rescale.
        scale = max(np.abs(ref).max(), 1.0)
        assert np.abs(plan(q_x) - ref).max() <= 1e-9 * scale

    def test_empty_batch(self, pool, lut):
        indices = np.zeros((4, 2, 3, 3), dtype=int)
        plan = compile_conv_plan(indices, lut, stride=1, padding=1)
        out = plan(np.zeros((0, 16, 6, 6), dtype=int))
        assert out.shape == (0, 4, 6, 6)

    def test_matches_bitserial_dot_single_tap(self, pool, lut):
        rng = np.random.default_rng(3)
        q = rng.integers(0, 256, size=8)
        for pool_index in (0, 7, 15):
            indices = np.full((1, 1, 1, 1), pool_index)
            plan = compile_conv_plan(indices, lut, act_bitwidth=8)
            out = plan(q.reshape(1, 8, 1, 1))
            assert out.shape == (1, 1, 1, 1)
            assert out[0, 0, 0, 0] == pytest.approx(bitserial_dot(q, pool_index, lut, 8))

    def test_public_kernel_is_plan_backed_and_exact(self, pool, lut):
        rng = np.random.default_rng(4)
        q_x = rng.integers(0, 256, size=(2, 16, 6, 6))
        indices = rng.integers(0, pool.size, size=(5, 2, 3, 3))
        out = bitserial_conv2d(q_x, indices, lut, stride=2, padding=1, act_bitwidth=8)
        ref = bitserial_conv2d_reference(q_x, indices, lut, 2, 1, act_bitwidth=8)
        np.testing.assert_array_equal(out, ref)

    def test_float32_tables_trade_exactness_for_memory(self, pool, lut):
        rng = np.random.default_rng(5)
        q_x = rng.integers(0, 256, size=(1, 8, 5, 5))
        indices = rng.integers(0, pool.size, size=(3, 1, 3, 3))
        plan = compile_conv_plan(indices, lut, padding=1, table_dtype=np.float32)
        assert plan.tables.dtype == np.float32
        ref = bitserial_conv2d_reference(q_x, indices, lut, 1, 1, act_bitwidth=8)
        np.testing.assert_allclose(plan(q_x), ref, rtol=1e-4)


class TestLinearPlanExactness:
    @given(
        seed=st.integers(0, 500),
        act_bitwidth=st.integers(1, 8),
        out_features=st.integers(1, 24),
        use_active_bits=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_bit_exact_with_reference(
        self, pool, lut, seed, act_bitwidth, out_features, use_active_bits
    ):
        rng = np.random.default_rng(seed)
        groups = int(rng.integers(1, 5))
        q_x = rng.integers(0, 1 << act_bitwidth, size=(3, groups * 8))
        indices = rng.integers(0, pool.size, size=(out_features, groups))
        active = int(rng.integers(1, act_bitwidth + 1)) if use_active_bits else None
        plan = compile_linear_plan(indices, lut, act_bitwidth=act_bitwidth)
        out = plan(q_x, active_bits=active)
        ref = bitserial_linear_reference(
            q_x, indices, lut, act_bitwidth=act_bitwidth, active_bits=active
        )
        np.testing.assert_array_equal(out, ref)

    def test_public_kernel_is_plan_backed_and_exact(self, pool, lut):
        rng = np.random.default_rng(6)
        q_x = rng.integers(0, 256, size=(4, 24))
        indices = rng.integers(0, pool.size, size=(7, 3))
        np.testing.assert_array_equal(
            bitserial_linear(q_x, indices, lut),
            bitserial_linear_reference(q_x, indices, lut),
        )


class TestFusedEpilogue:
    def test_conv_epilogue_matches_manual_dequantization(self, pool, lut):
        rng = np.random.default_rng(7)
        q_x = rng.integers(0, 256, size=(2, 8, 5, 5))
        indices = rng.integers(0, pool.size, size=(4, 1, 3, 3))
        scale, zero_point = 0.037, 9
        bias = rng.normal(size=4)
        plan = compile_conv_plan(
            indices, lut, stride=1, padding=1, act_bitwidth=8,
            pad_value=zero_point, scale=scale, zero_point=zero_point, bias=bias,
        )
        raw = bitserial_conv2d_reference(
            q_x, indices, lut, 1, 1, act_bitwidth=8, pad_value=zero_point
        )
        w_sums = lut.pool_vector_sums()[indices].reshape(4, -1).sum(axis=1)
        expected = scale * (raw - zero_point * w_sums.reshape(1, -1, 1, 1))
        expected = expected + bias.reshape(1, -1, 1, 1)
        np.testing.assert_allclose(plan(q_x), expected, rtol=1e-12, atol=1e-12)

    def test_linear_epilogue_matches_manual_dequantization(self, pool, lut):
        rng = np.random.default_rng(8)
        q_x = rng.integers(0, 256, size=(3, 16))
        indices = rng.integers(0, pool.size, size=(5, 2))
        scale, zero_point = 0.11, 4
        bias = rng.normal(size=5)
        plan = compile_linear_plan(
            indices, lut, act_bitwidth=8, scale=scale, zero_point=zero_point, bias=bias
        )
        raw = bitserial_linear_reference(q_x, indices, lut, act_bitwidth=8)
        w_sums = lut.pool_vector_sums()[indices].sum(axis=1)
        expected = scale * (raw - zero_point * w_sums) + bias
        np.testing.assert_allclose(plan(q_x), expected, rtol=1e-12, atol=1e-12)


class TestValidation:
    def test_conv_shape_and_range_validation(self, lut):
        with pytest.raises(ValueError):
            compile_conv_plan(np.zeros((2, 1, 3), dtype=int), lut)
        with pytest.raises(ValueError):
            compile_conv_plan(np.full((2, 1, 3, 3), lut.pool_size, dtype=int), lut)
        plan = compile_conv_plan(np.zeros((2, 1, 3, 3), dtype=int), lut, act_bitwidth=8)
        with pytest.raises(ValueError):
            plan(np.zeros((1, 8, 4, 4), dtype=int), active_bits=9)
        with pytest.raises(ValueError):
            plan(np.zeros((1, 12, 4, 4), dtype=int))
        with pytest.raises(ValueError):
            plan(np.zeros((8, 4, 4), dtype=int))
        with pytest.raises(ValueError):
            plan(np.full((1, 8, 4, 4), 256, dtype=int))
        with pytest.raises(ValueError):
            plan(np.full((1, 8, 4, 4), -1, dtype=int))

    def test_linear_shape_validation(self, lut):
        with pytest.raises(ValueError):
            compile_linear_plan(np.zeros((3,), dtype=int), lut)
        plan = compile_linear_plan(np.zeros((3, 3), dtype=int), lut)
        with pytest.raises(ValueError):
            plan(np.zeros((2, 20), dtype=int))
        with pytest.raises(ValueError):
            plan(np.zeros((2,), dtype=int))

    def test_bad_pad_value_rejected(self, lut):
        with pytest.raises(ValueError):
            compile_conv_plan(
                np.zeros((2, 1, 3, 3), dtype=int), lut,
                padding=1, act_bitwidth=4, pad_value=16,
            )


class TestEnginePlanPath:
    @pytest.fixture()
    def calibration_loader(self):
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(32, 3, 32, 32))
        targets = rng.integers(0, 10, size=32)
        return DataLoader(ArrayDataset(inputs, targets), batch_size=16)

    def test_plan_path_bit_exact_with_legacy_path(
        self, compressed_small_model, calibration_loader
    ):
        """Whole-network invariant: plans and the tap-loop path agree exactly
        (full-precision LUT) on every layer, hence on the logits."""
        from dataclasses import replace

        engine = BitSerialInferenceEngine(
            compressed_small_model.model,
            compressed_small_model.pool,
            EngineConfig(activation_bitwidth=8, lut_bitwidth=None, calibration_batches=2),
        )
        engine.calibrate(calibration_loader)
        x = np.random.default_rng(9).normal(size=(4, 3, 32, 32))
        engine.config = replace(engine.config, use_kernel_plans=True)
        plan_out = engine.predict(x)
        engine.config = replace(engine.config, use_kernel_plans=False)
        legacy_out = engine.predict(x)
        np.testing.assert_allclose(plan_out, legacy_out, rtol=1e-12, atol=1e-10)

    def test_plan_cache_invalidated_on_bitwidth_change(
        self, compressed_small_model, calibration_loader
    ):
        from dataclasses import replace

        engine = BitSerialInferenceEngine(
            compressed_small_model.model,
            compressed_small_model.pool,
            EngineConfig(
                activation_bitwidth=8, lut_bitwidth=8, calibration_batches=2,
                use_graph=False,  # exercise the per-layer plan cache directly
            ),
        )
        engine.calibrate(calibration_loader)
        x = np.random.default_rng(10).normal(size=(2, 3, 32, 32))
        engine.predict(x)
        assert engine._plans
        engine.set_activation_bitwidth(4)
        assert not engine._plans
        out4 = engine.predict(x)
        plan = next(iter(engine._plans.values()))
        conv_plan = plan if isinstance(plan, ConvKernelPlan) else plan.conv_plan
        assert conv_plan.act_bitwidth == 4
        engine.set_lut_bitwidth(4)
        assert not engine._plans
        assert np.all(np.isfinite(out4))
        # The whole-network executor cache invalidates on the same events.
        engine.config = replace(engine.config, use_graph=True)
        engine.predict(x)
        assert engine._executors
        engine.set_activation_bitwidth(6)
        assert not engine._executors


class TestPaddingHoist:
    """The network compiler's padding-hoist variant against the base plan.

    `_pool_partials_grouped` / `_border_constants` / `_reduce_taps_hoisted`
    deliberately mirror the base stage-1/stage-2 loops; this sweep is the
    guard that keeps the two pipelines from drifting apart.
    """

    CONFIGS = [
        (16, 12, 3, 1, 1, 8),   # C, H, kernel, stride, padding, filters
        (8, 16, 3, 2, 1, 20),   # strided, precompute mode (F > S)
        (16, 9, 3, 3, 2, 4),    # stride 3, wide padding
        (8, 8, 1, 1, 0, 5),     # pointwise, no padding
        (8, 10, 5, 1, 2, 30),   # 5x5 kernel
    ]

    @pytest.mark.parametrize("lut_bitwidth", [None, 8])
    def test_hoisted_plan_matches_base_plan(self, lut_bitwidth):
        rng = np.random.default_rng(0)
        pool = WeightPool(vectors=rng.normal(size=(16, 8)))
        lut = build_lut(pool)
        if lut_bitwidth is not None:
            lut = lut.quantize(lut_bitwidth)
        for channels, size, kernel, stride, padding, filters in self.CONFIGS:
            indices = rng.integers(0, 16, size=(filters, channels // 8, kernel, kernel))
            zero_point = 7 if padding else 0
            kwargs = dict(
                stride=stride,
                padding=padding,
                act_bitwidth=8,
                pad_value=zero_point,
                scale=0.1,
                zero_point=zero_point,
                bias=rng.normal(size=filters),
            )
            base = compile_conv_plan(indices, lut, **kwargs)
            hoisted = compile_conv_plan(indices, lut, hoist_padding=True, **kwargs)
            q_x = rng.integers(0, 256, size=(3, channels, size, size))
            for active_bits in (None, 4):
                want = base(q_x, active_bits=active_bits)
                got = hoisted(q_x, active_bits=active_bits)
                if lut_bitwidth is not None:
                    # Integer accumulation: the hoist is exactly equivalent.
                    np.testing.assert_array_equal(got, want)
                else:
                    # Float tables: only the tap-sum order differs.
                    np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)
