"""Tests for cosine/euclidean K-means."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import kmeans


def _blobs(rng, centers, points_per_center=30, scale=0.05):
    data = []
    for center in centers:
        data.append(center + rng.normal(scale=scale, size=(points_per_center, len(center))))
    return np.concatenate(data)


class TestKMeans:
    def test_recovers_well_separated_clusters_euclidean(self):
        rng = np.random.default_rng(0)
        centers = np.array([[5.0, 0.0], [-5.0, 0.0], [0.0, 5.0]])
        data = _blobs(rng, centers)
        result = kmeans(data, 3, metric="euclidean", seed=0)
        recovered = sorted(tuple(np.round(c).astype(int)) for c in result.centroids)
        expected = sorted(tuple(c.astype(int)) for c in centers)
        assert recovered == expected

    def test_recovers_directional_clusters_cosine(self):
        rng = np.random.default_rng(1)
        directions = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, 1.0]])
        data = []
        for direction in directions:
            scales = rng.uniform(0.5, 3.0, size=(40, 1))  # different magnitudes
            data.append(direction * scales + rng.normal(scale=0.02, size=(40, 2)))
        data = np.concatenate(data)
        result = kmeans(data, 3, metric="cosine", seed=0)
        assert len(np.unique(result.assignments)) == 3

    def test_requested_cluster_count_is_honoured(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(100, 8))
        result = kmeans(data, 16, seed=0)
        assert result.centroids.shape == (16, 8)
        assert set(np.unique(result.assignments)) <= set(range(16))

    def test_cosine_assignment_is_scale_invariant(self):
        """DESIGN invariant 7."""
        rng = np.random.default_rng(3)
        data = rng.normal(size=(60, 8))
        result = kmeans(data, 4, metric="cosine", seed=0)
        scaled_assignment = kmeans(data, 4, metric="cosine", seed=0)
        # Re-assign scaled copies of the points to the learned centroids.
        from repro.core.weight_pool import WeightPool

        pool = WeightPool(result.centroids, metric="cosine")
        base = pool.assign(data)
        for factor in (0.1, 3.0, 17.0):
            np.testing.assert_array_equal(pool.assign(data * factor), base)
        del scaled_assignment

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(50, 4))
        a = kmeans(data, 5, seed=11)
        b = kmeans(data, 5, seed=11)
        np.testing.assert_allclose(a.centroids, b.centroids)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 4)), 5)

    def test_invalid_metric_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((10, 2)), 2, metric="manhattan")

    def test_invalid_cluster_count_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((10, 2)), 0)

    def test_duplicate_points_do_not_crash(self):
        data = np.ones((20, 4))
        result = kmeans(data, 3, seed=0)
        assert result.centroids.shape == (3, 4)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_inertia_no_worse_than_random_centroids(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(80, 6))
        result = kmeans(data, 8, metric="euclidean", seed=seed)
        random_centroids = rng.normal(size=(8, 6))
        dists = ((data[:, None, :] - random_centroids[None]) ** 2).sum(-1)
        random_inertia = dists.min(axis=1).sum()
        assert result.inertia <= random_inertia + 1e-9
