"""Tests for compression policies and model tracing."""

import numpy as np
import pytest

from repro.core import CompressionPolicy
from repro.core.tracing import trace_model, total_weight_params
from repro.models import create_model
from repro.nn import Conv2d, Linear, Sequential, Flatten


class TestTracing:
    def test_traces_cover_all_weight_layers(self, small_model):
        traces = trace_model(small_model, (3, 32, 32))
        conv_count = sum(1 for t in traces if t.kind == "conv")
        linear_count = sum(1 for t in traces if t.kind == "linear")
        model_convs = sum(1 for m in small_model.modules() if isinstance(m, Conv2d))
        model_linears = sum(1 for m in small_model.modules() if isinstance(m, Linear))
        assert conv_count == model_convs
        assert linear_count == model_linears

    def test_first_conv_is_marked(self, small_model):
        traces = trace_model(small_model, (3, 32, 32))
        first_flags = [t for t in traces if t.is_first]
        assert len(first_flags) == 1
        assert first_flags[0].kind == "conv"
        assert first_flags[0].in_channels == 3

    def test_input_output_geometry(self):
        model = Sequential(Conv2d(3, 8, 3, stride=2, padding=1, rng=0), Flatten(), Linear(8 * 16 * 16, 5, rng=0))
        traces = trace_model(model, (3, 32, 32))
        conv_trace = traces[0]
        assert conv_trace.input_hw == (32, 32)
        assert conv_trace.output_hw == (16, 16)
        assert traces[1].kind == "linear"

    def test_macs_formula(self):
        model = Sequential(Conv2d(4, 8, 3, stride=1, padding=1, rng=0))
        trace = trace_model(model, (4, 10, 10))[0]
        assert trace.macs == 8 * 10 * 10 * 4 * 9

    def test_depthwise_macs_account_for_groups(self):
        model = Sequential(Conv2d(8, 8, 3, stride=1, padding=1, groups=8, rng=0))
        trace = trace_model(model, (8, 6, 6))[0]
        assert trace.is_depthwise
        assert trace.macs == 8 * 6 * 6 * 1 * 9

    def test_total_weight_params_matches_module_count(self, small_model):
        traces = trace_model(small_model, (3, 32, 32))
        expected = sum(
            int(np.prod(m.weight.shape))
            for m in small_model.modules()
            if isinstance(m, (Conv2d, Linear))
        )
        assert total_weight_params(traces) == expected

    def test_weight_params_property(self):
        model = Sequential(Conv2d(3, 4, 3, rng=0))
        trace = trace_model(model, (3, 8, 8))[0]
        assert trace.weight_params == 4 * 3 * 9
        assert trace.bias_params == 4


class TestCompressionPolicy:
    def _traces(self, name="mobilenetv2_tiny", channels=3):
        model = create_model(name, num_classes=10, in_channels=channels, rng=0)
        return trace_model(model, (channels, 32, 32))

    def test_first_layer_skipped_by_default(self, small_model):
        traces = trace_model(small_model, (3, 32, 32))
        policy = CompressionPolicy()
        assert not policy.eligible(next(t for t in traces if t.is_first))

    def test_first_layer_can_be_compressed_with_padding(self, small_model):
        traces = trace_model(small_model, (3, 32, 32))
        policy = CompressionPolicy(compress_first_layer=True, pad_channels=True)
        assert policy.eligible(next(t for t in traces if t.is_first))

    def test_depthwise_skipped_by_default(self):
        traces = self._traces()
        depthwise = [t for t in traces if t.is_depthwise]
        assert depthwise, "expected depthwise layers in MobileNet-v2"
        policy = CompressionPolicy()
        assert all(not policy.eligible(t) for t in depthwise)

    def test_pointwise_layers_eligible(self):
        traces = self._traces()
        policy = CompressionPolicy()
        pointwise = [t for t in traces if t.is_pointwise and not t.is_first]
        eligible = [t for t in pointwise if policy.eligible(t)]
        assert eligible, "expected at least some pointwise layers to be compressible"

    def test_fc_skipped_unless_enabled(self, small_model):
        traces = trace_model(small_model, (3, 32, 32))
        fc = next(t for t in traces if t.kind == "linear")
        assert not CompressionPolicy().eligible(fc)
        assert CompressionPolicy(compress_fc=True).eligible(fc)

    def test_thin_layers_skipped_without_padding(self):
        model = Sequential(Conv2d(3, 8, 3, rng=0), Conv2d(8, 6, 3, rng=0), Conv2d(6, 8, 3, rng=0))
        traces = trace_model(model, (3, 20, 20))
        policy = CompressionPolicy(group_size=8)
        # Third conv has 6 input channels: skipped unless padding is enabled.
        assert not policy.eligible(traces[2])
        assert CompressionPolicy(group_size=8, pad_channels=True).eligible(traces[2])

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            CompressionPolicy(group_size=1)

    def test_describe_mentions_choices(self):
        text = CompressionPolicy(compress_fc=True).describe()
        assert "FC compressed" in text and "group_size=8" in text
