"""Tests for deployment-package export (indices packing, persistence, C header)."""

import numpy as np
import pytest

from repro.core import analyze_model_storage
from repro.core.export import (
    DeploymentPackage,
    build_deployment_package,
    emit_c_header,
)


@pytest.fixture()
def package(compressed_small_model):
    result = compressed_small_model
    return build_deployment_package(
        result.model,
        (3, 32, 32),
        result.pool,
        network_name="resnet_s_tiny",
        index_bitwidth=8,
    )


class TestBuildDeploymentPackage:
    def test_metadata(self, package, compressed_small_model):
        assert package.network == "resnet_s_tiny"
        assert package.group_size == 8
        assert package.pool_size == compressed_small_model.pool.size
        assert package.lut_integer.shape == (256, package.pool_size)

    def test_every_layer_is_represented(self, package, compressed_small_model):
        from repro.core.tracing import trace_model

        traces = trace_model(compressed_small_model.model, (3, 32, 32))
        assert len(package.layers) == len(traces)
        assert len(package.compressed_layers) == compressed_small_model.num_compressed_layers

    def test_packed_indices_roundtrip(self, package, compressed_small_model):
        pools = compressed_small_model.weight_pool_modules()
        by_name = {layer.name: layer for layer in package.layers}
        for name, module in pools.items():
            artifact = by_name[name]
            np.testing.assert_array_equal(artifact.unpack_indices(), module.indices)

    def test_uncompressed_layers_store_q7_weights(self, package):
        uncompressed = [l for l in package.layers if not l.compressed]
        assert uncompressed
        for layer in uncompressed:
            assert layer.q_weight is not None
            assert layer.q_weight.dtype == np.int8

    def test_flash_size_close_to_storage_report(self, package, compressed_small_model):
        report = analyze_model_storage(
            compressed_small_model.model,
            (3, 32, 32),
            pool=compressed_small_model.pool,
            index_bitwidth=8,
        )
        # The package and the accounting agree to within the bias/rounding slack.
        assert package.flash_bytes == pytest.approx(report.compressed_bytes, rel=0.1)

    def test_sub_byte_index_packing_shrinks_stream(self, compressed_small_model):
        result = compressed_small_model
        byte_package = build_deployment_package(
            result.model, (3, 32, 32), result.pool, index_bitwidth=8
        )
        nibble_package = build_deployment_package(
            result.model, (3, 32, 32), result.pool, index_bitwidth=4
        )
        assert nibble_package.flash_bytes < byte_package.flash_bytes
        # Packing at 4 bits still roundtrips exactly (pool has 16 entries).
        pools = result.weight_pool_modules()
        by_name = {layer.name: layer for layer in nibble_package.layers}
        for name, module in pools.items():
            np.testing.assert_array_equal(by_name[name].unpack_indices(), module.indices)

    def test_invalid_index_bitwidth_rejected(self, compressed_small_model):
        result = compressed_small_model
        with pytest.raises(ValueError):
            build_deployment_package(
                result.model, (3, 32, 32), result.pool, index_bitwidth=16
            )


class TestPersistence:
    def test_save_load_roundtrip(self, package, tmp_path):
        path = tmp_path / "net.npz"
        package.save(path)
        loaded = DeploymentPackage.load(path)
        assert loaded.network == package.network
        assert loaded.pool_size == package.pool_size
        np.testing.assert_array_equal(loaded.lut_integer, package.lut_integer)
        assert len(loaded.layers) == len(package.layers)
        for original, restored in zip(package.layers, loaded.layers):
            assert original.name == restored.name
            assert original.compressed == restored.compressed
            if original.packed_indices is not None:
                np.testing.assert_array_equal(
                    restored.unpack_indices(), original.unpack_indices()
                )


class TestCHeader:
    def test_header_contains_all_sections(self, package):
        header = emit_c_header(package)
        assert header.startswith("#ifndef")
        assert "#define WP_POOL_SIZE" in header
        assert "wp_lut" in header
        assert "wp_layer0" in header
        # One array per compressed layer's indices.
        assert header.count("_indices[") == len(package.compressed_layers)

    def test_header_is_ascii_and_balanced(self, package):
        header = emit_c_header(package)
        header.encode("ascii")
        assert header.count("{") == header.count("}")
        assert header.rstrip().endswith("#endif /* WEIGHT_POOL_NETWORK_H */")
