"""Tests for deployment-package export (indices packing, persistence, C header)
and the versioned compiled-program artifact format."""

import json

import numpy as np
import pytest

from repro.core import analyze_model_storage
from repro.core.export import (
    PROGRAM_SCHEMA_VERSION,
    DeploymentPackage,
    ProgramFormatError,
    build_deployment_package,
    emit_c_header,
    load_program,
    read_program_metadata,
    save_program,
)


@pytest.fixture()
def package(compressed_small_model):
    result = compressed_small_model
    return build_deployment_package(
        result.model,
        (3, 32, 32),
        result.pool,
        network_name="resnet_s_tiny",
        index_bitwidth=8,
    )


class TestBuildDeploymentPackage:
    def test_metadata(self, package, compressed_small_model):
        assert package.network == "resnet_s_tiny"
        assert package.group_size == 8
        assert package.pool_size == compressed_small_model.pool.size
        assert package.lut_integer.shape == (256, package.pool_size)

    def test_every_layer_is_represented(self, package, compressed_small_model):
        from repro.core.tracing import trace_model

        traces = trace_model(compressed_small_model.model, (3, 32, 32))
        assert len(package.layers) == len(traces)
        assert len(package.compressed_layers) == compressed_small_model.num_compressed_layers

    def test_packed_indices_roundtrip(self, package, compressed_small_model):
        pools = compressed_small_model.weight_pool_modules()
        by_name = {layer.name: layer for layer in package.layers}
        for name, module in pools.items():
            artifact = by_name[name]
            np.testing.assert_array_equal(artifact.unpack_indices(), module.indices)

    def test_uncompressed_layers_store_q7_weights(self, package):
        uncompressed = [l for l in package.layers if not l.compressed]
        assert uncompressed
        for layer in uncompressed:
            assert layer.q_weight is not None
            assert layer.q_weight.dtype == np.int8

    def test_flash_size_close_to_storage_report(self, package, compressed_small_model):
        report = analyze_model_storage(
            compressed_small_model.model,
            (3, 32, 32),
            pool=compressed_small_model.pool,
            index_bitwidth=8,
        )
        # The package and the accounting agree to within the bias/rounding slack.
        assert package.flash_bytes == pytest.approx(report.compressed_bytes, rel=0.1)

    def test_sub_byte_index_packing_shrinks_stream(self, compressed_small_model):
        result = compressed_small_model
        byte_package = build_deployment_package(
            result.model, (3, 32, 32), result.pool, index_bitwidth=8
        )
        nibble_package = build_deployment_package(
            result.model, (3, 32, 32), result.pool, index_bitwidth=4
        )
        assert nibble_package.flash_bytes < byte_package.flash_bytes
        # Packing at 4 bits still roundtrips exactly (pool has 16 entries).
        pools = result.weight_pool_modules()
        by_name = {layer.name: layer for layer in nibble_package.layers}
        for name, module in pools.items():
            np.testing.assert_array_equal(by_name[name].unpack_indices(), module.indices)

    def test_invalid_index_bitwidth_rejected(self, compressed_small_model):
        result = compressed_small_model
        with pytest.raises(ValueError):
            build_deployment_package(
                result.model, (3, 32, 32), result.pool, index_bitwidth=16
            )


class TestPersistence:
    def test_save_load_roundtrip(self, package, tmp_path):
        path = tmp_path / "net.npz"
        package.save(path)
        loaded = DeploymentPackage.load(path)
        assert loaded.network == package.network
        assert loaded.pool_size == package.pool_size
        np.testing.assert_array_equal(loaded.lut_integer, package.lut_integer)
        assert len(loaded.layers) == len(package.layers)
        for original, restored in zip(package.layers, loaded.layers):
            assert original.name == restored.name
            assert original.compressed == restored.compressed
            if original.packed_indices is not None:
                np.testing.assert_array_equal(
                    restored.unpack_indices(), original.unpack_indices()
                )


@pytest.fixture()
def bound_program(compressed_small_model):
    """A small calibrated program for artifact-format tests."""
    from repro.core import BitSerialInferenceEngine, EngineConfig
    from repro.nn import DataLoader
    from repro.nn.data.dataset import ArrayDataset

    rng = np.random.default_rng(0)
    loader = DataLoader(
        ArrayDataset(rng.normal(size=(16, 3, 32, 32)), rng.integers(0, 10, size=16)),
        batch_size=16,
    )
    engine = BitSerialInferenceEngine(
        compressed_small_model.model,
        compressed_small_model.pool,
        EngineConfig(lut_bitwidth=8, calibration_batches=1),
    )
    engine.calibrate(loader)
    return engine.compile()


class TestProgramArtifactFormat:
    def test_artifact_carries_current_schema(self, bound_program, tmp_path):
        path = tmp_path / "program.npz"
        save_program(bound_program, path)
        header = json.loads(str(np.load(path)["__program__"]))
        assert header["schema"] == PROGRAM_SCHEMA_VERSION
        assert load_program(path).kinds() == bound_program.kinds()

    def test_metadata_read_is_cheap_and_matches_program(self, bound_program, tmp_path):
        path = tmp_path / "program.npz"
        save_program(bound_program, path)
        meta = read_program_metadata(path)
        expected = bound_program.metadata()
        assert meta["op_counts"] == expected["op_counts"]
        assert meta["input_shape"] == expected["input_shape"]
        assert meta["output_shape"] == [10]
        assert meta["optimized"] is True
        assert meta["schema"] == PROGRAM_SCHEMA_VERSION
        assert meta["file_bytes"] == path.stat().st_size
        assert meta["lut"] == {"pool_size": 16, "group_size": 8, "bitwidth": 8}

    def test_wrong_schema_version_raises_with_path_and_versions(
        self, bound_program, tmp_path
    ):
        path = tmp_path / "old.npz"
        save_program(bound_program, path)
        data = dict(np.load(path).items())
        header = json.loads(str(data["__program__"]))
        header["schema"] = 99
        data["__program__"] = np.array(json.dumps(header))
        np.savez(path, **data)
        for reader in (load_program, read_program_metadata):
            with pytest.raises(ProgramFormatError) as err:
                reader(path)
            message = str(err.value)
            assert "old.npz" in message
            assert "99" in message and str(PROGRAM_SCHEMA_VERSION) in message

    def test_unversioned_legacy_artifact_still_loads(self, bound_program, tmp_path):
        """v2 is purely additive: v1 archives (no schema field, no embedded
        metadata) load, and the metadata reader derives the summary from
        the header."""
        path = tmp_path / "legacy.npz"
        save_program(bound_program, path)
        data = dict(np.load(path).items())
        header = json.loads(str(data["__program__"]))
        del header["schema"]  # the pre-versioning format
        del header["metadata"]
        data["__program__"] = np.array(json.dumps(header))
        np.savez(path, **data)
        assert load_program(path).kinds() == bound_program.kinds()
        meta = read_program_metadata(path)
        assert meta["schema"] == 1
        assert meta["op_counts"] == bound_program.metadata()["op_counts"]
        assert meta["output_shape"] == [10]

    def test_non_program_archive_raises_format_error_not_keyerror(self, tmp_path):
        path = tmp_path / "weights.npz"
        np.savez(path, weights=np.zeros((3, 3)))
        for reader in (load_program, read_program_metadata):
            with pytest.raises(ProgramFormatError, match="weights.npz"):
                reader(path)

    def test_engine_export_writes_a_servable_artifact(
        self, bound_program, compressed_small_model, tmp_path
    ):
        from repro.core import BitSerialInferenceEngine, EngineConfig, Executor
        from repro.nn import DataLoader
        from repro.nn.data.dataset import ArrayDataset

        rng = np.random.default_rng(1)
        loader = DataLoader(
            ArrayDataset(rng.normal(size=(16, 3, 32, 32)), rng.integers(0, 10, size=16)),
            batch_size=16,
        )
        engine = BitSerialInferenceEngine(
            compressed_small_model.model,
            compressed_small_model.pool,
            EngineConfig(lut_bitwidth=8, calibration_batches=1),
        )
        engine.calibrate(loader)
        path = tmp_path / "exported.npz"
        program = engine.export(path)
        batch = rng.normal(size=(4, 3, 32, 32))
        reloaded = Executor(load_program(path), backend="plan").run(batch)
        np.testing.assert_allclose(reloaded, engine.predict(batch), rtol=1e-9, atol=1e-12)
        assert program.bound


class TestCHeader:
    def test_header_contains_all_sections(self, package):
        header = emit_c_header(package)
        assert header.startswith("#ifndef")
        assert "#define WP_POOL_SIZE" in header
        assert "wp_lut" in header
        assert "wp_layer0" in header
        # One array per compressed layer's indices.
        assert header.count("_indices[") == len(package.compressed_layers)

    def test_header_is_ascii_and_balanced(self, package):
        header = emit_c_header(package)
        header.encode("ascii")
        assert header.count("{") == header.count("}")
        assert header.rstrip().endswith("#endif /* WEIGHT_POOL_NETWORK_H */")


class TestContentDigest:
    """The sha256 content digest embedded in artifact headers (and verified
    on every load) — the integrity layer cluster sync diffs against."""

    def test_saved_artifact_carries_digest(self, bound_program, tmp_path):
        path = tmp_path / "digested.npz"
        save_program(bound_program, path)
        meta = read_program_metadata(path)
        assert isinstance(meta["sha256"], str) and len(meta["sha256"]) == 64

    def test_verify_matches_recomputation(self, bound_program, tmp_path):
        from repro.core import verify_program_digest

        path = tmp_path / "digested.npz"
        save_program(bound_program, path)
        assert verify_program_digest(path) == read_program_metadata(path)["sha256"]

    def test_digest_is_deterministic(self, bound_program, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        save_program(bound_program, a)
        save_program(bound_program, b)
        assert read_program_metadata(a)["sha256"] == read_program_metadata(b)["sha256"]

    def test_corrupted_member_fails_load_naming_path(self, bound_program, tmp_path):
        path = tmp_path / "corrupt.npz"
        save_program(bound_program, path)
        # Rewrite one non-header member with flipped bytes, keeping the
        # (now stale) digest in the header.
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        victim = next(
            name for name in arrays
            if name != "__program__" and arrays[name].size
        )
        flipped = arrays[victim].copy()
        flipped_view = flipped.reshape(-1).view(np.uint8)
        flipped_view[0] ^= 0xFF
        arrays[victim] = flipped
        np.savez_compressed(path, **arrays)
        with pytest.raises(ProgramFormatError) as excinfo:
            load_program(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "sha256" in message or "content" in message

    def test_pre_digest_artifact_still_loads(self, bound_program, tmp_path):
        path = tmp_path / "legacy.npz"
        save_program(bound_program, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        header = json.loads(str(arrays["__program__"]))
        header.pop("sha256")
        arrays["__program__"] = np.array(json.dumps(header))
        np.savez_compressed(path, **arrays)
        assert read_program_metadata(path)["sha256"] is None
        load_program(path)  # digest check is skipped, not failed

    def test_content_digest_ignores_dict_order(self):
        from repro.core import content_digest

        rng = np.random.default_rng(0)
        arrays = {"b": rng.normal(size=(3, 4)), "a": rng.integers(0, 9, size=7)}
        reordered = {"a": arrays["a"], "b": arrays["b"]}
        assert content_digest(arrays) == content_digest(reordered)
        # ...but any byte, dtype, or shape change moves it.
        assert content_digest({"a": arrays["a"], "b": arrays["b"] + 1}) != content_digest(arrays)
        assert content_digest({"a": arrays["a"].astype(np.float32)}) != content_digest(
            {"a": arrays["a"]}
        )
