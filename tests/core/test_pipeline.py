"""Tests for the pass-manager compiler pipeline.

Covers the pipeline's contracts end to end:

* the registry (every documented pass registered at its stage/level) and the
  level/pass-name validation (unknown names fail loudly, listing choices);
* the IR verifier (valid programs pass; corrupted SSA / shapes / dtypes /
  epilogue claims fail naming the op);
* pass idempotency (running any registered graph pass twice changes
  nothing);
* optimization-level equivalence — ``O0``–``O3`` programs produce identical
  predictions on ResNet-14 and match the per-layer oracle;
* the ``O3`` autotuner (recorded decisions, bitwise-identical outputs);
* MobileNetV2 compiled end-to-end through the pipeline (depthwise/grouped
  conv lowering) against the per-layer oracle;
* artifact round-trips preserving the pipeline config + per-pass reports.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    OPT_LEVELS,
    PASS_REGISTRY,
    BitSerialInferenceEngine,
    CompressionPolicy,
    EngineConfig,
    Executor,
    PassManager,
    VerificationError,
    compile_network,
    compress_model,
    load_program,
    read_program_metadata,
    registered_passes,
    save_program,
    verify_program,
)
from repro.models import create_model
from repro.nn import DataLoader
from repro.nn.data.dataset import ArrayDataset


def _loader(seed=0, n=32):
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=(n, 3, 32, 32))
    targets = rng.integers(0, 10, size=n)
    return DataLoader(ArrayDataset(inputs, targets), batch_size=16)


def _calibrated_engine(model_name, seed=0, lut_bitwidth=8, **config_kwargs):
    model = create_model(model_name, num_classes=10, in_channels=3, rng=seed)
    result = compress_model(
        model, (3, 32, 32), pool_size=16,
        policy=CompressionPolicy(group_size=8), seed=seed,
    )
    engine = BitSerialInferenceEngine(
        result.model,
        result.pool,
        EngineConfig(lut_bitwidth=lut_bitwidth, calibration_batches=2, **config_kwargs),
    )
    engine.calibrate(_loader(seed))
    return engine


@pytest.fixture(scope="module")
def resnet_engine():
    return _calibrated_engine("resnet14_tiny")


@pytest.fixture(scope="module")
def mobilenet_engine():
    return _calibrated_engine("mobilenetv2_tiny")


def _fresh_program(engine, level, **kwargs):
    """A freshly-compiled program (not the engine's cached executor's), so
    tests that corrupt the IR never poison shared state."""
    return compile_network(
        engine.model, (3, 32, 32),
        lut=engine.lut,
        activation_params=engine.activation_params,
        level=level,
        **kwargs,
    )


class TestRegistry:
    def test_documented_passes_are_registered(self):
        expected = {
            "fold_batchnorm": ("graph", "O1"),
            "fuse_requantize": ("graph", "O1"),
            "dedupe_quantize": ("graph", "O1"),
            "fold_activation_into_quantize": ("graph", "O1"),
            "memory_plan": ("schedule", "O2"),
            "autotune": ("tune", "O3"),
        }
        for name, (stage, level) in expected.items():
            assert name in PASS_REGISTRY, f"pass '{name}' not registered"
            assert PASS_REGISTRY[name].stage == stage
            assert PASS_REGISTRY[name].level == level

    def test_levels_enable_monotonically(self):
        counts = [len(PassManager(level=level).enabled("graph")) for level in OPT_LEVELS]
        assert counts == sorted(counts)
        assert counts[0] == 0  # O0 = reference lowering, no graph passes
        assert counts[1] == len(registered_passes("graph"))

    def test_every_graph_pass_has_counters_declared(self):
        for pass_ in registered_passes("graph"):
            assert pass_.counters, f"pass '{pass_.name}' declares no report counters"
            assert pass_.rewrites


class TestValidation:
    """Unknown level/pass names fail loudly listing the valid choices."""

    def test_unknown_level_rejected_listing_choices(self, compressed_small_model):
        with pytest.raises(ValueError, match="O0, O1, O2, O3"):
            compile_network(compressed_small_model.model, (3, 32, 32), level="O7")

    def test_unknown_pass_rejected_listing_registered(self, compressed_small_model):
        with pytest.raises(ValueError, match="fold_batchnorm"):
            compile_network(
                compressed_small_model.model, (3, 32, 32), passes=["not_a_pass"]
            )

    def test_non_graph_pass_cannot_be_selected_explicitly(self, compressed_small_model):
        with pytest.raises(ValueError, match="graph-stage"):
            compile_network(
                compressed_small_model.model, (3, 32, 32), passes=["autotune"]
            )

    def test_engine_config_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="O0, O1, O2, O3"):
            EngineConfig(opt_level="O9")

    def test_engine_compile_rejects_unknown_level(self, resnet_engine):
        with pytest.raises(ValueError, match="valid levels"):
            resnet_engine.compile(level="turbo")

    def test_misconfiguration_fails_before_lowering(self):
        # Validation happens before any model work, so even a model that
        # cannot lower reports the configuration error first.
        from repro.nn import Module

        class Opaque(Module):
            def forward(self, x):
                return x

        with pytest.raises(ValueError, match="valid levels"):
            compile_network(Opaque(), (3, 32, 32), level="Ofast")


class TestVerifier:
    def test_compiled_programs_verify(self, resnet_engine):
        for level in OPT_LEVELS[:3]:  # O3 == O2 at the IR level
            program = resnet_engine.compile(level=level)
            counters = verify_program(program)
            assert counters["ops"] == len(program.ops)
            assert counters["ssa_checks"] == len(program.ops)
            assert counters["consumer_checks"] == (
                program.count("bitserial_conv") + program.count("bitserial_linear")
            )

    def test_structural_programs_verify(self, compressed_small_model):
        program = compile_network(compressed_small_model.model, (3, 32, 32), level="O0")
        counters = verify_program(program)
        assert counters["dtype_checks"] == 0  # unbound: no dtype propagation

    def test_ssa_violation_detected(self, resnet_engine):
        program = _fresh_program(resnet_engine, "O1")
        program.ops[3].output = program.ops[1].output
        with pytest.raises(VerificationError, match="written more than once"):
            verify_program(program)

    def test_use_before_def_detected(self, resnet_engine):
        program = _fresh_program(resnet_engine, "O1")
        program.ops[0].inputs = (program.num_buffers + 7,)
        with pytest.raises(VerificationError, match="before any op defines it"):
            verify_program(program)

    def test_shape_mismatch_detected_and_names_the_op(self, resnet_engine):
        program = _fresh_program(resnet_engine, "O1")
        bad = next(op for op in program.ops if op.kind == "bitserial_conv")
        bad.out_shape = (bad.out_shape[0] + 1,) + bad.out_shape[1:]
        with pytest.raises(VerificationError, match=bad.name):
            verify_program(program)

    def test_missing_epilogue_detected(self, resnet_engine):
        program = _fresh_program(resnet_engine, "O1")
        victim = next(op for op in program.ops if op.kind == "requantize")
        victim.kind = "activation"
        victim.attrs["fn"] = "relu"
        with pytest.raises(VerificationError, match="dequantize/requantize epilogue"):
            verify_program(program)

    def test_integer_pool_on_float_buffer_detected(self, resnet_engine):
        program = _fresh_program(resnet_engine, "O0")
        pool = next(op for op in program.ops if op.kind == "pool")
        pool.attrs["integer"] = True  # claims an integer input it doesn't have
        with pytest.raises(VerificationError, match="integer-marked pool"):
            verify_program(program)

    def test_debug_mode_verifies_between_passes(self, resnet_engine):
        program = resnet_engine.compile(level="O2")  # debug off: exit-only
        assert program.pipeline_report["verifier_runs"] == 1
        debug = _fresh_program(resnet_engine, "O2", debug=True)
        graph_passes = len(registered_passes("graph"))
        assert debug.pipeline_report["verifier_runs"] == graph_passes + 1
        assert debug.pipeline_report["debug"] is True


class TestPassIdempotency:
    """Running any registered graph pass twice changes nothing."""

    @pytest.fixture(scope="class")
    def programs(self, resnet_engine):
        return resnet_engine  # alias for readability

    @pytest.mark.parametrize("name", ["fold_batchnorm", "fuse_requantize",
                                      "dedupe_quantize", "fold_activation_into_quantize"])
    def test_second_run_is_a_no_op(self, resnet_engine, name):
        program = _fresh_program(resnet_engine, "O1")
        kinds = program.kinds()
        pass_ = PASS_REGISTRY[name]
        counters = pass_.fn(program)
        assert all(v == 0 for v in counters.values()), (
            f"pass '{name}' reported work on a second run: {counters}"
        )
        assert program.kinds() == kinds
        verify_program(program)

    def test_outputs_stable_after_reapplying_every_pass(self, resnet_engine):
        once = resnet_engine.compile(level="O1")
        x = np.random.default_rng(11).normal(size=(4, 3, 32, 32))
        expected = Executor(once).run(x)
        twice = _fresh_program(resnet_engine, "O1")
        for pass_ in registered_passes("graph"):
            pass_.fn(twice)  # re-apply the whole stage a second time
        assert twice.kinds() == once.kinds()
        np.testing.assert_array_equal(Executor(twice).run(x), expected)


class TestLevelEquivalence:
    """O0..O3 are prediction-identical on ResNet-14 and match the oracle."""

    @pytest.fixture(scope="class")
    def executors(self, resnet_engine):
        return {level: resnet_engine._executor(level=level) for level in OPT_LEVELS}

    def test_level_stages_engage_as_documented(self, executors):
        assert executors["O0"].exec_plan is None
        assert not executors["O0"].program.optimized
        assert executors["O1"].exec_plan is None
        assert executors["O1"].program.optimized
        assert executors["O2"].exec_plan is not None
        assert executors["O2"].autotune is None
        assert executors["O3"].exec_plan is not None
        assert executors["O3"].autotune is not None

    def test_predictions_identical_across_levels_and_oracle(self, resnet_engine, executors):
        x = np.random.default_rng(21).normal(size=(9, 3, 32, 32))
        config = resnet_engine.config
        resnet_engine.config = replace(config, use_graph=False)
        try:
            oracle = resnet_engine.predict(x)
        finally:
            resnet_engine.config = config
        oracle_pred = oracle.argmax(axis=1)
        outputs = {level: executor.run(x) for level, executor in executors.items()}
        # O0 on the plan backend is bit-exact with the per-layer engine.
        np.testing.assert_array_equal(outputs["O0"], oracle)
        # O1 (pooled) and O2 (planned) share the heuristic tile: bitwise
        # identical.  O3's tuned kernel variants are bitwise identical too,
        # compared at O3's (possibly retuned) tile — the tile itself only
        # reorders the float stem conv's BLAS reduction, which is the same
        # caveat the auto-tile heuristic always had.
        np.testing.assert_array_equal(outputs["O1"], outputs["O2"])
        same_tile = Executor(
            executors["O2"].program, memory_plan=False,
            tile=executors["O3"].exec_plan.tile,
        )
        np.testing.assert_array_equal(outputs["O3"], same_tile.run(x))
        for level, out in outputs.items():
            np.testing.assert_array_equal(out.argmax(axis=1), oracle_pred, err_msg=level)

    def test_evaluate_accuracy_identical_across_levels(self, executors):
        loader = _loader(seed=5, n=32)
        accuracies = {level: ex.evaluate(loader) for level, ex in executors.items()}
        assert len(set(accuracies.values())) == 1, accuracies


class TestAutotune:
    def test_decisions_recorded_per_layer(self, resnet_engine):
        executor = resnet_engine._executor(level="O3")
        decisions = executor.plan_info["autotune"]
        bitserial = executor.program.count("bitserial_conv") + executor.program.count(
            "bitserial_linear"
        )
        assert decisions["layers_tuned"] == bitserial == len(decisions["layers"])
        for pick in decisions["layers"].values():
            assert pick["tap_gather"] in ("fused", "per_tap")
            assert pick["encoder"] in ("packbits", "bitmul")
            assert pick["candidate_ms"]
        assert decisions["tile"]["chosen"] == executor.exec_plan.tile
        assert decisions["n_shards"]["chosen"] == executor.n_shards
        assert decisions["trials"] > 0

    def test_report_travels_with_the_program(self, resnet_engine):
        program = resnet_engine.compile(level="O3")
        names = [p["name"] for p in program.pipeline_report["passes"]]
        assert "autotune" in names and "memory_plan" in names
        meta = program.metadata()
        assert meta["opt_level"] == "O3"
        assert meta["execution_plan"]["autotune"]["layers_tuned"] > 0

    def test_explicit_tile_and_shards_are_respected(self, resnet_engine):
        program = resnet_engine.compile(level="O3")
        executor = Executor(program, tile=4, n_shards=2)
        assert executor.exec_plan.tile == 4
        assert executor.n_shards == 2
        assert executor.autotune["n_shards"]["basis"] == "fixed"


class TestMobileNetV2Pipeline:
    """Tiny MobileNetV2 end to end: depthwise/grouped conv through the
    compiled pipeline, against the per-layer oracle."""

    def test_program_contains_grouped_depthwise_convs(self, mobilenet_engine):
        program = mobilenet_engine.compile(level="O2")
        depthwise = [
            op for op in program.ops
            if op.kind == "conv" and op.attrs.get("groups", 1) > 1
        ]
        assert depthwise, "MobileNetV2 must lower its depthwise convs as grouped conv ops"
        for op in depthwise:
            # Depthwise: one group per channel, weight shape (C, 1, 3, 3).
            assert op.attrs["groups"] == op.attrs["in_channels"]
            assert op.attrs["weight"].shape[1] == 1
        assert program.count("bitserial_conv") > 0  # pointwise convs compressed

    def test_plan_backend_matches_per_layer_oracle(self, mobilenet_engine):
        x = np.random.default_rng(31).normal(size=(5, 3, 32, 32))
        config = mobilenet_engine.config
        mobilenet_engine.config = replace(config, use_graph=False)
        try:
            oracle = mobilenet_engine.predict(x)
        finally:
            mobilenet_engine.config = config
        # O0 is the bit-exact reference lowering.
        np.testing.assert_array_equal(
            mobilenet_engine._executor(level="O0").run(x), oracle
        )
        # Optimized levels track the oracle within the documented float
        # tolerance, with identical predictions.
        for level in ("O2", "O3"):
            out = mobilenet_engine._executor(level=level).run(x)
            scale = max(float(np.abs(oracle).max()), 1e-12)
            assert np.abs(out - oracle).max() < 1e-9 * scale
            np.testing.assert_array_equal(out.argmax(axis=1), oracle.argmax(axis=1))

    def test_evaluate_matches_oracle_accuracy(self, mobilenet_engine):
        loader = _loader(seed=9, n=32)
        graph_acc = mobilenet_engine.evaluate(loader)
        config = mobilenet_engine.config
        mobilenet_engine.config = replace(config, use_graph=False)
        try:
            oracle_acc = mobilenet_engine.evaluate(loader)
        finally:
            mobilenet_engine.config = config
        assert graph_acc == oracle_acc


class TestArtifactRoundTrip:
    """Pipeline config + per-pass reports survive save/load header-only."""

    def test_round_trip_preserves_pipeline_report(self, resnet_engine, tmp_path):
        program = resnet_engine.compile(level="O3")
        path = tmp_path / "program.npz"
        save_program(program, path)
        loaded = load_program(path)
        assert loaded.opt_level == "O3"
        assert loaded.pipeline_report == program.pipeline_report
        # A fresh executor replays the artifact's recorded kernel winners
        # deterministically — no re-benchmarking on load.  Tile and shard
        # choices are host properties: not persisted, re-derived per bind.
        executor = Executor(loaded)
        assert executor.exec_plan is not None
        assert executor.autotune is not None
        assert executor.autotune.get("reused") is True
        assert executor.autotune["trials"] == 0
        recorded = next(
            p for p in program.pipeline_report["passes"] if p["name"] == "autotune"
        )["decisions"]
        assert set(recorded) == {"layers"}  # nothing host-specific persisted
        for key, pick in executor.autotune["layers"].items():
            assert pick["tap_gather"] == recorded["layers"][key]["tap_gather"]
            assert pick["encoder"] == recorded["layers"][key]["encoder"]

    def test_metadata_header_only_shows_pipeline(self, resnet_engine, tmp_path):
        program = resnet_engine.compile(level="O2")
        path = tmp_path / "program.npz"
        save_program(program, path)
        meta = read_program_metadata(path)
        assert meta["opt_level"] == "O2"
        names = [p["name"] for p in meta["pipeline"]["passes"]]
        assert "fold_batchnorm" in names and "memory_plan" in names
        assert meta["pipeline"]["verifier_runs"] >= 1

    def test_legacy_artifacts_without_pipeline_still_load(self, resnet_engine, tmp_path):
        program = resnet_engine.compile(level="O2")
        program.opt_level = None
        program.pipeline_report = None  # simulate a pre-pass-manager artifact
        path = tmp_path / "legacy.npz"
        save_program(program, path)
        loaded = load_program(path)
        assert loaded.opt_level is None
        assert loaded.effective_opt_level == "O2"  # inferred from `optimized`
        assert Executor(loaded).exec_plan is not None
