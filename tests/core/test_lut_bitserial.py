"""Tests for LUT generation and the bit-serial execution kernels.

The central invariant (DESIGN invariant 1): with a full-precision LUT, the
bit-serial LUT convolution equals direct convolution with the reconstructed
pool weights exactly, for any unsigned integer input.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitserial import (
    bit_decompose,
    bit_vector_values,
    bitserial_conv2d,
    bitserial_dot,
    bitserial_linear,
)
from repro.core.grouping import reconstruct_from_z_indices, reconstruct_linear_from_z_indices
from repro.core.lut import LookupTable, build_lut, enumerate_bit_vectors
from repro.core.weight_pool import WeightPool
from repro.nn import functional as F


@pytest.fixture(scope="module")
def pool():
    return WeightPool(np.random.default_rng(7).normal(size=(16, 8)))


@pytest.fixture(scope="module")
def lut(pool):
    return build_lut(pool)


class TestEnumerateBitVectors:
    def test_all_combinations_present(self):
        vectors = enumerate_bit_vectors(3)
        assert vectors.shape == (8, 3)
        assert len({tuple(v) for v in vectors.astype(int)}) == 8

    def test_bit_order_lsb_first(self):
        vectors = enumerate_bit_vectors(3)
        np.testing.assert_array_equal(vectors[1], [1, 0, 0])  # value 1 -> element 0
        np.testing.assert_array_equal(vectors[4], [0, 0, 1])  # value 4 -> element 2

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            enumerate_bit_vectors(0)
        with pytest.raises(ValueError):
            enumerate_bit_vectors(20)


class TestLookupTable:
    def test_size_matches_eq3(self, lut, pool):
        assert lut.num_entries == (1 << 8) * 16
        assert lut.storage_bits() == lut.num_entries * 32  # float LUT counted as 32-bit
        assert lut.quantize(8).storage_bits() == lut.num_entries * 8

    def test_entries_are_dot_products(self, lut, pool):
        value = 0b10110001
        bits = enumerate_bit_vectors(8)[value]
        for pool_index in (0, 5, 15):
            expected = float(bits @ pool.vectors[pool_index])
            assert lut.lookup(value, pool_index) == pytest.approx(expected)

    def test_all_ones_entry_is_pool_sum(self, lut, pool):
        np.testing.assert_allclose(lut.pool_vector_sums(), pool.vectors.sum(axis=1))

    def test_zero_entry_is_zero(self, lut):
        np.testing.assert_allclose(lut.lookup(0, np.arange(16)), 0.0)

    def test_lookup_validation(self, lut):
        with pytest.raises(ValueError):
            lut.lookup(1 << 8, 0)
        with pytest.raises(ValueError):
            lut.lookup(0, 16)

    def test_quantization_error_bounded(self, lut):
        quantized = lut.quantize(8)
        assert quantized.bitwidth == 8
        assert np.abs(quantized.values - lut.values).max() <= quantized.scale / 2 + 1e-12

    def test_lower_bitwidth_has_larger_error(self, lut):
        err8 = np.abs(lut.quantize(8).values - lut.values).max()
        err4 = np.abs(lut.quantize(4).values - lut.values).max()
        assert err4 >= err8

    def test_double_quantization_rejected(self, lut):
        with pytest.raises(ValueError):
            lut.quantize(8).quantize(4)

    def test_invalid_order_rejected(self, pool):
        with pytest.raises(ValueError):
            LookupTable(values=np.zeros((256, 16)), pool_size=16, group_size=8, order="diagonal")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LookupTable(values=np.zeros((10, 16)), pool_size=16, group_size=8)


class TestBitDecomposition:
    def test_bit_decompose_known_value(self):
        bits = bit_decompose(np.array([6]), 4)
        np.testing.assert_array_equal(bits[0], [0, 1, 1, 0])  # LSB first

    def test_bit_decompose_range_checks(self):
        with pytest.raises(ValueError):
            bit_decompose(np.array([-1]), 4)
        with pytest.raises(ValueError):
            bit_decompose(np.array([16]), 4)

    def test_bit_vector_values_matches_manual(self):
        group = np.array([[3, 0, 1, 2]])  # g = 4
        addresses = bit_vector_values(group, 2)
        # bit 0: elements with LSB set -> 3 (bit0) and 1 (bit2) -> value 0b0101 = 5
        # bit 1: elements with bit1 set -> 3 (bit0) and 2 (bit3) -> value 0b1001 = 9
        np.testing.assert_array_equal(addresses[0], [5, 9])

    def test_bit_vector_values_reconstructs_activations(self):
        """Summing 2^j * bit_j recovers each activation (Eq. 2)."""
        rng = np.random.default_rng(0)
        groups = rng.integers(0, 256, size=(5, 8))
        addresses = bit_vector_values(groups, 8)
        recovered = np.zeros_like(groups)
        for j in range(8):
            bits = enumerate_bit_vectors(8)[addresses[:, j]]
            recovered += (bits * (1 << j)).astype(np.int64)
        np.testing.assert_array_equal(recovered, groups)


class TestBitserialDot:
    def test_matches_direct_dot(self, pool, lut):
        rng = np.random.default_rng(1)
        q = rng.integers(0, 256, size=8)
        for idx in (0, 7, 15):
            expected = float(q @ pool.vectors[idx])
            assert bitserial_dot(q, idx, lut, 8) == pytest.approx(expected)

    def test_truncation_drops_lsbs(self, pool, lut):
        q = np.full(8, 0b11111111)
        full = bitserial_dot(q, 3, lut, 8)
        truncated = bitserial_dot(q, 3, lut, 8, active_bits=4)
        expected_truncated = float((q - 0b00001111) @ pool.vectors[3])
        assert truncated == pytest.approx(expected_truncated)
        # The dropped contribution is exactly the low 4 bits times the vector sum.
        dropped = float(np.full(8, 0b00001111) @ pool.vectors[3])
        assert full - truncated == pytest.approx(dropped)

    def test_validation(self, lut):
        with pytest.raises(ValueError):
            bitserial_dot(np.zeros(4, dtype=int), 0, lut, 8)
        with pytest.raises(ValueError):
            bitserial_dot(np.zeros(8, dtype=int), 0, lut, 8, active_bits=9)


class TestBitserialConv2d:
    @pytest.mark.parametrize("filters", [4, 40])  # below and above the pool size
    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 0)])
    def test_exactness_vs_reconstructed_conv(self, pool, lut, filters, stride, padding):
        rng = np.random.default_rng(filters + stride)
        q_x = rng.integers(0, 256, size=(2, 16, 6, 6))
        indices = rng.integers(0, pool.size, size=(filters, 2, 3, 3))
        out = bitserial_conv2d(q_x, indices, lut, stride, padding, act_bitwidth=8)
        weight = reconstruct_from_z_indices(indices, pool.vectors)
        expected, _ = F.conv2d_forward(q_x.astype(float), weight, None, stride, padding, 1)
        np.testing.assert_allclose(out, expected, rtol=1e-12, atol=1e-9)

    def test_pad_value_contributes_like_constant(self, pool, lut):
        rng = np.random.default_rng(3)
        q_x = rng.integers(0, 256, size=(1, 8, 4, 4))
        indices = rng.integers(0, pool.size, size=(3, 1, 3, 3))
        out = bitserial_conv2d(q_x, indices, lut, 1, 1, act_bitwidth=8, pad_value=9)
        padded = np.pad(q_x, ((0, 0), (0, 0), (1, 1), (1, 1)), constant_values=9)
        weight = reconstruct_from_z_indices(indices, pool.vectors)
        expected, _ = F.conv2d_forward(padded.astype(float), weight, None, 1, 0, 1)
        np.testing.assert_allclose(out, expected, atol=1e-9)

    def test_active_bits_equals_lsb_truncation(self, pool, lut):
        """DESIGN invariant 5: early termination == truncating the LSBs."""
        rng = np.random.default_rng(4)
        q_x = rng.integers(0, 256, size=(1, 8, 5, 5))
        indices = rng.integers(0, pool.size, size=(4, 1, 3, 3))
        for active in (1, 3, 6):
            out = bitserial_conv2d(q_x, indices, lut, 1, 1, act_bitwidth=8, active_bits=active)
            mask = ~((1 << (8 - active)) - 1)
            truncated = q_x & mask
            out_ref = bitserial_conv2d(truncated, indices, lut, 1, 1, act_bitwidth=8)
            np.testing.assert_allclose(out, out_ref, atol=1e-9)

    def test_quantized_lut_error_is_bounded(self, pool, lut):
        rng = np.random.default_rng(5)
        q_x = rng.integers(0, 256, size=(1, 8, 5, 5))
        indices = rng.integers(0, pool.size, size=(4, 1, 3, 3))
        exact = bitserial_conv2d(q_x, indices, lut, 1, 1, act_bitwidth=8)
        quantized = bitserial_conv2d(q_x, indices, lut.quantize(8), 1, 1, act_bitwidth=8)
        # Each of the taps*bits lookups errs by at most scale/2 * 2^bit.
        taps = indices.shape[1] * 9
        bound = lut.quantize(8).scale / 2 * taps * (2**8 - 1) + 1e-9
        assert np.abs(exact - quantized).max() <= bound

    def test_shape_and_range_validation(self, lut):
        with pytest.raises(ValueError):
            bitserial_conv2d(np.zeros((1, 8, 4, 4), dtype=int), np.zeros((2, 1, 3, 3), dtype=int), lut, act_bitwidth=8, active_bits=9)
        with pytest.raises(ValueError):
            bitserial_conv2d(np.zeros((1, 12, 4, 4), dtype=int), np.zeros((2, 1, 3, 3), dtype=int), lut)
        with pytest.raises(ValueError):
            bitserial_conv2d(np.zeros((8, 4, 4), dtype=int), np.zeros((2, 1, 3, 3), dtype=int), lut)

    @given(
        act_bitwidth=st.integers(1, 8),
        filters=st.integers(1, 6),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_exactness_any_bitwidth(self, pool, lut, act_bitwidth, filters, seed):
        rng = np.random.default_rng(seed)
        q_x = rng.integers(0, 1 << act_bitwidth, size=(1, 8, 4, 4))
        indices = rng.integers(0, pool.size, size=(filters, 1, 3, 3))
        out = bitserial_conv2d(q_x, indices, lut, 1, 1, act_bitwidth=act_bitwidth)
        weight = reconstruct_from_z_indices(indices, pool.vectors)
        expected, _ = F.conv2d_forward(q_x.astype(float), weight, None, 1, 1, 1)
        np.testing.assert_allclose(out, expected, atol=1e-9)


class TestBitserialLinear:
    def test_exactness(self, pool, lut):
        rng = np.random.default_rng(6)
        q_x = rng.integers(0, 256, size=(3, 24))
        indices = rng.integers(0, pool.size, size=(5, 3))
        out = bitserial_linear(q_x, indices, lut, act_bitwidth=8)
        weight = reconstruct_linear_from_z_indices(indices, pool.vectors)
        np.testing.assert_allclose(out, q_x @ weight.T, atol=1e-9)

    def test_validation(self, lut):
        with pytest.raises(ValueError):
            bitserial_linear(np.zeros((2, 20), dtype=int), np.zeros((3, 3), dtype=int), lut)
        with pytest.raises(ValueError):
            bitserial_linear(np.zeros((2,), dtype=int), np.zeros((3, 3), dtype=int), lut)
