"""Tests for weight-pool layers, model compression and fine-tuning."""

import numpy as np
import pytest

from repro.core import CompressionPolicy, compress_model, apply_xy_pool_to_model
from repro.core.finetune import (
    finetune_compressed_model,
    freeze_assignments,
    unfreeze_assignments,
    weight_pool_layers,
)
from repro.core.layers import WeightPoolConv2d, WeightPoolLinear
from repro.core.weight_pool import WeightPool
from repro.models import create_model
from repro.nn import Conv2d, DataLoader, Linear
from repro.nn.data.dataset import ArrayDataset
from repro.nn import functional as F


@pytest.fixture()
def pool():
    return WeightPool(np.random.default_rng(0).normal(size=(16, 8)))


class TestWeightPoolConv2d:
    def test_from_conv_preserves_geometry_and_latent_weights(self, pool):
        conv = Conv2d(16, 12, 3, stride=2, padding=1, rng=0)
        wp = WeightPoolConv2d.from_conv(conv, pool)
        assert wp.stride == 2 and wp.padding == 1
        np.testing.assert_allclose(wp.weight.data, conv.weight.data)
        assert wp.indices.shape == (12, 2, 3, 3)

    def test_effective_weight_rows_come_from_pool(self, pool):
        conv = Conv2d(8, 4, 3, rng=1)
        wp = WeightPoolConv2d.from_conv(conv, pool)
        weight = wp.effective_weight()
        from repro.core.grouping import extract_z_vectors

        for vector in extract_z_vectors(weight, 8):
            assert any(np.allclose(vector, pv) for pv in pool.vectors)

    def test_forward_uses_effective_weights(self, pool):
        conv = Conv2d(8, 4, 3, padding=1, rng=2)
        wp = WeightPoolConv2d.from_conv(conv, pool)
        wp.eval()
        x = np.random.default_rng(2).normal(size=(2, 8, 5, 5))
        expected, _ = F.conv2d_forward(x, wp.effective_weight(), wp.bias.data, 1, 1, 1)
        np.testing.assert_allclose(wp(x), expected)

    def test_training_forward_reassigns_after_latent_update(self, pool):
        conv = Conv2d(8, 2, 1, bias=False, rng=3)
        wp = WeightPoolConv2d.from_conv(conv, pool)
        wp.train()
        before = wp.indices.copy()
        # Move the latent weights onto a specific pool vector: the next forward
        # must reassign the indices accordingly.
        wp.weight.data[...] = np.tile(pool.vectors[5].reshape(1, 8, 1, 1), (2, 1, 1, 1))
        wp(np.zeros((1, 8, 4, 4)))
        assert np.all(wp.indices == 5)
        del before

    def test_no_reassign_when_frozen(self, pool):
        conv = Conv2d(8, 2, 1, bias=False, rng=4)
        wp = WeightPoolConv2d.from_conv(conv, pool)
        wp.train()
        wp.reassign_on_forward = False
        original = wp.indices.copy()
        wp.weight.data[...] = np.tile(pool.vectors[3].reshape(1, 8, 1, 1), (2, 1, 1, 1))
        wp(np.zeros((1, 8, 4, 4)))
        np.testing.assert_array_equal(wp.indices, original)

    def test_backward_accumulates_into_latent_weights(self, pool):
        conv = Conv2d(8, 3, 3, padding=1, rng=5)
        wp = WeightPoolConv2d.from_conv(conv, pool)
        wp.train()
        x = np.random.default_rng(5).normal(size=(2, 8, 5, 5))
        out = wp(x)
        wp.backward(np.ones_like(out))
        assert np.abs(wp.weight.grad).sum() > 0
        assert np.abs(wp.bias.grad).sum() > 0

    def test_grouped_conv_rejected(self, pool):
        with pytest.raises(ValueError):
            WeightPoolConv2d(8, 8, 3, pool, groups=8)

    def test_indivisible_channels_need_padding_flag(self, pool):
        with pytest.raises(ValueError):
            WeightPoolConv2d(12, 4, 3, pool)
        layer = WeightPoolConv2d(12, 4, 3, pool, pad_channels=True)
        assert layer.indices.shape == (4, 2, 3, 3)
        assert layer.effective_weight().shape == (4, 12, 3, 3)

    def test_runtime_delegation(self, pool):
        conv = Conv2d(8, 2, 3, padding=1, rng=6)
        wp = WeightPoolConv2d.from_conv(conv, pool)

        class _FakeRuntime:
            def run(self, layer, x):
                return np.full((x.shape[0], layer.out_channels, 1, 1), 42.0)

        wp.runtime = _FakeRuntime()
        out = wp(np.zeros((3, 8, 5, 5)))
        assert np.all(out == 42.0)
        with pytest.raises(RuntimeError):
            wp.backward(out)


class TestWeightPoolLinear:
    def test_from_linear_roundtrip(self, pool):
        linear = Linear(16, 5, rng=0)
        wp = WeightPoolLinear.from_linear(linear, pool)
        assert wp.indices.shape == (5, 2)
        x = np.random.default_rng(0).normal(size=(3, 16))
        wp.eval()
        np.testing.assert_allclose(wp(x), x @ wp.effective_weight().T + wp.bias.data)

    def test_indivisible_features_rejected(self, pool):
        with pytest.raises(ValueError):
            WeightPoolLinear(12, 4, pool)

    def test_backward_accumulates(self, pool):
        wp = WeightPoolLinear(16, 3, pool, rng=1)
        wp.train()
        x = np.random.default_rng(1).normal(size=(4, 16))
        out = wp(x)
        wp.backward(np.ones_like(out))
        assert np.abs(wp.weight.grad).sum() > 0


class TestCompressModel:
    def test_compress_replaces_eligible_layers(self, compressed_small_model):
        result = compressed_small_model
        assert result.num_compressed_layers > 0
        assert "stem.conv" in result.skipped_layers
        for name, module in result.weight_pool_modules().items():
            assert isinstance(module, (WeightPoolConv2d, WeightPoolLinear)), name

    def test_original_model_untouched_by_default(self, small_model):
        before = {name: p.data.copy() for name, p in small_model.named_parameters()}
        compress_model(small_model, (3, 32, 32), pool_size=8, seed=0)
        for name, param in small_model.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])
        assert not any(
            isinstance(m, WeightPoolConv2d) for m in small_model.modules()
        )

    def test_inplace_compression(self, small_model):
        compress_model(small_model, (3, 32, 32), pool_size=8, seed=0, inplace=True)
        assert any(isinstance(m, WeightPoolConv2d) for m in small_model.modules())

    def test_compression_is_idempotent(self, compressed_small_model):
        result = compressed_small_model
        again = compress_model(
            result.model, (3, 32, 32), pool=result.pool, policy=result.policy, seed=0
        )
        assert set(again.compressed_layers) == set(result.compressed_layers)

    def test_forward_still_works_after_compression(self, compressed_small_model):
        model = compressed_small_model.model
        model.eval()
        out = model(np.zeros((2, 3, 32, 32)))
        assert out.shape == (2, 10)
        assert np.all(np.isfinite(out))

    def test_pool_group_size_mismatch_rejected(self, small_model, pool):
        with pytest.raises(ValueError):
            compress_model(
                small_model,
                (3, 32, 32),
                pool=pool,
                policy=CompressionPolicy(group_size=4),
            )

    def test_compress_fc_option(self):
        model = create_model("tinyconv", num_classes=10, in_channels=3, rng=0)
        result = compress_model(
            model,
            (3, 32, 32),
            pool_size=16,
            policy=CompressionPolicy(compress_fc=True),
            seed=0,
        )
        assert any(
            isinstance(m, WeightPoolLinear) for m in result.model.modules()
        )


class TestXYCompression:
    def test_projection_changes_weights_but_keeps_shapes(self, small_model):
        result = apply_xy_pool_to_model(small_model, (3, 32, 32), pool_size=8, seed=0)
        assert result.compressed_layers
        out = result.model(np.zeros((1, 3, 32, 32)))
        assert out.shape == (1, 10)

    def test_coefficients_reduce_projection_error(self, small_model):
        from repro.core.tracing import trace_model

        plain = apply_xy_pool_to_model(small_model, (3, 32, 32), pool_size=8, seed=0)
        scaled = apply_xy_pool_to_model(
            small_model, (3, 32, 32), pool_size=8, with_coefficients=True, seed=0
        )
        original = {
            t.name: t.module.weight.data.copy()
            for t in trace_model(small_model, (3, 32, 32))
        }
        def total_error(result):
            error = 0.0
            for t in trace_model(result.model, (3, 32, 32)):
                if t.name in original and t.name in result.compressed_layers:
                    error += float(((t.module.weight.data - original[t.name]) ** 2).sum())
            return error

        assert total_error(scaled) <= total_error(plain) + 1e-9

    def test_no_eligible_layer_raises(self):
        model = create_model("tinyconv", num_classes=10, in_channels=3, rng=0)
        with pytest.raises(ValueError):
            apply_xy_pool_to_model(model, (3, 32, 32), kernel_size=7)


class TestFinetune:
    def _loader(self, n=32):
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(n, 3, 32, 32))
        targets = rng.integers(0, 10, size=n)
        return DataLoader(ArrayDataset(inputs, targets), batch_size=16, shuffle=True, rng=0)

    def test_finetune_runs_and_freezes(self, compressed_small_model):
        trainer = finetune_compressed_model(
            compressed_small_model.model, self._loader(), epochs=1, lr=0.01
        )
        assert len(trainer.history) == 1
        for layer in weight_pool_layers(compressed_small_model.model):
            assert not layer.reassign_on_forward
        assert not compressed_small_model.model.training

    def test_finetune_requires_compressed_model(self, small_model):
        with pytest.raises(ValueError):
            finetune_compressed_model(small_model, self._loader(), epochs=1)

    def test_freeze_unfreeze_helpers(self, compressed_small_model):
        freeze_assignments(compressed_small_model.model)
        assert all(
            not layer.reassign_on_forward
            for layer in weight_pool_layers(compressed_small_model.model)
        )
        unfreeze_assignments(compressed_small_model.model)
        assert all(
            layer.reassign_on_forward
            for layer in weight_pool_layers(compressed_small_model.model)
        )
