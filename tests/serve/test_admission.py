"""Unit tests for admission control, circuit breaking, and retry dispatch.

No model needed: fake queues, clocks, timers, and submit functions drive
every state machine deterministically.
"""

import random
import threading
from concurrent.futures import Future

import numpy as np
import pytest

from repro.serve import BatchPolicy, InferenceServer
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpen,
    ConcurrencyBudget,
    ResilientDispatcher,
    RetryPolicy,
)
from repro.serve.stats import ModelStats
from repro.serve.workers import NoLiveWorkers, WorkerCrashed


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# Admission controller
# ---------------------------------------------------------------------------
class TestAdmissionController:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_concurrency=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(priority_thresholds={"bulk": 0.0})
        with pytest.raises(ValueError):
            AdmissionPolicy(priority_thresholds={"bulk": 1.5})

    def test_default_policy_admits_everything(self):
        ctrl = AdmissionController(None, queue_depth_fn=lambda: 10_000)
        for _ in range(100):
            ctrl.admit()
        assert ctrl.inflight == 100

    def test_queue_depth_bound_sheds(self):
        depth = [0]
        stats = ModelStats()
        ctrl = AdmissionController(
            AdmissionPolicy(max_queue_depth=4), lambda: depth[0], stats=stats
        )
        ctrl.admit()  # depth below bound: admitted
        depth[0] = 4
        with pytest.raises(AdmissionRejected) as info:
            ctrl.admit()
        assert info.value.reason == "queue_depth"
        assert info.value.http_status == 503
        snap = stats.snapshot()["resilience"]
        assert snap["shed"] == {"queue_depth": 1}
        assert snap["admitted"] == 1

    def test_concurrency_budget_sheds_and_release_restores(self):
        ctrl = AdmissionController(
            AdmissionPolicy(max_concurrency=2), queue_depth_fn=lambda: 0
        )
        ctrl.admit()
        ctrl.admit()
        with pytest.raises(AdmissionRejected) as info:
            ctrl.admit()
        assert info.value.reason == "concurrency"
        ctrl.release()
        ctrl.admit()  # budget freed
        assert ctrl.inflight == 2

    def test_priority_class_sheds_early_with_429(self):
        depth = [5]
        ctrl = AdmissionController(
            AdmissionPolicy(max_queue_depth=10, priority_thresholds={"bulk": 0.5}),
            lambda: depth[0],
        )
        ctrl.admit(priority="interactive")  # full bound: still admitted
        with pytest.raises(AdmissionRejected) as info:
            ctrl.admit(priority="bulk")  # its bound is 5, depth is 5
        assert info.value.reason == "priority"
        assert info.value.http_status == 429
        depth[0] = 4
        ctrl.admit(priority="bulk")  # below its bound again

    def test_default_priority_class_applies_to_unlabelled_requests(self):
        ctrl = AdmissionController(
            AdmissionPolicy(
                max_queue_depth=10,
                priority_thresholds={"background": 0.2},
                default_priority="background",
            ),
            queue_depth_fn=lambda: 3,
        )
        with pytest.raises(AdmissionRejected) as info:
            ctrl.admit()  # unlabelled → "background", bound 2 < depth 3
        assert info.value.reason == "priority"

    def test_open_breaker_sheds_at_admission(self):
        clock = FakeClock()
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1), clock=clock)
        stats = ModelStats()
        ctrl = AdmissionController(
            AdmissionPolicy(), lambda: 0, stats=stats, breaker=breaker
        )
        ctrl.admit()  # closed breaker: flows
        breaker.record_failure("worker 0 died")
        with pytest.raises(CircuitOpen) as info:
            ctrl.admit()
        assert info.value.reason == "circuit_open"
        assert info.value.http_status == 503
        assert info.value.retry_after_s == pytest.approx(5.0)  # time_to_probe
        assert stats.snapshot()["resilience"]["shed"] == {"circuit_open": 1}

    def test_release_never_goes_negative(self):
        ctrl = AdmissionController(AdmissionPolicy(), queue_depth_fn=lambda: 0)
        ctrl.release()
        ctrl.release(count=5)
        assert ctrl.inflight == 0


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3), clock=FakeClock())
        for _ in range(2):
            breaker.record_failure("crash")
        breaker.record_success()  # resets the consecutive count
        for _ in range(2):
            breaker.record_failure("crash")
        assert breaker.state == "closed"
        breaker.record_failure("crash")
        assert breaker.state == "open"
        assert not breaker.allow_request()
        assert not breaker.allow_dispatch()

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        transitions = []
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, reset_timeout_s=5.0),
            clock=clock,
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        breaker.record_failure("crash")
        assert breaker.state == "open"
        assert breaker.time_to_probe() == pytest.approx(5.0)
        clock.advance(5.0)
        assert breaker.state == "half_open"
        assert breaker.allow_request()  # admission lets the probe through
        assert breaker.allow_dispatch()  # the probe slot
        assert not breaker.allow_dispatch()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert transitions == [
            ("closed", "open"), ("open", "half_open"), ("half_open", "closed"),
        ]

    def test_half_open_probe_failure_reopens_and_restarts_the_clock(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, reset_timeout_s=5.0), clock=clock
        )
        breaker.record_failure("crash")
        clock.advance(5.0)
        assert breaker.allow_dispatch()  # probe granted
        breaker.record_failure("probe crashed too")
        assert breaker.state == "open"
        clock.advance(4.9)
        assert breaker.state == "open"  # the reset clock restarted
        clock.advance(0.2)
        assert breaker.state == "half_open"

    def test_snapshot_reports_state_and_last_failure(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2), clock=FakeClock())
        breaker.record_failure("WorkerCrashed: worker 1 died")
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["consecutive_failures"] == 1
        assert "worker 1" in snap["last_failure"]


# ---------------------------------------------------------------------------
# Retry policy + resilient dispatcher
# ---------------------------------------------------------------------------
class FlakySubmit:
    """submit() stub failing the first ``failures`` attempts with ``error``."""

    def __init__(self, failures: int, error_type=WorkerCrashed):
        self.failures = failures
        self.error_type = error_type
        self.calls = 0

    def __call__(self, batch) -> Future:
        self.calls += 1
        future: Future = Future()
        if self.calls <= self.failures:
            future.set_exception(self.error_type(f"attempt {self.calls} failed"))
        else:
            future.set_result(np.asarray(batch) * 2.0)
        return future


def immediate_timer(delay, fn):
    fn()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)

    def test_budget_is_the_sum_of_capped_backoffs(self):
        policy = RetryPolicy(
            max_retries=3, backoff_base_s=1.0, backoff_multiplier=2.0,
            backoff_cap_s=3.0, jitter=0.0,
        )
        assert policy.budget_s() == pytest.approx(1.0 + 2.0 + 3.0)


class TestResilientDispatcher:
    def test_success_passes_straight_through(self):
        submit = FlakySubmit(failures=0)
        dispatch = ResilientDispatcher(submit, RetryPolicy(max_retries=2))
        out = dispatch(np.ones(3)).result(timeout=5.0)
        np.testing.assert_array_equal(out, np.full(3, 2.0))
        assert submit.calls == 1

    def test_retries_worker_crash_until_it_succeeds(self):
        submit = FlakySubmit(failures=2)
        stats = ModelStats()
        delays = []

        def timer(delay, fn):
            delays.append(delay)
            fn()

        dispatch = ResilientDispatcher(
            submit, RetryPolicy(max_retries=2, seed=0), stats=stats, timer=timer
        )
        out = dispatch(np.ones(2)).result(timeout=5.0)
        np.testing.assert_array_equal(out, np.full(2, 2.0))
        assert submit.calls == 3
        assert stats.snapshot()["resilience"]["retries"] == 2
        # Exponential backoff with jitter in [1 - jitter, 1] of the nominal.
        assert 0.025 <= delays[0] <= 0.05
        assert 0.05 <= delays[1] <= 0.10

    def test_exhausted_retries_surface_the_last_error(self):
        submit = FlakySubmit(failures=10, error_type=NoLiveWorkers)
        dispatch = ResilientDispatcher(
            submit, RetryPolicy(max_retries=2), timer=immediate_timer
        )
        with pytest.raises(NoLiveWorkers):
            dispatch(np.ones(1)).result(timeout=5.0)
        assert submit.calls == 3  # initial attempt + 2 retries

    def test_application_errors_are_never_retried(self):
        submit = FlakySubmit(failures=10, error_type=ValueError)
        dispatch = ResilientDispatcher(
            submit, RetryPolicy(max_retries=5), timer=immediate_timer
        )
        with pytest.raises(ValueError):
            dispatch(np.ones(1)).result(timeout=5.0)
        assert submit.calls == 1

    def test_failures_feed_the_breaker_and_open_fails_fast(self):
        clock = FakeClock()
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2), clock=clock)
        submit = FlakySubmit(failures=10)
        dispatch = ResilientDispatcher(
            submit, RetryPolicy(max_retries=1), breaker=breaker,
            timer=immediate_timer,
        )
        with pytest.raises(WorkerCrashed):
            dispatch(np.ones(1)).result(timeout=5.0)
        assert breaker.state == "open"  # two attempts = two failures
        calls_before = submit.calls
        with pytest.raises(CircuitOpen):
            dispatch(np.ones(1)).result(timeout=5.0)
        assert submit.calls == calls_before  # fail-fast: never dispatched

    def test_half_open_probe_closes_the_breaker_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, reset_timeout_s=1.0), clock=clock
        )
        submit = FlakySubmit(failures=1)
        dispatch = ResilientDispatcher(
            submit, RetryPolicy(max_retries=0), breaker=breaker,
            timer=immediate_timer,
        )
        with pytest.raises(WorkerCrashed):
            dispatch(np.ones(1)).result(timeout=5.0)
        assert breaker.state == "open"
        clock.advance(1.0)
        out = dispatch(np.ones(1)).result(timeout=5.0)  # the probe
        np.testing.assert_array_equal(out, np.full(1, 2.0))
        assert breaker.state == "closed"

    def test_retry_jitter_stream_is_deterministic_per_seed(self):
        def run(seed):
            delays = []
            submit = FlakySubmit(failures=3)
            dispatch = ResilientDispatcher(
                submit,
                RetryPolicy(max_retries=3, seed=seed),
                timer=lambda d, fn: (delays.append(d), fn()),
            )
            dispatch(np.ones(1)).result(timeout=5.0)
            return delays

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_synchronous_submit_exception_is_also_retried(self):
        calls = [0]

        def submit(batch):
            calls[0] += 1
            if calls[0] == 1:
                raise NoLiveWorkers("respawn in progress")
            future: Future = Future()
            future.set_result(batch)
            return future

        dispatch = ResilientDispatcher(
            submit, RetryPolicy(max_retries=1), timer=immediate_timer
        )
        np.testing.assert_array_equal(
            dispatch(np.zeros(1)).result(timeout=5.0), np.zeros(1)
        )
        assert calls[0] == 2

    def test_concurrent_dispatches_share_the_jitter_rng_safely(self):
        submit = FlakySubmit(failures=0)
        dispatch = ResilientDispatcher(submit, RetryPolicy(max_retries=1, seed=0))
        futures = []
        threads = [
            threading.Thread(target=lambda: futures.append(dispatch(np.ones(1))))
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        for f in futures:
            f.result(timeout=5.0)
        assert submit.calls == 8


# ---------------------------------------------------------------------------
# Per-model concurrency budgets
# ---------------------------------------------------------------------------
class TestConcurrencyBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConcurrencyBudget({"m": 0})
        with pytest.raises(ValueError):
            ConcurrencyBudget(default=0)

    def test_limit_resolution(self):
        budget = ConcurrencyBudget({"hot": 2}, default=8)
        assert budget.limit("hot") == 2
        assert budget.limit("other") == 8
        assert ConcurrencyBudget({"hot": 2}).limit("other") is None

    def test_sheds_with_model_budget_reason_and_429(self):
        budget = ConcurrencyBudget({"m": 2})
        stats = ModelStats()
        budget.acquire("m")
        budget.acquire("m")
        with pytest.raises(AdmissionRejected) as excinfo:
            budget.acquire("m", stats=stats)
        assert excinfo.value.reason == "model_budget"
        assert excinfo.value.http_status == 429
        assert excinfo.value.retry_after_s == 0.5
        assert stats.snapshot()["resilience"]["shed"]["model_budget"] == 1
        # The failed acquire reserved nothing: one release frees a slot.
        budget.release("m")
        budget.acquire("m")

    def test_batch_acquire_is_all_or_nothing(self):
        budget = ConcurrencyBudget({"m": 4})
        budget.acquire("m", count=3)
        with pytest.raises(AdmissionRejected):
            budget.acquire("m", count=2)
        assert budget.snapshot()["inflight"] == {"m": 3}
        budget.acquire("m", count=1)

    def test_unlisted_models_are_unlimited_without_a_default(self):
        budget = ConcurrencyBudget({"hot": 1})
        for _ in range(100):
            budget.acquire("cold")
        assert budget.snapshot()["inflight"]["cold"] == 100

    def test_release_drops_empty_models_from_the_snapshot(self):
        budget = ConcurrencyBudget({"m": 2})
        budget.acquire("m", count=2)
        budget.release("m", count=2)
        assert budget.snapshot()["inflight"] == {}


class TestAdmissionAccountingProperty:
    """Satellite (a): seeded-random interleaving property test.

    Plain ``random`` (the chaos CI job installs only numpy+pytest, so no
    hypothesis): a scripted sequence of submit/settle/shed operations drawn
    from a seeded RNG, checked after every step against an independently
    tracked reference count.  The invariants the control plane depends on:
    in-flight counts never go negative, never exceed the budget, and drain
    to exactly zero once every admitted request settles (no leak at close).
    """

    MODELS = ("alpha", "beta", "gamma")

    def _run_script(self, seed: int, steps: int = 2_000):
        rng = random.Random(seed)
        caps = {"alpha": 3, "beta": 17}  # gamma rides the default
        budget = ConcurrencyBudget(caps, default=9)
        open_slots = []  # (model,) per admitted-but-unsettled request
        expected = {name: 0 for name in self.MODELS}
        sheds = 0
        for _ in range(steps):
            model = rng.choice(self.MODELS)
            if open_slots and rng.random() < 0.45:
                victim = open_slots.pop(rng.randrange(len(open_slots)))
                budget.release(victim)
                expected[victim] -= 1
            else:
                count = rng.randint(1, 3)
                try:
                    budget.acquire(model, count=count)
                except AdmissionRejected:
                    sheds += 1
                else:
                    open_slots.extend([model] * count)
                    expected[model] += count
            inflight = budget.snapshot()["inflight"]
            for name in self.MODELS:
                used = inflight.get(name, 0)
                assert used == expected[name] >= 0
                assert used <= budget.limit(name)
        # Drain: everything admitted settles; the ledger must be empty.
        for model in open_slots:
            budget.release(model)
        assert budget.snapshot()["inflight"] == {}
        return sheds

    @pytest.mark.parametrize("seed", [0, 7, 1234, 99991])
    def test_inflight_never_negative_never_leaks(self, seed):
        sheds = self._run_script(seed)
        assert sheds > 0  # the script actually exercised the shed path

    def test_script_is_deterministic_per_seed(self):
        assert self._run_script(42, steps=500) == self._run_script(42, steps=500)

    def test_threaded_acquire_release_drains_clean(self):
        budget = ConcurrencyBudget({"m": 8})
        sheds = [0] * 4

        def worker(slot: int) -> None:
            rng = random.Random(slot)
            for _ in range(300):
                count = rng.randint(1, 2)
                try:
                    budget.acquire("m", count=count)
                except AdmissionRejected:
                    sheds[slot] += 1
                else:
                    budget.release("m", count=count)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert budget.snapshot()["inflight"] == {}


# ---------------------------------------------------------------------------
# Integration: one hot model cannot starve its neighbours
# ---------------------------------------------------------------------------
class TestBudgetIsolation:
    def test_hot_model_sheds_while_neighbour_keeps_serving(self, repo, served):
        repo.publish_artifact(served.artifact, "neighbor")
        server = InferenceServer(
            repo,
            policy=BatchPolicy(max_batch_size=8, max_delay_ms=60_000),
            budget={"resnet_s": 2},
        )
        with server:
            # Two admitted requests parked in the hot model's batch window
            # exhaust its budget; the third is shed with 429/model_budget
            # before it ever reaches the queue.
            held = [
                server.predict_async("resnet_s", served.batch[i]) for i in range(2)
            ]
            with pytest.raises(AdmissionRejected) as excinfo:
                server.predict("resnet_s", served.batch[2], timeout=5.0)
            assert excinfo.value.reason == "model_budget"
            assert excinfo.value.http_status == 429
            assert (
                server.stats("resnet_s")["resilience"]["shed"]["model_budget"]
                == 1
            )
            # The neighbour is untouched by the hot model's exhausted budget.
            out = server.predict_batch("neighbor", served.batch[:4], timeout=120.0)
            np.testing.assert_allclose(
                out, served.expected[:4], rtol=1e-9, atol=1e-12
            )
            # A draining close flushes the forming batch: the held requests
            # settle with real answers and give their budget back — no leak.
            server.close(drain=True)
        outs = np.stack([f.result(timeout=120.0) for f in held])
        np.testing.assert_allclose(
            outs, served.expected[:2], rtol=1e-9, atol=1e-12
        )
        assert server.budget.snapshot()["inflight"] == {}
