"""Tests for the dynamic micro-batcher (no model needed: fake dispatchers)."""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.serve import BatcherClosed, BatchPolicy, DynamicBatcher, QueueFull
from repro.serve.stats import ModelStats


class RecordingDispatch:
    """Dispatch stub: doubles the batch, records every batch size."""

    def __init__(self, block_event: threading.Event = None):
        self.batch_sizes = []
        self.block_event = block_event

    def __call__(self, batch: np.ndarray) -> Future:
        if self.block_event is not None:
            self.block_event.wait(timeout=10.0)
        self.batch_sizes.append(len(batch))
        future = Future()
        future.set_result(batch * 2.0)
        return future


class FailingDispatch:
    def __call__(self, batch: np.ndarray) -> Future:
        future = Future()
        future.set_exception(RuntimeError("backend exploded"))
        return future


def test_policy_validation():
    with pytest.raises(ValueError):
        BatchPolicy(max_batch_size=0)
    with pytest.raises(ValueError):
        BatchPolicy(max_delay_ms=-1)
    with pytest.raises(ValueError):
        BatchPolicy(max_queue=0)


def test_full_batch_flushes_without_waiting_for_the_deadline():
    dispatch = RecordingDispatch()
    batcher = DynamicBatcher(
        dispatch, BatchPolicy(max_batch_size=4, max_delay_ms=10_000.0)
    )
    try:
        start = time.perf_counter()
        futures = [batcher.submit(np.full(3, i, dtype=float)) for i in range(4)]
        results = [f.result(timeout=5.0) for f in futures]
        elapsed = time.perf_counter() - start
        # Hitting max_batch_size closed the window: nowhere near the 10 s cap.
        assert elapsed < 2.0
        assert dispatch.batch_sizes == [4]
        for i, out in enumerate(results):
            np.testing.assert_array_equal(out, np.full(3, 2.0 * i))
    finally:
        batcher.close()


def test_partial_batch_flushes_on_timeout():
    dispatch = RecordingDispatch()
    batcher = DynamicBatcher(
        dispatch, BatchPolicy(max_batch_size=100, max_delay_ms=50.0)
    )
    try:
        start = time.perf_counter()
        futures = [batcher.submit(np.zeros(2)) for _ in range(3)]
        for f in futures:
            f.result(timeout=5.0)
        elapsed = time.perf_counter() - start
        assert dispatch.batch_sizes == [3]  # one batch, flushed by the deadline
        assert 0.045 <= elapsed < 5.0  # waited for the window, not forever
    finally:
        batcher.close()


def test_results_scatter_to_the_right_requests():
    dispatch = RecordingDispatch()
    batcher = DynamicBatcher(dispatch, BatchPolicy(max_batch_size=8, max_delay_ms=20.0))
    try:
        futures = {
            i: batcher.submit(np.full((2, 2), float(i))) for i in range(13)
        }
        for i, future in futures.items():
            np.testing.assert_array_equal(
                future.result(timeout=5.0), np.full((2, 2), 2.0 * i)
            )
        assert sum(dispatch.batch_sizes) == 13
        assert max(dispatch.batch_sizes) <= 8
    finally:
        batcher.close()


def test_dispatch_error_propagates_to_every_request_in_the_batch():
    stats = ModelStats()
    batcher = DynamicBatcher(
        FailingDispatch(), BatchPolicy(max_batch_size=4, max_delay_ms=5.0), stats=stats
    )
    try:
        futures = [batcher.submit(np.zeros(1)) for _ in range(3)]
        for future in futures:
            with pytest.raises(RuntimeError, match="backend exploded"):
                future.result(timeout=5.0)
        snap = stats.snapshot()
        assert snap["requests"]["failed"] == 3
        assert snap["requests"]["completed"] == 0
    finally:
        batcher.close()


def test_queue_full_backpressure():
    release = threading.Event()
    dispatch = RecordingDispatch(block_event=release)
    batcher = DynamicBatcher(
        dispatch, BatchPolicy(max_batch_size=1, max_delay_ms=0.0, max_queue=2)
    )
    try:
        first = batcher.submit(np.zeros(1))  # collector takes it, blocks in dispatch
        time.sleep(0.05)
        backlog = [batcher.submit(np.zeros(1)) for _ in range(2)]  # fills the queue
        with pytest.raises(QueueFull):
            batcher.submit(np.zeros(1))
        release.set()
        for future in [first, *backlog]:
            future.result(timeout=5.0)
    finally:
        release.set()
        batcher.close()


def test_cancelled_future_does_not_strand_batch_mates():
    """Cancelling one coalesced request must not hang the others."""
    release = threading.Event()
    dispatch = RecordingDispatch(block_event=release)
    batcher = DynamicBatcher(
        dispatch, BatchPolicy(max_batch_size=3, max_delay_ms=1000.0)
    )
    try:
        doomed = batcher.submit(np.zeros(1))
        survivors = [batcher.submit(np.ones(1)) for _ in range(2)]  # fills the batch
        assert doomed.cancel() or doomed.done()  # cancel while dispatch is blocked
        release.set()
        for future in survivors:
            np.testing.assert_array_equal(future.result(timeout=5.0), np.full(1, 2.0))
    finally:
        release.set()
        batcher.close()


def test_submit_after_close_raises():
    batcher = DynamicBatcher(RecordingDispatch(), BatchPolicy())
    batcher.close()
    with pytest.raises(BatcherClosed):
        batcher.submit(np.zeros(1))


def test_close_flushes_queued_requests():
    dispatch = RecordingDispatch()
    batcher = DynamicBatcher(
        dispatch, BatchPolicy(max_batch_size=100, max_delay_ms=10_000.0)
    )
    futures = [batcher.submit(np.zeros(1)) for _ in range(3)]
    batcher.close()  # shutdown closes the window early and flushes
    for future in futures:
        np.testing.assert_array_equal(future.result(timeout=5.0), np.zeros(1))
    assert dispatch.batch_sizes == [3]


def test_stats_record_batches_latency_and_queue_depth():
    stats = ModelStats()
    batcher = DynamicBatcher(
        RecordingDispatch(), BatchPolicy(max_batch_size=4, max_delay_ms=5.0), stats=stats
    )
    try:
        futures = [batcher.submit(np.zeros(1)) for _ in range(8)]
        for future in futures:
            future.result(timeout=5.0)
        snap = stats.snapshot()
        assert snap["requests"]["submitted"] == 8
        assert snap["requests"]["completed"] == 8
        assert snap["batches"]["count"] >= 2
        assert snap["batches"]["max_size"] <= 4
        assert snap["latency"]["p99_ms"] >= snap["latency"]["p50_ms"] > 0
        assert snap["throughput_rps"] > 0
    finally:
        batcher.close()


# ---------------------------------------------------------------------------
# Deadlines and aborting close
# ---------------------------------------------------------------------------
def test_already_expired_deadline_fails_synchronously():
    from repro.serve import DeadlineExceeded

    stats = ModelStats()
    batcher = DynamicBatcher(RecordingDispatch(), BatchPolicy(), stats=stats)
    try:
        with pytest.raises(DeadlineExceeded):
            batcher.submit(np.zeros(1), deadline=time.perf_counter() - 0.01)
        snap = stats.snapshot()
        assert snap["resilience"]["deadline_expired"] == 1
        assert snap["requests"]["submitted"] == 0  # never occupied the queue
    finally:
        batcher.close()


def test_expired_requests_are_dropped_from_the_forming_batch():
    from repro.serve import DeadlineExceeded

    release = threading.Event()
    dispatch = RecordingDispatch(block_event=release)
    stats = ModelStats()
    batcher = DynamicBatcher(
        dispatch, BatchPolicy(max_batch_size=1, max_delay_ms=0.0), stats=stats
    )
    try:
        # The collector is blocked in dispatch; queue a doomed request (its
        # deadline expires while it waits) next to a healthy one.
        first = batcher.submit(np.zeros(1))
        time.sleep(0.05)
        doomed = batcher.submit(np.zeros(1), deadline=time.perf_counter() + 0.05)
        healthy = batcher.submit(np.ones(1))
        time.sleep(0.1)  # the doomed deadline passes while blocked
        release.set()
        with pytest.raises(DeadlineExceeded):
            doomed.result(timeout=5.0)
        np.testing.assert_array_equal(first.result(timeout=5.0), np.zeros(1))
        np.testing.assert_array_equal(healthy.result(timeout=5.0), np.full(1, 2.0))
        # The expired request never reached the dispatcher.
        assert sum(dispatch.batch_sizes) == 2
        assert stats.snapshot()["resilience"]["deadline_expired"] == 1
    finally:
        release.set()
        batcher.close()


def test_aborting_close_fails_queued_requests_with_the_given_error():
    class Boom(RuntimeError):
        pass

    dispatch = RecordingDispatch()
    batcher = DynamicBatcher(
        dispatch, BatchPolicy(max_batch_size=100, max_delay_ms=60_000.0)
    )
    futures = [batcher.submit(np.zeros(1)) for _ in range(4)]
    start = time.perf_counter()
    batcher.close(drain=False, error=Boom("shutting down"))
    assert time.perf_counter() - start < 5.0  # no waiting out the window
    for future in futures:
        with pytest.raises(Boom, match="shutting down"):
            future.result(timeout=5.0)
    assert dispatch.batch_sizes == []  # nothing dispatched


def test_aborting_close_defaults_to_batcher_closed():
    batcher = DynamicBatcher(
        RecordingDispatch(), BatchPolicy(max_batch_size=100, max_delay_ms=60_000.0)
    )
    future = batcher.submit(np.zeros(1))
    batcher.close(drain=False)
    with pytest.raises(BatcherClosed):
        future.result(timeout=5.0)


def test_aborting_close_leaves_dispatched_batches_alone():
    release = threading.Event()
    dispatch = RecordingDispatch(block_event=release)
    batcher = DynamicBatcher(
        dispatch, BatchPolicy(max_batch_size=1, max_delay_ms=0.0)
    )
    inflight = batcher.submit(np.zeros(1))  # collector blocks inside dispatch
    time.sleep(0.05)
    queued = batcher.submit(np.ones(1))
    closer = threading.Thread(target=lambda: batcher.close(drain=False))
    closer.start()
    release.set()
    closer.join(timeout=10.0)
    # The batch that had already reached the dispatcher still resolves
    # normally; only the queued request fails.
    np.testing.assert_array_equal(inflight.result(timeout=5.0), np.zeros(1))
    with pytest.raises(BatcherClosed):
        queued.result(timeout=5.0)
