"""End-to-end tests for InferenceServer, worker pools, and the HTTP front end."""

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (
    BatchPolicy,
    InferenceServer,
    ModelRepository,
    ProcessWorkerPool,
    ThreadWorkerPool,
    WorkerError,
    serve_http,
)


# ---------------------------------------------------------------------------
# Worker pools
# ---------------------------------------------------------------------------
class FakeExecutor:
    def run(self, batch):
        return batch + 1.0


class TestThreadWorkerPool:
    def test_runs_batches_on_own_executors(self):
        built = []
        pool = ThreadWorkerPool(lambda: built.append(1) or FakeExecutor(), num_workers=3)
        try:
            futures = [pool.submit(np.full(2, i, dtype=float)) for i in range(6)]
            for i, future in enumerate(futures):
                np.testing.assert_array_equal(future.result(timeout=5.0), np.full(2, i + 1.0))
            assert len(built) == 3  # one executor per worker, not per batch
        finally:
            pool.close()

    def test_executor_exception_surfaces_on_the_future(self):
        class Exploding:
            def run(self, batch):
                raise ValueError("bad batch")

        pool = ThreadWorkerPool(Exploding, num_workers=1)
        try:
            with pytest.raises(ValueError, match="bad batch"):
                pool.submit(np.zeros(1)).result(timeout=5.0)
        finally:
            pool.close()

    def test_submit_after_close_raises(self):
        pool = ThreadWorkerPool(FakeExecutor, num_workers=1)
        pool.close()
        with pytest.raises(WorkerError):
            pool.submit(np.zeros(1))

    def test_shared_mode_builds_one_executor(self, served):
        from repro.core import Executor

        built = []
        def factory():
            built.append(1)
            return Executor(served.program)

        pool = ThreadWorkerPool(factory, num_workers=3, shared=True)
        try:
            assert len(built) == 1  # one executor, its shard pool shared
            assert pool.shared_executor.thread_safe
            futures = [pool.submit(served.batch) for _ in range(4)]
            for future in futures:
                np.testing.assert_allclose(
                    future.result(timeout=120.0), served.expected,
                    rtol=1e-9, atol=1e-12,
                )
        finally:
            pool.close()

    def test_shared_mode_serializes_unsafe_executors(self):
        # A shared executor without thread_safe=True degrades to
        # correct-but-serial behind a lock instead of racing.
        pool = ThreadWorkerPool(FakeExecutor, num_workers=2, shared=True)
        try:
            assert pool._shared_run_lock is not None
            futures = [pool.submit(np.full(2, i, dtype=float)) for i in range(4)]
            for i, future in enumerate(futures):
                np.testing.assert_array_equal(
                    future.result(timeout=5.0), np.full(2, i + 1.0)
                )
        finally:
            pool.close()


class TestProcessWorkerPool:
    def test_workers_load_artifact_and_match_reference(self, served):
        pool = ProcessWorkerPool(served.artifact, num_workers=2)
        try:
            futures = [pool.submit(served.batch[i : i + 4]) for i in range(0, 12, 4)]
            out = np.concatenate([f.result(timeout=120.0) for f in futures])
            np.testing.assert_allclose(out, served.expected, rtol=1e-9, atol=1e-12)
            assert len(pool.worker_pids()) == 2
        finally:
            pool.close()

    def test_in_worker_exception_is_a_per_request_error(self, served):
        pool = ProcessWorkerPool(served.artifact, num_workers=1)
        try:
            bad = np.zeros((2, 5, 5))  # wrong rank/channels for the program
            with pytest.raises(RuntimeError, match="worker"):
                pool.submit(bad).result(timeout=120.0)
            # The worker survived the exception: good batches still run.
            good = pool.submit(served.batch[:2]).result(timeout=120.0)
            np.testing.assert_allclose(good, served.expected[:2], rtol=1e-9, atol=1e-12)
        finally:
            pool.close()

    def test_worker_crash_fails_requests_instead_of_hanging(self, served):
        pool = ProcessWorkerPool(served.artifact, num_workers=1, respawn=False)
        try:
            # Warm up: the worker is up and serving.
            pool.submit(served.batch[:1]).result(timeout=120.0)
            pool._workers[0].process.kill()
            # Whether the death is noticed before or after assignment, the
            # request must resolve to an error — never hang.
            deadline = time.perf_counter() + 30.0
            saw_error = False
            while time.perf_counter() < deadline:
                try:
                    future = pool.submit(served.batch[:1])
                except WorkerError:
                    saw_error = True  # pool already marked the worker dead
                    break
                try:
                    future.result(timeout=30.0)
                except WorkerError:
                    saw_error = True  # in-flight batch failed with WorkerCrashed
                    break
                time.sleep(0.05)
            assert saw_error
        finally:
            pool.close()

    def test_crashed_worker_respawns_and_serves_again(self, served):
        pool = ProcessWorkerPool(served.artifact, num_workers=1, respawn=True)
        try:
            pool.submit(served.batch[:1]).result(timeout=120.0)
            old_pids = pool.worker_pids()
            pool._workers[0].process.kill()
            deadline = time.perf_counter() + 60.0
            out = None
            while time.perf_counter() < deadline:
                try:
                    out = pool.submit(served.batch[:2]).result(timeout=120.0)
                    break
                except WorkerError:
                    time.sleep(0.1)  # death noticed, replacement still booting
            assert out is not None, "pool never recovered after the crash"
            np.testing.assert_allclose(out, served.expected[:2], rtol=1e-9, atol=1e-12)
            assert pool.worker_pids() != old_pids
        finally:
            pool.close()

    def test_missing_artifact_rejected_immediately(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ProcessWorkerPool(tmp_path / "nope.npz")

    def test_shared_memory_ring_recycles_slots(self, served):
        pool = ProcessWorkerPool(served.artifact, num_workers=1)
        try:
            worker = pool._workers[0]
            assert worker.in_ring is not None, "rings should be on by default"
            slots = pool.shm_slots
            # More in-flight batches than slots: the ring must recycle (and
            # the pickle fallback absorb the overflow) without losing jobs.
            futures = [pool.submit(served.batch) for _ in range(3 * slots)]
            for future in futures:
                np.testing.assert_allclose(
                    future.result(timeout=120.0), served.expected,
                    rtol=1e-9, atol=1e-12,
                )
            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline:
                with pool._lock:
                    if sorted(worker.in_free) == list(range(slots)):
                        break
                time.sleep(0.02)
            with pool._lock:
                assert sorted(worker.in_free) == list(range(slots)), (
                    "input ring slots must all return to the free list"
                )
            assert pool.plan_info and pool.plan_info["arena_bytes"] > 0
        finally:
            pool.close()

    def test_ring_and_pickle_paths_agree(self, served):
        with_ring = ProcessWorkerPool(served.artifact, num_workers=1)
        without = ProcessWorkerPool(
            served.artifact, num_workers=1, use_shared_memory=False
        )
        try:
            assert without._workers[0].in_ring is None
            a = with_ring.submit(served.batch).result(timeout=120.0)
            b = without.submit(served.batch).result(timeout=120.0)
            np.testing.assert_array_equal(a, b)
        finally:
            with_ring.close()
            without.close()

    def test_oversized_batch_falls_back_to_pickle(self, served):
        pool = ProcessWorkerPool(
            served.artifact, num_workers=1, shm_slot_bytes=1024  # tiny slots
        )
        try:
            out = pool.submit(served.batch).result(timeout=120.0)
            np.testing.assert_allclose(
                out, served.expected, rtol=1e-9, atol=1e-12
            )
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# InferenceServer
# ---------------------------------------------------------------------------
class TestInferenceServer:
    def test_single_sample_predictions_match_engine(self, repo, served):
        with InferenceServer(
            repo, policy=BatchPolicy(max_batch_size=8, max_delay_ms=3.0), workers=2
        ) as server:
            futures = [server.predict_async("resnet_s", s) for s in served.batch]
            out = np.stack([f.result(timeout=60.0) for f in futures])
            np.testing.assert_allclose(out, served.expected, rtol=1e-9, atol=1e-12)
            snap = server.stats("resnet_s")
            assert snap["requests"]["completed"] == len(served.batch)
            assert snap["batches"]["count"] >= 2  # actually coalesced

    def test_predict_batch_bypasses_the_batcher(self, repo, served):
        with InferenceServer(repo) as server:
            out = server.predict_batch("resnet_s", served.batch)
            np.testing.assert_allclose(out, served.expected, rtol=1e-9, atol=1e-12)
            snap = server.stats("resnet_s")
            # Rows are counted as requests (consistent stats for bulk
            # traffic), but nothing ever entered the batcher's queue.
            assert snap["requests"]["submitted"] == len(served.batch)
            assert snap["requests"]["completed"] == len(served.batch)
            assert snap["batches"] == {"count": 1, "mean_size": 12.0, "max_size": 12}
            assert snap["queue"]["max_depth"] == 0
            assert snap["latency"]["p50_ms"] > 0

    def test_wrong_sample_shape_fails_alone(self, repo, served):
        with InferenceServer(repo) as server:
            with pytest.raises(ValueError, match="input shape"):
                server.predict("resnet_s", np.zeros((5, 5)))
            # The pipeline is intact; well-formed requests still serve.
            out = server.predict("resnet_s", served.batch[0], timeout=60.0)
            np.testing.assert_allclose(out, served.expected[0], rtol=1e-9, atol=1e-12)

    def test_explicit_version_pins_the_pipeline(self, repo, served):
        repo.publish(served.program_unoptimized, "resnet_s")  # v2 = latest
        with InferenceServer(repo) as server:
            out = server.predict("resnet_s", served.batch[0], version=1, timeout=60.0)
            np.testing.assert_allclose(out, served.expected[0], rtol=1e-9, atol=1e-12)
            assert server.serving() == [("resnet_s", 1)]

    def test_hot_swap_on_publish_switches_and_retires_old_pipeline(self, repo, served):
        with InferenceServer(repo) as server:
            server.predict("resnet_s", served.batch[0], timeout=60.0)
            assert server.serving() == [("resnet_s", 1)]
            repo.publish(served.program_unoptimized, "resnet_s")  # hot-swap to v2
            out = server.predict("resnet_s", served.batch[0], timeout=60.0)
            assert server.serving() == [("resnet_s", 2)]  # v1 pipeline retired
            # The unoptimized program matches the legacy float association;
            # predictions agree with the optimized path to float tolerance.
            np.testing.assert_allclose(out, served.expected[0], rtol=1e-6, atol=1e-8)

    def test_pinned_version_survives_hot_swap(self, repo, served):
        with InferenceServer(repo) as server:
            # Pin v1 explicitly, then swap latest to v2: the pinned pipeline
            # must keep serving (only unpinned stale versions retire).
            server.predict("resnet_s", served.batch[0], version=1, timeout=60.0)
            repo.publish(served.program_unoptimized, "resnet_s")
            server.predict("resnet_s", served.batch[0], timeout=60.0)  # builds v2
            assert server.serving() == [("resnet_s", 1), ("resnet_s", 2)]
            out = server.predict("resnet_s", served.batch[1], version=1, timeout=60.0)
            np.testing.assert_allclose(out, served.expected[1], rtol=1e-9, atol=1e-12)

    def test_repository_eviction_with_requests_in_flight(self, tmp_path, served):
        """A capacity-1 repository serving two models: building model B's
        pipeline evicts A's cache entry while A still serves requests."""
        repo = ModelRepository(tmp_path / "repo", capacity=1)
        repo.publish_artifact(served.artifact, "model_a")
        repo.publish_artifact(served.artifact, "model_b")
        with InferenceServer(
            repo, policy=BatchPolicy(max_batch_size=4, max_delay_ms=20.0)
        ) as server:
            in_flight = [server.predict_async("model_a", s) for s in served.batch[:4]]
            server.predict("model_b", served.batch[0], timeout=60.0)  # evicts model_a
            assert repo.cached == [("model_b", 1)]
            out = np.stack([f.result(timeout=60.0) for f in in_flight])
            np.testing.assert_allclose(out, served.expected[:4], rtol=1e-9, atol=1e-12)
            # And model_a keeps serving post-eviction: its pipeline owns the program.
            again = server.predict("model_a", served.batch[5], timeout=60.0)
            np.testing.assert_allclose(again, served.expected[5], rtol=1e-9, atol=1e-12)

    def test_process_worker_mode_serves_from_the_artifact(self, repo, served):
        with InferenceServer(
            repo,
            policy=BatchPolicy(max_batch_size=6, max_delay_ms=5.0),
            workers=1,
            worker_mode="process",
        ) as server:
            futures = [server.predict_async("resnet_s", s) for s in served.batch[:6]]
            out = np.stack([f.result(timeout=120.0) for f in futures])
            np.testing.assert_allclose(out, served.expected[:6], rtol=1e-9, atol=1e-12)

    def test_closed_server_rejects_requests(self, repo, served):
        server = InferenceServer(repo)
        server.close()
        with pytest.raises(RuntimeError):
            server.predict("resnet_s", served.batch[0])

    def test_invalid_worker_mode_rejected(self, repo):
        with pytest.raises(ValueError):
            InferenceServer(repo, worker_mode="fiber")


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------
@pytest.fixture()
def http_server(repo):
    server = InferenceServer(repo, policy=BatchPolicy(max_batch_size=8, max_delay_ms=3.0))
    front = serve_http(server, port=0)
    yield front
    front.close()
    server.close()


def _get(url, path):
    with urllib.request.urlopen(url + path, timeout=60.0) as response:
        return json.loads(response.read())


def _post(url, path, payload):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=120.0) as response:
        return json.loads(response.read())


class TestHttpFrontEnd:
    def test_health_models_and_metadata(self, http_server):
        url = http_server.url
        health = _get(url, "/healthz")
        assert health["status"] == "ok"
        assert health["degraded"] == []
        assert _get(url, "/v1/models") == {"models": {"resnet_s": [1]}}
        meta = _get(url, "/v1/models/resnet_s")
        assert meta["input_shape"] == [3, 32, 32]

    def test_predict_single_and_batch(self, http_server, served):
        url = http_server.url
        single = _post(
            url, "/v1/models/resnet_s/predict", {"inputs": served.batch[0].tolist()}
        )
        assert single["model"] == "resnet_s" and single["version"] == 1
        assert single["batched"] is False
        np.testing.assert_allclose(
            np.asarray(single["outputs"]), served.expected[0], rtol=1e-9, atol=1e-12
        )
        batch = _post(
            url, "/v1/models/resnet_s/predict", {"inputs": served.batch[:3].tolist()}
        )
        assert batch["batched"] is True
        np.testing.assert_allclose(
            np.asarray(batch["outputs"]), served.expected[:3], rtol=1e-9, atol=1e-12
        )
        stats = _get(url, "/v1/models/resnet_s/stats")
        assert stats["requests"]["completed"] == 4
        # The serving pipeline shares one planned executor: its arena/fusion
        # counters surface in the stats payload (same numbers as
        # NetworkProgram.metadata()["execution_plan"]).
        assert stats["executor"]["arena_bytes"] > 0
        assert stats["executor"]["steps_fused"] > 0
        assert stats["executor"]["workers"] >= 1
        # The compile pipeline's report travels with the artifact and
        # surfaces under /stats too: level, per-pass counters, verifier runs.
        assert stats["pipeline"]["level"] == "O2"
        assert stats["pipeline"]["verifier_runs"] >= 1
        pass_names = [p["name"] for p in stats["pipeline"]["passes"]]
        assert "fold_batchnorm" in pass_names

    def test_unknown_model_is_404(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(http_server.url, "/v1/models/ghost/predict", {"inputs": [1.0]})
        assert err.value.code == 404

    def test_bad_shape_is_400(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(
                http_server.url,
                "/v1/models/resnet_s/predict",
                {"inputs": [[1.0, 2.0]]},
            )
        assert err.value.code == 400

    def test_missing_inputs_is_400(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(http_server.url, "/v1/models/resnet_s/predict", {"x": 1})
        assert err.value.code == 400


# ---------------------------------------------------------------------------
# Overload and failure status-code contract
# ---------------------------------------------------------------------------
class TestHttpOverloadContract:
    """429/503/504 + Retry-After mapping under injected faults and overload."""

    @staticmethod
    def _error_response(fn):
        """Run ``fn``, return the HTTPError it must raise (code/headers/body)."""
        with pytest.raises(urllib.error.HTTPError) as err:
            fn()
        body = json.loads(err.value.read())
        return err.value.code, err.value.headers, body

    def test_worker_crash_is_503_with_retry_after(self, repo, served):
        from repro.serve import FaultPlan, serve_http

        server = InferenceServer(
            repo, retry=None, breaker=None,
            fault_plan=FaultPlan.crash_on_batch(1, worker=0),
        )
        front = serve_http(server, port=0)
        try:
            code, headers, body = self._error_response(
                lambda: _post(
                    front.url, "/v1/models/resnet_s/predict",
                    {"inputs": served.batch[0].tolist()},
                )
            )
            assert code == 503
            assert int(headers["Retry-After"]) >= 1
            assert body["reason"] == "worker_failure"
        finally:
            front.close()
            server.close()

    def test_priority_shed_is_429_and_hard_shed_503(self, repo, served):
        from repro.serve import AdmissionPolicy, FaultPlan, serve_http

        # A slow worker holds the backlog at 2 while the probes arrive:
        # the "bulk" class (bound 2 of 4) is shed with 429, and once the
        # backlog reaches the hard bound a default request sheds with 503.
        server = InferenceServer(
            repo,
            policy=BatchPolicy(max_batch_size=1, max_delay_ms=0.0),
            admission=AdmissionPolicy(
                max_queue_depth=4, priority_thresholds={"bulk": 0.5}
            ),
            fault_plan=FaultPlan.slow_worker(1500.0, times=None),
        )
        front = serve_http(server, port=0)
        try:
            backlog = [
                server.predict_async("resnet_s", served.batch[i]) for i in range(2)
            ]
            code, headers, body = self._error_response(
                lambda: _post(
                    front.url, "/v1/models/resnet_s/predict",
                    {"inputs": served.batch[2].tolist(), "priority": "bulk"},
                )
            )
            assert code == 429
            assert body["reason"] == "priority"
            assert int(headers["Retry-After"]) >= 1
            backlog += [
                server.predict_async("resnet_s", served.batch[i]) for i in range(2, 4)
            ]
            code, _, body = self._error_response(
                lambda: _post(
                    front.url, "/v1/models/resnet_s/predict",
                    {"inputs": served.batch[4].tolist()},
                )
            )
            assert code == 503
            assert body["reason"] == "queue_depth"
            stats = _get(front.url, "/v1/models/resnet_s/stats")["resilience"]
            assert stats["shed"] == {"priority": 1, "queue_depth": 1}
            for future in backlog:  # the admitted requests still resolve
                future.result(timeout=120.0)
        finally:
            front.close()
            server.close()

    def test_deadline_expiry_is_504(self, repo, served):
        from repro.serve import FaultPlan, serve_http

        server = InferenceServer(
            repo, fault_plan=FaultPlan.slow_worker(1000.0, times=None)
        )
        front = serve_http(server, port=0)
        try:
            code, _, body = self._error_response(
                lambda: _post(
                    front.url, "/v1/models/resnet_s/predict",
                    {"inputs": served.batch[0].tolist(), "timeout_ms": 100},
                )
            )
            assert code == 504
            assert body["reason"] == "deadline_exceeded"
        finally:
            front.close()
            server.close()

    def test_timeout_ms_header_variant_and_validation(self, repo, served):
        from repro.serve import serve_http

        server = InferenceServer(repo)
        front = serve_http(server, port=0)
        try:
            request = urllib.request.Request(
                front.url + "/v1/models/resnet_s/predict",
                data=json.dumps({"inputs": served.batch[0].tolist()}).encode(),
                headers={"X-Timeout-Ms": "60000"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=120.0) as response:
                assert json.loads(response.read())["version"] == 1
            code, _, _ = self._error_response(
                lambda: _post(
                    front.url, "/v1/models/resnet_s/predict",
                    {"inputs": served.batch[0].tolist(), "timeout_ms": -5},
                )
            )
            assert code == 400
        finally:
            front.close()
            server.close()

    def test_closed_server_is_503_with_retry_after(self, repo, served):
        from repro.serve import serve_http

        server = InferenceServer(repo)
        front = serve_http(server, port=0)
        try:
            server.close()
            code, headers, body = self._error_response(
                lambda: _post(
                    front.url, "/v1/models/resnet_s/predict",
                    {"inputs": served.batch[0].tolist()},
                )
            )
            assert code == 503
            assert body["reason"] == "server_closed"
            assert int(headers["Retry-After"]) >= 1
        finally:
            front.close()
            server.close()

    def test_open_breaker_degrades_healthz_to_503(self, repo, served):
        from repro.serve import BreakerPolicy, FaultPlan, FaultSpec, serve_http
        from repro.serve import RetryPolicy

        server = InferenceServer(
            repo,
            retry=RetryPolicy(max_retries=0),
            breaker=BreakerPolicy(failure_threshold=1, reset_timeout_s=60.0),
            fault_plan=FaultPlan((FaultSpec("crash", times=None),)),
        )
        front = serve_http(server, port=0)
        try:
            code, _, _ = self._error_response(
                lambda: _post(
                    front.url, "/v1/models/resnet_s/predict",
                    {"inputs": served.batch[0].tolist()},
                )
            )
            assert code == 503  # the crash opened the breaker
            code, headers, body = self._error_response(
                lambda: _get(front.url, "/healthz")
            )
            assert code == 503
            assert body["status"] == "degraded"
            assert body["models"]["resnet_s/1"]["breaker"] == "open"
            assert int(headers["Retry-After"]) >= 1
            # The next predict is shed at admission, before queueing.
            code, _, body = self._error_response(
                lambda: _post(
                    front.url, "/v1/models/resnet_s/predict",
                    {"inputs": served.batch[0].tolist()},
                )
            )
            assert code == 503
            assert body["reason"] == "circuit_open"
        finally:
            front.close()
            server.close()

    def test_server_wide_stats_route(self, http_server, served):
        _post(
            http_server.url, "/v1/models/resnet_s/predict",
            {"inputs": served.batch[0].tolist()},
        )
        snapshot = _get(http_server.url, "/stats")
        assert "resnet_s/1" in snapshot
        model = snapshot["resnet_s/1"]
        assert model["requests"]["completed"] >= 1
        assert model["resilience"]["breaker"]["state"] == "closed"
        assert model["queue"]["capacity"] >= 1
