"""Cluster transport: framing round-trips, bounds, deadlines, net faults.

Everything here runs on loopback ``socket.socketpair()`` — no listeners, no
ports, no replica processes — so the wire format is exercised in isolation
from the node/router machinery.  Timing-sensitive cases use deadlines (which
*expire*, they never poll), so the suite stays wall-clock-sleep free.
"""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.cluster.transport import (
    Connection,
    ConnectionClosed,
    DeadlineExpired,
    Frame,
    FrameTooLarge,
    MAGIC,
    MAX_HEADER_BYTES,
    Partitioned,
    TransportError,
    TruncatedFrame,
    WIRE_VERSION,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.serve.faults import FaultPlan


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def _roundtrip(pair, kind, meta=None, arrays=None, **kw):
    a, b = pair
    sender = threading.Thread(
        target=send_frame, args=(a, kind, meta, arrays), kwargs=kw, daemon=True
    )
    sender.start()
    frame = recv_frame(b, deadline=None)
    sender.join(timeout=10)
    assert not sender.is_alive()
    return frame


_DTYPES = st.sampled_from(
    ["<f8", "<f4", "<i8", "<i4", "<i2", "|u1", "|b1", "<c16"]
)
_SHAPES = st.lists(st.integers(0, 5), min_size=0, max_size=4).map(tuple)


class TestFraming:
    @settings(max_examples=40, deadline=None)
    @given(shape=_SHAPES, dtype=_DTYPES, seed=st.integers(0, 2**32 - 1))
    def test_random_arrays_roundtrip_bit_exact(self, shape, dtype, seed):
        rng = np.random.default_rng(seed)
        dt = np.dtype(dtype)
        raw = rng.integers(0, 256, size=(int(np.prod(shape)) * dt.itemsize,))
        array = raw.astype(np.uint8).tobytes()
        array = np.frombuffer(array, dtype=dt).reshape(shape)
        a, b = socket.socketpair()
        try:
            sender = threading.Thread(
                target=send_frame,
                args=(a, "predict", {"model": "m", "seed": seed}, {"batch": array}),
                daemon=True,
            )
            sender.start()
            frame = recv_frame(b)
            sender.join(timeout=10)
        finally:
            a.close()
            b.close()
        assert frame.kind == "predict"
        assert frame.meta == {"model": "m", "seed": seed}
        out = frame.arrays["batch"]
        assert out.dtype == dt and out.shape == shape
        assert out.tobytes() == array.tobytes()  # bitwise, NaNs included

    def test_multiple_arrays_keep_names_and_order(self, pair):
        arrays = {
            "x": np.arange(6, dtype=np.float64).reshape(2, 3),
            "y": np.array([], dtype=np.int32),
            "z": np.array(7, dtype=np.uint8),
        }
        frame = _roundtrip(pair, "bundle", {"n": 3}, arrays)
        assert list(frame.arrays) == ["x", "y", "z"]
        for name, expected in arrays.items():
            np.testing.assert_array_equal(frame.arrays[name], expected)

    def test_metadata_only_frame(self, pair):
        frame = _roundtrip(pair, "health", {"ok": True})
        assert frame == Frame(kind="health", meta={"ok": True}, arrays={})

    def test_back_to_back_frames_do_not_bleed(self, pair):
        a, b = pair
        first = {"batch": np.ones((3, 3))}
        second = {"batch": np.full((2, 2), 9.0)}

        def send_two():
            send_frame(a, "one", None, first)
            send_frame(a, "two", None, second)

        sender = threading.Thread(target=send_two, daemon=True)
        sender.start()
        f1 = recv_frame(b)
        f2 = recv_frame(b)
        sender.join(timeout=10)
        np.testing.assert_array_equal(f1.arrays["batch"], first["batch"])
        np.testing.assert_array_equal(f2.arrays["batch"], second["batch"])


class TestRejection:
    def test_oversized_payload_rejected_at_send(self, pair):
        a, _ = pair
        with pytest.raises(FrameTooLarge):
            send_frame(a, "predict", None, {"batch": np.zeros(1024)}, max_frame_bytes=64)

    def test_oversized_payload_rejected_at_recv_before_allocation(self, pair):
        a, b = pair
        # Sender side is permissive; the receiver must still refuse based on
        # the *claimed* sizes, before reading (or allocating) the payload.
        sender = threading.Thread(
            target=send_frame, args=(a, "predict", None, {"batch": np.zeros(1024)}),
            daemon=True,
        )
        sender.start()
        with pytest.raises(FrameTooLarge):
            recv_frame(b, max_frame_bytes=64)
        sender.join(timeout=10)

    def test_oversized_header_claim_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">4sBI", MAGIC, WIRE_VERSION, MAX_HEADER_BYTES + 1))
        with pytest.raises(FrameTooLarge):
            recv_frame(b)

    def test_bad_magic_rejected(self, pair):
        a, b = pair
        a.sendall(b"HTTP/1.1 200 OK\r\n")
        with pytest.raises(TransportError, match="magic"):
            recv_frame(b)

    def test_wrong_wire_version_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">4sBI", MAGIC, WIRE_VERSION + 1, 2))
        with pytest.raises(TransportError, match="version"):
            recv_frame(b)

    def test_truncated_header_raises_truncated_frame(self, pair):
        a, b = pair
        chunks = encode_frame("predict", None, {"batch": np.zeros(8)})
        wire = b"".join(chunks)
        a.sendall(wire[: len(chunks[0]) + 3])  # prefix + 3 bytes of header
        a.close()
        with pytest.raises(TruncatedFrame):
            recv_frame(b)

    def test_truncated_payload_raises_truncated_frame(self, pair):
        a, b = pair
        wire = b"".join(encode_frame("predict", None, {"batch": np.zeros(64)}))
        a.sendall(wire[:-13])
        a.close()
        with pytest.raises(TruncatedFrame):
            recv_frame(b)

    def test_clean_eof_at_boundary_is_connection_closed(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(b)


class TestDeadlines:
    def test_recv_deadline_expires_on_silent_peer(self, pair):
        _, b = pair
        conn = Connection(b, timeout_s=0.05)
        with pytest.raises(DeadlineExpired):
            conn.recv()
        assert conn.closed  # transport errors poison the connection

    def test_closed_connection_refuses_further_use(self, pair):
        a, _ = pair
        conn = Connection(a, timeout_s=0.05)
        conn.close()
        with pytest.raises(ConnectionClosed):
            conn.send("health")


class TestNetFaults:
    def test_drop_conn_fires_on_exact_frame(self, pair):
        a, b = pair
        plan = FaultPlan.drop_connection(nth_frame=2, peer=0)
        conn = Connection(a, faults=plan.net_session(peer=0))
        reader = threading.Thread(target=recv_frame, args=(b,), daemon=True)
        reader.start()
        conn.send("one")  # frame 1: passes
        reader.join(timeout=10)
        with pytest.raises(ConnectionClosed, match="drop_conn"):
            conn.send("two")  # frame 2: severed
        assert conn.closed

    def test_partition_holds_then_heals(self, pair):
        a, _ = pair
        plan = FaultPlan.partition(peer=0, after_frame=1, heal_after=3)
        conn = Connection(a, faults=plan.net_session(peer=0), timeout_s=0.2)
        for _ in range(3):
            with pytest.raises(Partitioned):
                conn.send("blocked")
        # Budget spent: the partition heals and frames flow again.
        reader_sock = conn  # still open — Partitioned does not close
        assert not reader_sock.closed

    def test_faults_target_their_peer_only(self, pair):
        a, b = pair
        plan = FaultPlan.drop_connection(nth_frame=1, peer=1)
        conn = Connection(a, faults=plan.net_session(peer=0))
        reader = threading.Thread(target=recv_frame, args=(b,), daemon=True)
        reader.start()
        conn.send("fine")  # peer 0 is untargeted
        reader.join(timeout=10)
        assert not conn.closed

    def test_fault_replay_is_deterministic(self):
        plan = FaultPlan.drop_connection(nth_frame=3, peer=0) + FaultPlan.partition(
            peer=1, after_frame=2, heal_after=2
        )

        def trace(peer):
            session = plan.net_session(peer=peer)
            return [tuple(s.kind for s in session.on_frame()) for _ in range(6)]

        assert trace(0) == trace(0)
        assert trace(1) == trace(1)
        assert trace(0) != trace(1)
