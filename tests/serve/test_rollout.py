"""Deterministic tests for staged canary rollout and rollback.

The controller is pure bookkeeping (no threads, no clocks, a credit-based
router instead of an RNG), so the unit tests assert *exact* routing counts
and stage transitions.  The integration tests run real rollouts through
:class:`~repro.serve.server.InferenceServer`: a healthy canary promotes, a
shape-incompatible canary (manufactured by rewriting the artifact header)
fails every routed request and auto-rolls-back, and publishing a canary
under LRU-cache pressure never breaks the stable arm's in-flight pipelines.
"""

import json

import numpy as np
import pytest

from repro.serve import (
    BatchPolicy,
    InferenceServer,
    ModelRepository,
    RolloutController,
    RolloutPolicy,
)


def make(stages=(0.5, 1.0), min_requests=3, **overrides) -> RolloutController:
    policy = RolloutPolicy(
        stages=stages, min_requests_per_stage=min_requests, **overrides
    )
    return RolloutController("m", stable=1, canary=2, policy=policy)


def settle(controller: RolloutController, version: int, *,
           error: bool = False, latency_ms: float = 10.0) -> str:
    controller.record(version, error=error, latency_ms=latency_ms)
    return controller.evaluate()


# ---------------------------------------------------------------------------
# Policy + construction validation
# ---------------------------------------------------------------------------
class TestRolloutPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RolloutPolicy(stages=())
        with pytest.raises(ValueError):
            RolloutPolicy(stages=(0.5, 0.25))  # not increasing
        with pytest.raises(ValueError):
            RolloutPolicy(stages=(0.0, 1.0))  # zero weight
        with pytest.raises(ValueError):
            RolloutPolicy(stages=(0.5, 1.5))  # over 1
        with pytest.raises(ValueError):
            RolloutPolicy(min_requests_per_stage=0)
        with pytest.raises(ValueError):
            RolloutPolicy(max_error_rate=0.0)
        with pytest.raises(ValueError):
            RolloutPolicy(min_failures=0)

    def test_canary_must_differ_from_stable(self):
        with pytest.raises(ValueError):
            RolloutController("m", stable=3, canary=3)


# ---------------------------------------------------------------------------
# The credit router: exact, deterministic proportions
# ---------------------------------------------------------------------------
class TestCreditRouter:
    @pytest.mark.parametrize("weight,expected", [(0.05, 5), (0.25, 25), (0.5, 50)])
    def test_exact_canary_share_over_100_requests(self, weight, expected):
        controller = make(stages=(weight,), min_requests=10**9)
        routes = [controller.route() for _ in range(100)]
        assert routes.count(2) == expected

    def test_routing_is_identical_on_every_run(self):
        assert (
            [make(stages=(0.3,), min_requests=10**9).route() for _ in range(50)]
            == [make(stages=(0.3,), min_requests=10**9).route() for _ in range(50)]
        )

    def test_canary_requests_are_evenly_spread_not_bunched(self):
        controller = make(stages=(0.25,), min_requests=10**9)
        canary_positions = [
            i for i in range(20) if controller.route() == 2
        ]
        assert canary_positions == [3, 7, 11, 15, 19]  # every 4th request

    def test_full_weight_routes_everything_to_the_canary(self):
        controller = make(stages=(1.0,), min_requests=10**9)
        assert [controller.route() for _ in range(5)] == [2] * 5


# ---------------------------------------------------------------------------
# Staged advancement and promotion
# ---------------------------------------------------------------------------
class TestStagedPromotion:
    def test_advances_on_canary_evidence_only(self):
        controller = make(stages=(0.5, 1.0), min_requests=3)
        # Stable settles never advance the stage, however many there are.
        for _ in range(10):
            assert settle(controller, 1) == "canary"
        assert controller.stage_index == 0
        for _ in range(2):
            settle(controller, 2)
        assert controller.stage_index == 0  # 2 < min_requests_per_stage
        settle(controller, 2)
        assert controller.stage_index == 1  # dwell satisfied → next stage
        assert controller.weight() == 1.0

    def test_promotes_after_the_final_stage(self):
        controller = make(stages=(0.5, 1.0), min_requests=2)
        while controller.state == "canary":
            settle(controller, controller.route())
        assert controller.state == "promoted"
        assert controller.weight() == 1.0
        assert [controller.route() for _ in range(4)] == [2] * 4
        history = controller.snapshot()["history"]
        assert [h["event"] for h in history] == ["start", "advance", "promoted"]

    def test_stage_dwell_resets_between_stages(self):
        controller = make(stages=(0.5, 1.0), min_requests=2)
        settle(controller, 2)
        settle(controller, 2)  # advance to stage 1
        assert controller.stage_index == 1
        settle(controller, 2)  # one settle at the new stage: not promoted yet
        assert controller.state == "canary"
        settle(controller, 2)
        assert controller.state == "promoted"


# ---------------------------------------------------------------------------
# Rollback guardrails
# ---------------------------------------------------------------------------
class TestRollback:
    def test_error_ceiling_rolls_back_after_min_failures(self):
        controller = make(min_requests=100, max_error_rate=0.1, min_failures=3)
        settle(controller, 2, error=True)
        settle(controller, 2, error=True)
        assert controller.state == "canary"  # grace: one short of min_failures
        state = settle(controller, 2, error=True)
        assert state == "rolled_back"
        assert "ceiling" in controller.reason
        assert controller.weight() == 0.0
        assert [controller.route() for _ in range(4)] == [1] * 4

    def test_relative_margin_rolls_back_a_meaningfully_worse_canary(self):
        controller = make(
            min_requests=100, max_error_rate=0.9,
            error_rate_margin=0.05, min_failures=3,
        )
        for _ in range(20):
            settle(controller, 1)  # stable: clean
        for _ in range(7):
            settle(controller, 2)
        for _ in range(3):
            state = settle(controller, 2, error=True)
        # canary 3/10 = 30% vs stable 0% + 5% margin → rolled back (the 30%
        # is under the 90% absolute ceiling, so only the margin can trip).
        assert state == "rolled_back"
        assert "exceeds stable" in controller.reason

    def test_erroring_stable_raises_the_bar_for_the_canary(self):
        controller = make(
            min_requests=100, max_error_rate=0.9,
            error_rate_margin=0.05, min_failures=3,
        )
        for i in range(20):
            settle(controller, 1, error=(i % 2 == 0))  # stable at 50%
        for _ in range(7):
            settle(controller, 2)
        for _ in range(3):
            settle(controller, 2, error=True)
        # The same 3/10 canary that rolled back against a clean stable above
        # survives here: 30% is no regression relative to a 50% stable.
        assert controller.state == "canary"

    def test_latency_regression_rolls_back(self):
        controller = make(min_requests=5, latency_factor=2.0)
        for _ in range(20):
            settle(controller, 1, latency_ms=10.0)
        for _ in range(4):
            settle(controller, 2, latency_ms=100.0)
        assert controller.state == "canary"  # not enough latency samples yet
        state = settle(controller, 2, latency_ms=100.0)
        assert state == "rolled_back"
        assert "latency" in controller.reason

    def test_latency_gate_needs_samples_from_both_arms(self):
        controller = make(stages=(0.5, 0.9, 1.0), min_requests=2, latency_factor=2.0)
        # No stable latency at all: the canary cannot be judged against it,
        # so it advances stages instead of tripping a spurious rollback.
        for _ in range(4):
            settle(controller, 2, latency_ms=500.0)
        assert controller.state == "canary"
        assert controller.stage_index == 2

    def test_terminal_states_freeze_the_controller(self):
        controller = make(min_requests=2)
        controller.abort("operator said no")
        assert controller.state == "rolled_back"
        for _ in range(10):
            settle(controller, 2)  # evidence after the fact changes nothing
        assert controller.state == "rolled_back"
        assert controller.abort() == "rolled_back"  # idempotent

    def test_abort_after_promotion_is_a_no_op(self):
        controller = make(stages=(1.0,), min_requests=1)
        settle(controller, 2)
        assert controller.state == "promoted"
        assert controller.abort() == "promoted"

    def test_unknown_version_records_are_ignored(self):
        controller = make(min_requests=100, min_failures=1, max_error_rate=0.01)
        settle(controller, 99, error=True)  # a pinned request outside the rollout
        assert controller.state == "canary"
        assert controller.snapshot()["arms"].keys() == {"1", "2"}

    def test_snapshot_shape(self):
        controller = make()
        snap = controller.snapshot()
        assert snap["model"] == "m"
        assert (snap["stable"], snap["canary"]) == (1, 2)
        assert snap["state"] == "canary"
        assert snap["weight"] == 0.5
        assert snap["stages"] == [0.5, 1.0]
        assert snap["arms"]["1"]["requests"] == 0
        assert snap["history"][0]["event"] == "start"


# ---------------------------------------------------------------------------
# Integration: real rollouts through the server
# ---------------------------------------------------------------------------
def publish_incompatible_canary(repo: ModelRepository, served, tmp_path) -> None:
    """Publish a v2 whose program loads cleanly but declares a different
    input shape — every request routed to it fails shape validation, the
    deterministic stand-in for a canary build that errors on real traffic."""
    with np.load(served.artifact, allow_pickle=False) as data:
        arrays = {key: data[key] for key in data.files}
    meta = json.loads(str(arrays["__program__"]))
    meta["input_shape"] = [3, 16, 16]
    arrays["__program__"] = np.array(json.dumps(meta))
    bad = tmp_path / "incompatible.npz"
    np.savez_compressed(bad, **arrays)
    repo.publish_artifact(bad, "resnet_s")


def fast_server(repo, **kwargs) -> InferenceServer:
    return InferenceServer(
        repo, policy=BatchPolicy(max_batch_size=1, max_delay_ms=0.0), **kwargs
    )


class TestServerRollout:
    def test_healthy_canary_promotes_through_the_stages(self, repo, served):
        repo.publish_artifact(served.artifact, "resnet_s")  # v2 = same program
        with fast_server(repo) as server:
            controller = server.start_rollout(
                "resnet_s",
                policy=RolloutPolicy(stages=(0.5, 1.0), min_requests_per_stage=3),
            )
            assert (controller.stable, controller.canary) == (1, 2)
            assert server.serving() == [("resnet_s", 1), ("resnet_s", 2)]
            outputs = []
            for i in range(100):
                outputs.append(
                    server.predict("resnet_s", served.batch[0], timeout=120.0)
                )
                if server.rollout_status("resnet_s")["state"] == "promoted":
                    break
            status = server.rollout_status("resnet_s")
            assert status["state"] == "promoted"
            assert status["weight"] == 1.0
            # Both arms served real traffic, identically (same program).
            assert status["arms"]["1"]["requests"] > 0
            assert status["arms"]["2"]["requests"] >= 6  # 3 per stage × 2 stages
            assert status["arms"]["1"]["errors"] == 0
            assert status["arms"]["2"]["errors"] == 0
            for out in outputs:
                np.testing.assert_allclose(
                    out, served.expected[0], rtol=1e-9, atol=1e-12
                )
            # Post-promotion traffic all routes to the canary version.
            version, _, _ = server.predict_request("resnet_s", served.batch[0])
            assert version == 2
            assert server.health()["control_plane"]["rollouts"]["resnet_s"][
                "state"
            ] == "promoted"
            server.end_rollout("resnet_s")
            assert server.rollout_status("resnet_s") is None

    def test_erroring_canary_rolls_back_automatically(self, repo, served, tmp_path):
        publish_incompatible_canary(repo, served, tmp_path)
        with fast_server(repo) as server:
            server.start_rollout(
                "resnet_s",
                policy=RolloutPolicy(
                    stages=(0.5, 1.0), min_requests_per_stage=4,
                    max_error_rate=0.1, min_failures=3,
                ),
            )
            failures = 0
            for _ in range(20):
                try:
                    server.predict("resnet_s", served.batch[0], timeout=120.0)
                except ValueError:
                    failures += 1  # routed to the shape-incompatible canary
                if server.rollout_status("resnet_s")["state"] == "rolled_back":
                    break
            status = server.rollout_status("resnet_s")
            assert status["state"] == "rolled_back"
            assert "error rate" in status["reason"]
            assert failures >= 3  # exactly the min_failures evidence bar
            # After the rollback every unversioned request succeeds on stable.
            for _ in range(5):
                version, out, _ = server.predict_request(
                    "resnet_s", served.batch[0]
                )
                assert version == 1
                np.testing.assert_allclose(
                    out, served.expected[0], rtol=1e-9, atol=1e-12
                )
            history = [h["event"] for h in status["history"]]
            assert history[-1] == "rolled_back"

    def test_second_rollout_waits_for_the_first(self, repo, served):
        repo.publish_artifact(served.artifact, "resnet_s")
        with fast_server(repo) as server:
            server.start_rollout("resnet_s")
            with pytest.raises(ValueError, match="already in progress"):
                server.start_rollout("resnet_s")
            server.abort_rollout("resnet_s", "clearing the deck")
            assert server.rollout_status("resnet_s")["state"] == "rolled_back"
            # A terminal rollout no longer blocks starting a fresh one.
            repo.publish_artifact(served.artifact, "resnet_s")  # v3
            controller = server.start_rollout("resnet_s")
            assert (controller.stable, controller.canary) == (2, 3)

    def test_rollout_needs_a_stable_version_below_the_canary(self, repo):
        with fast_server(repo) as server:
            with pytest.raises(ValueError, match="no stable version"):
                server.start_rollout("resnet_s")  # only v1 exists

    def test_explicit_version_pins_bypass_the_rollout_router(self, repo, served, tmp_path):
        publish_incompatible_canary(repo, served, tmp_path)
        with fast_server(repo) as server:
            server.start_rollout(
                "resnet_s",
                policy=RolloutPolicy(
                    stages=(1.0,), min_requests_per_stage=4, min_failures=3
                ),
            )
            # Pinned requests to stable succeed and are never counted as
            # rollout evidence — the canary arm stays untouched.
            for _ in range(6):
                out = server.predict(
                    "resnet_s", served.batch[0], version=1, timeout=120.0
                )
                np.testing.assert_allclose(
                    out, served.expected[0], rtol=1e-9, atol=1e-12
                )
            status = server.rollout_status("resnet_s")
            assert status["state"] == "canary"
            assert status["arms"]["1"]["requests"] == 0
            assert status["arms"]["2"]["requests"] == 0


class TestRolloutUnderCachePressure:
    def test_canary_publish_never_breaks_stable_inflight_pipelines(
        self, tmp_path, served
    ):
        """Satellite (c): a capacity-1 LRU means building the canary pipeline
        *must* evict the stable program from the cache — with stable requests
        still waiting in the batch window.  The stable pipeline holds its own
        program reference, so eviction is invisible to in-flight traffic and
        both versions keep serving."""
        repo = ModelRepository(tmp_path / "repo", capacity=1)
        repo.publish_artifact(served.artifact, "resnet_s")
        repo.publish_artifact(served.artifact, "resnet_s")  # v2 (canary-to-be)
        server = InferenceServer(
            repo, policy=BatchPolicy(max_batch_size=4, max_delay_ms=60_000)
        )
        with server:
            # Two stable requests parked in the forming batch window.
            inflight = [
                server.predict_async("resnet_s", served.batch[i], version=1)
                for i in range(2)
            ]
            evictions_before = repo.evictions
            server.start_rollout("resnet_s")  # builds the canary pipeline
            assert repo.evictions > evictions_before  # the pressure was real
            assert server.serving() == [("resnet_s", 1), ("resnet_s", 2)]
            # Flush the stable batch; the evicted cache entry must not matter.
            inflight += [
                server.predict_async("resnet_s", served.batch[i], version=1)
                for i in range(2, 4)
            ]
            outs = np.stack([f.result(timeout=120.0) for f in inflight])
            np.testing.assert_allclose(
                outs, served.expected[:4], rtol=1e-9, atol=1e-12
            )
            # Both versions answer pinned traffic after the eviction churn.
            for version in (1, 2):
                out = server.predict(
                    "resnet_s", served.batch[5], version=version, timeout=120.0
                )
                np.testing.assert_allclose(
                    out, served.expected[5], rtol=1e-9, atol=1e-12
                )
