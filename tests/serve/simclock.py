"""Deterministic virtual clock for the serving control-plane tests.

:class:`SimClock` implements the :class:`repro.serve.clock.Clock` contract
with *simulated* time: ``timer()`` schedules callbacks on a heap keyed by
virtual fire time, and :meth:`SimClock.advance` moves time forward, running
every due callback **on the calling thread** in fire-time order.  The same
control-plane code (autoscaler ticker, scaler decisions) that runs against
wall-clock timers in production runs here with zero real sleeps and
identical results on every run — the harness the ISSUE's simulation suite
drives ramp/spike/diurnal/idle traces through.

``sleep()`` raises: nothing driven by this clock is allowed to block on
real time, and a test that would have slept fails loudly instead of
silently serializing virtual and wall time.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Callable, List, Tuple

from repro.serve.clock import Clock, TimerHandle


class SleepForbidden(AssertionError):
    """Control-plane code tried to block on real time under the sim clock."""


class _Entry:
    """One scheduled callback; ``cancel()`` tombstones it on the heap."""

    __slots__ = ("fn", "cancelled")

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class SimClock(Clock):
    """Virtual time: ``now()`` is a counter, ``advance()`` is the scheduler."""

    def __init__(self, start: float = 0.0):
        self._lock = threading.Lock()
        self._now = float(start)
        self._seq = itertools.count()  # FIFO tiebreak for same-time timers
        self._heap: List[Tuple[float, int, _Entry]] = []

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        raise SleepForbidden(
            f"sleep({seconds}) under SimClock — drive time with advance() instead"
        )

    def timer(self, delay_s: float, fn: Callable[[], None]) -> TimerHandle:
        # Matches the system clock's contract: a non-positive delay fires
        # synchronously (Ticker never schedules one, but the contract holds).
        if delay_s <= 0:
            fn()
            return TimerHandle(lambda: None)
        entry = _Entry(fn)
        with self._lock:
            heapq.heappush(self._heap, (self._now + delay_s, next(self._seq), entry))
        return TimerHandle(entry.cancel)

    def pending(self) -> int:
        """Scheduled (uncancelled) callbacks still waiting to fire."""
        with self._lock:
            return sum(1 for _, _, entry in self._heap if not entry.cancelled)

    def advance(self, seconds: float) -> int:
        """Move virtual time forward, firing due callbacks in order.

        Callbacks run on the calling thread, each observing ``now()`` equal
        to its own fire time — so a re-arming :class:`~repro.serve.clock.Ticker`
        fires once per interval crossed, exactly as it would in real time.
        Returns the number of callbacks fired.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards ({seconds})")
        with self._lock:
            target = self._now + seconds
        fired = 0
        while True:
            with self._lock:
                if not self._heap or self._heap[0][0] > target:
                    self._now = target
                    break
                when, _, entry = heapq.heappop(self._heap)
                self._now = when
            if entry.cancelled:
                continue
            # Outside the lock: the callback may (and the Ticker does)
            # schedule its successor through timer().
            entry.fn()
            fired += 1
        return fired

    def run_for_ticks(self, interval_s: float, ticks: int) -> int:
        """Advance ``ticks`` whole intervals (convenience for ticker tests)."""
        fired = 0
        for _ in range(ticks):
            fired += self.advance(interval_s)
        return fired
