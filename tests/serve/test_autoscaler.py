"""Deterministic simulation tests for the autoscaling control plane.

Two layers, zero real sleeps in either:

* **Trace tests** drive :meth:`Autoscaler.tick` directly with synthetic
  offered-load traces (ramp, spike, diurnal, idle) against fake targets —
  every threshold is counted in ticks, so the decision sequence is a pure
  function of the trace and asserts exactly.
* **SimClock tests** run the same controller behind its production
  :class:`~repro.serve.clock.Ticker`, with virtual time advanced by hand
  (``tests/serve/simclock.py``) — proving the wall-clock seam is the only
  nondeterminism in the loop.

The server-integration tests at the bottom use the real compiled model:
scale-up under a real backlog, scale-to-zero with bitwise-identical warm
revival, and ``/healthz`` judged against the post-scale admission bound.
"""

import threading
from typing import List, Optional

import numpy as np
import pytest

from repro.serve import (
    AdmissionPolicy,
    AutoscalePolicy,
    Autoscaler,
    BatchPolicy,
    InferenceServer,
    ScaleMetrics,
    Ticker,
)
from repro.serve.autoscaler import ScalableTarget, ScalerDecision

from simclock import SimClock, SleepForbidden


class FakeTarget(ScalableTarget):
    """A scalable target whose metrics the trace scripts mutate directly."""

    def __init__(self, workers: int = 1, backlog: int = 0,
                 submitted: int = 0, p95_ms: float = 0.0):
        self.workers = workers
        self.backlog = backlog
        self.submitted = submitted
        self.p95_ms = p95_ms
        self.resizes: List[int] = []

    def metrics(self) -> ScaleMetrics:
        return ScaleMetrics(
            backlog=self.backlog,
            workers=self.workers,
            submitted=self.submitted,
            queue_wait_p95_ms=self.p95_ms,
        )

    def resize(self, workers: int) -> int:
        self.workers = workers
        self.resizes.append(workers)
        return workers


def run_trace(scaler: Autoscaler, target: FakeTarget, trace) -> List[ScalerDecision]:
    """One tick per trace step; each step optionally overrides the target's
    backlog/p95 and adds ``new`` submissions.  Returns all decisions."""
    decisions: List[ScalerDecision] = []
    for step in trace:
        target.backlog = step.get("backlog", target.backlog)
        target.p95_ms = step.get("p95", target.p95_ms)
        target.submitted += step.get("new", 0)
        decisions.extend(scaler.tick())
    return decisions


# ---------------------------------------------------------------------------
# Policy validation
# ---------------------------------------------------------------------------
class TestAutoscalePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_workers=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(min_workers=4, max_workers=2)
        with pytest.raises(ValueError):
            AutoscalePolicy(tick_interval_s=0.0)
        with pytest.raises(ValueError):
            AutoscalePolicy(backlog_high_per_worker=1.0, backlog_low_per_worker=1.0)
        with pytest.raises(ValueError):
            AutoscalePolicy(scale_up_step=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(up_cooldown_ticks=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(down_hysteresis_ticks=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(idle_ticks_to_zero=0)


# ---------------------------------------------------------------------------
# Scale-up traces
# ---------------------------------------------------------------------------
def up_policy(**overrides) -> AutoscalePolicy:
    defaults = dict(
        min_workers=1, max_workers=4,
        backlog_high_per_worker=4.0, backlog_low_per_worker=1.0,
        up_cooldown_ticks=2, down_cooldown_ticks=4, down_hysteresis_ticks=4,
    )
    defaults.update(overrides)
    return AutoscalePolicy(**defaults)


class TestScaleUp:
    def test_ramp_reaches_max_within_the_reaction_window(self):
        """A sustained backlog grows the pool min → max in exactly
        (max - min) * up_cooldown_ticks + 1 ticks — the reaction window."""
        scaler = Autoscaler(up_policy())
        target = FakeTarget(workers=1, backlog=100)
        scaler.watch("m/1", target)
        window = (4 - 1) * 2 + 1
        decisions = run_trace(scaler, target, [{"new": 10}] * window)
        assert target.workers == 4
        ups = [d for d in decisions if d.action == "scale_up"]
        assert [(d.from_workers, d.to_workers) for d in ups] == [(1, 2), (2, 3), (3, 4)]
        assert [d.tick for d in ups] == [1, 3, 5]  # one per cooldown window

    def test_cooldown_blocks_are_audited(self):
        scaler = Autoscaler(up_policy())
        target = FakeTarget(workers=1, backlog=100)
        scaler.watch("m/1", target)
        decisions = run_trace(scaler, target, [{"new": 10}] * 2)
        assert [d.action for d in decisions] == ["scale_up", "blocked_cooldown"]
        blocked = decisions[1]
        assert blocked.from_workers == blocked.to_workers == 2
        assert "cooldown" in blocked.reason
        assert target.resizes == [2]  # the block really did not resize

    def test_queue_wait_slo_breach_scales_up_without_backlog(self):
        scaler = Autoscaler(up_policy(queue_wait_slo_ms=50.0))
        target = FakeTarget(workers=1, backlog=0, p95_ms=120.0)
        scaler.watch("m/1", target)
        (decision,) = run_trace(scaler, target, [{"new": 1}])
        assert decision.action == "scale_up"
        assert "SLO" in decision.reason
        assert target.workers == 2

    def test_pinned_at_max_emits_no_noise(self):
        scaler = Autoscaler(up_policy())
        target = FakeTarget(workers=4, backlog=100)
        scaler.watch("m/1", target)
        assert run_trace(scaler, target, [{"new": 10}] * 5) == []
        assert target.resizes == []

    def test_scale_up_step_is_capped_at_max_workers(self):
        scaler = Autoscaler(up_policy(scale_up_step=8))
        target = FakeTarget(workers=1, backlog=100)
        scaler.watch("m/1", target)
        (decision,) = run_trace(scaler, target, [{"new": 10}])
        assert decision.to_workers == 4  # 1 + 8 clamped to max


# ---------------------------------------------------------------------------
# Scale-down traces: hysteresis and cooldown
# ---------------------------------------------------------------------------
class TestScaleDown:
    def test_shrinks_only_after_consecutive_low_ticks(self):
        scaler = Autoscaler(up_policy(down_hysteresis_ticks=3, down_cooldown_ticks=2))
        target = FakeTarget(workers=4, backlog=0)
        scaler.watch("m/1", target)
        decisions = run_trace(scaler, target, [{"new": 1}] * 9)
        downs = [d for d in decisions if d.action == "scale_down"]
        # low_ticks reaches 3 at tick 3 (4→3), resets, reaches 3 again at
        # tick 6 (3→2) and tick 9 (2→1); then pinned at min.
        assert [(d.tick, d.from_workers, d.to_workers) for d in downs] == [
            (3, 4, 3), (6, 3, 2), (9, 2, 1),
        ]
        assert target.workers == 1
        assert run_trace(scaler, target, [{"new": 1}] * 4) == []  # at min: silent

    def test_oscillating_load_never_flaps(self):
        """Load alternating high/low every tick: hysteresis means the pool
        only ever grows (each low tick is immediately invalidated)."""
        scaler = Autoscaler(up_policy(down_hysteresis_ticks=2, down_cooldown_ticks=2))
        target = FakeTarget(workers=1)
        trace = [
            {"backlog": 100 if i % 2 == 0 else 0, "new": 5} for i in range(20)
        ]
        decisions = run_trace(scaler, target, trace)
        assert [d for d in decisions if d.action == "scale_down"] == []
        ups = [d.tick for d in decisions if d.action == "scale_up"]
        assert all(b - a >= 2 for a, b in zip(ups, ups[1:]))  # cooldown held

    def test_scale_up_resets_the_down_cooldown(self):
        """A burst right after a quiet spell: the grow must push the next
        shrink out by the full down cooldown, not shrink on its heels."""
        policy = up_policy(
            up_cooldown_ticks=1, down_hysteresis_ticks=1, down_cooldown_ticks=3
        )
        scaler = Autoscaler(policy)
        target = FakeTarget(workers=2, backlog=0)
        scaler.watch("m/1", target)
        # Tick 1: moderate load — neither low (no shrink) nor high (no grow).
        run_trace(scaler, target, [{"backlog": 5, "new": 1}])
        (up,) = run_trace(scaler, target, [{"backlog": 100, "new": 9}])
        assert up.action == "scale_up"                     # tick 2: burst, 2→3
        decisions = run_trace(scaler, target, [{"backlog": 0, "new": 1}] * 3)
        downs = [d for d in decisions if d.action == "scale_down"]
        # Low from tick 3 on; hysteresis is satisfied immediately but the
        # shrink waits for down_cooldown_ticks *since the scale-up* → tick 5.
        assert [(d.tick, d.from_workers, d.to_workers) for d in downs] == [(5, 3, 2)]

    def test_slo_must_be_comfortable_before_shrinking(self):
        scaler = Autoscaler(up_policy(
            queue_wait_slo_ms=100.0, down_hysteresis_ticks=2, down_cooldown_ticks=1
        ))
        target = FakeTarget(workers=2, backlog=0, p95_ms=80.0)  # under SLO, over half
        scaler.watch("m/1", target)
        assert run_trace(scaler, target, [{"new": 1}] * 5) == []
        target.p95_ms = 20.0  # now comfortably under half the SLO
        decisions = run_trace(scaler, target, [{"new": 1}] * 2)
        assert [d.action for d in decisions] == ["scale_down"]


# ---------------------------------------------------------------------------
# Scale to zero
# ---------------------------------------------------------------------------
class TestScaleToZero:
    def make(self, idle_ticks: int = 2):
        parked: List[str] = []
        scaler = Autoscaler(
            up_policy(idle_ticks_to_zero=idle_ticks), on_park=parked.append
        )
        return scaler, parked

    def test_parks_after_consecutive_idle_ticks(self):
        scaler, parked = self.make(idle_ticks=2)
        target = FakeTarget(workers=1, backlog=0, submitted=7)
        scaler.watch("m/1", target)
        # Tick 1 only baselines the submitted counter; ticks 2-3 observe it
        # unchanged with an empty backlog → idle streak reaches 2 → park.
        assert run_trace(scaler, target, [{}] * 2) == []
        (park,) = scaler.tick()
        assert park.action == "park" and park.to_workers == 0
        assert parked == ["m/1"]
        assert scaler.watched() == []  # dropped from the table
        assert scaler.snapshot()["parks"] == 1

    def test_new_submissions_reset_the_idle_streak(self):
        scaler, parked = self.make(idle_ticks=2)
        target = FakeTarget(workers=1, backlog=0, submitted=0)
        scaler.watch("m/1", target)
        # Without the tick-3 activity the park would land on tick 3; the new
        # submission re-baselines the counter and buys two more idle ticks.
        decisions = run_trace(scaler, target, [{}, {}, {"new": 1}, {}])
        assert [d.action for d in decisions] == []
        assert parked == []
        scaler.tick()  # tick 5: the idle streak finally completes
        assert parked == ["m/1"]

    def test_backlog_blocks_parking_even_without_new_submissions(self):
        scaler, parked = self.make(idle_ticks=1)
        target = FakeTarget(workers=1, backlog=3, submitted=5)
        scaler.watch("m/1", target)
        run_trace(scaler, target, [{}] * 4)
        assert parked == []  # requests in flight are never parked away

    def test_revived_watch_is_audited(self):
        scaler, _ = self.make()
        scaler.watch("m/1", FakeTarget(), revived=True)
        snap = scaler.snapshot()
        assert snap["revivals"] == 1
        assert snap["decisions"][-1]["action"] == "revive"


# ---------------------------------------------------------------------------
# Determinism, watch table, bookkeeping
# ---------------------------------------------------------------------------
def diurnal_trace():
    """A compressed day: quiet → morning ramp → peak → evening fall → night."""
    return (
        [{"backlog": 0, "new": 1}] * 4
        + [{"backlog": 30, "new": 10}] * 6
        + [{"backlog": 120, "new": 40}] * 8
        + [{"backlog": 2, "new": 2}] * 10
        + [{"backlog": 0, "new": 0}] * 6
    )


class TestDeterminism:
    def run_diurnal(self):
        parked: List[str] = []
        scaler = Autoscaler(
            up_policy(
                up_cooldown_ticks=1, down_hysteresis_ticks=3,
                down_cooldown_ticks=2, idle_ticks_to_zero=3,
            ),
            on_park=parked.append,
        )
        target = FakeTarget(workers=1)
        scaler.watch("m/1", target)
        decisions = run_trace(scaler, target, diurnal_trace())
        return decisions, target.resizes, parked

    def test_diurnal_day_scales_up_down_and_parks(self):
        decisions, resizes, parked = self.run_diurnal()
        actions = [d.action for d in decisions]
        assert "scale_up" in actions and "scale_down" in actions
        assert max(resizes) == 4          # peak hits the ceiling
        assert parked == ["m/1"]          # the quiet night parks the model
        # The profile is monotone up then monotone down — no flapping.
        peak = resizes.index(max(resizes))
        assert resizes[: peak + 1] == sorted(resizes[: peak + 1])
        assert resizes[peak:] == sorted(resizes[peak:], reverse=True)

    def test_identical_traces_make_identical_decisions(self):
        first, first_resizes, _ = self.run_diurnal()
        second, second_resizes, _ = self.run_diurnal()
        assert first == second            # ScalerDecision is a frozen dataclass
        assert first_resizes == second_resizes


class TestWatchTable:
    def test_watch_unwatch(self):
        scaler = Autoscaler(up_policy())
        scaler.watch("a/1", FakeTarget())
        scaler.watch("b/2", FakeTarget())
        assert scaler.watched() == ["a/1", "b/2"]
        scaler.unwatch("a/1")
        assert scaler.watched() == ["b/2"]
        scaler.unwatch("missing")  # idempotent

    def test_target_raising_in_metrics_is_skipped(self):
        class Exploding(ScalableTarget):
            def metrics(self):
                raise RuntimeError("mid-teardown")

        scaler = Autoscaler(up_policy())
        scaler.watch("dying/1", Exploding())
        healthy = FakeTarget(workers=1, backlog=100)
        scaler.watch("healthy/1", healthy)
        decisions = scaler.tick()  # must not die on the bad sample
        assert [d.model for d in decisions] == ["healthy/1"]

    def test_decision_log_is_bounded(self):
        scaler = Autoscaler(up_policy(up_cooldown_ticks=1), decision_log=4)
        target = FakeTarget(workers=1)
        scaler.watch("m/1", target)
        trace = [{"backlog": 100 if i % 2 else 0, "new": 1} for i in range(40)]
        run_trace(scaler, target, trace)
        assert len(scaler.decisions()) <= 4

    def test_snapshot_shape(self):
        scaler = Autoscaler(up_policy())
        scaler.watch("m/1", FakeTarget())
        snap = scaler.snapshot()
        assert set(snap) == {
            "policy", "ticks", "watched", "parks", "revivals", "decisions",
        }
        assert snap["watched"] == ["m/1"]
        assert snap["policy"]["max_workers"] == 4


# ---------------------------------------------------------------------------
# SimClock: the production ticker under virtual time
# ---------------------------------------------------------------------------
class TestSimClock:
    def test_sleep_is_forbidden(self):
        with pytest.raises(SleepForbidden):
            SimClock().sleep(0.1)

    def test_timers_fire_in_order_and_cancel(self):
        clock = SimClock()
        fired: List[str] = []
        clock.timer(2.0, lambda: fired.append("b"))
        clock.timer(1.0, lambda: fired.append("a"))
        doomed = clock.timer(3.0, lambda: fired.append("never"))
        doomed.cancel()
        assert clock.advance(5.0) == 2
        assert fired == ["a", "b"]
        assert clock.now() == 5.0
        assert clock.pending() == 0

    def test_ticker_fires_once_per_interval(self):
        clock = SimClock()
        ticks: List[float] = []
        ticker = Ticker(1.0, lambda: ticks.append(clock.now()), clock=clock).start()
        assert clock.advance(0.5) == 0
        clock.advance(0.5)
        assert ticks == [1.0]
        clock.advance(3.0)  # three whole intervals in one jump
        assert ticks == [1.0, 2.0, 3.0, 4.0]
        ticker.stop()
        clock.advance(10.0)
        assert len(ticks) == 4  # stopped: no further firings

    def test_ticker_outlives_a_raising_callback(self):
        clock = SimClock()
        calls: List[int] = []

        def flaky():
            calls.append(len(calls))
            if len(calls) == 1:
                raise RuntimeError("one bad tick")

        Ticker(1.0, flaky, clock=clock).start()
        clock.advance(3.0)
        assert calls == [0, 1, 2]  # kept ticking through the exception

    def test_autoscaler_runs_on_virtual_time(self):
        clock = SimClock()
        scaler = Autoscaler(
            up_policy(tick_interval_s=0.5, up_cooldown_ticks=1), clock=clock
        ).start()
        target = FakeTarget(workers=1, backlog=100)
        scaler.watch("m/1", target)
        clock.advance(0.5)
        assert target.workers == 2
        clock.advance(1.0)  # two more ticks, one scale-up each
        assert target.workers == 4
        assert [d.action for d in scaler.decisions()] == ["scale_up"] * 3
        scaler.close()
        clock.advance(10.0)
        assert scaler.tick_count == 3  # closed: virtual time no longer ticks it


# ---------------------------------------------------------------------------
# Server integration: real pipelines, virtual control-plane time
# ---------------------------------------------------------------------------
def sim_server(repo, *, autoscale: AutoscalePolicy, policy: BatchPolicy,
               admission: Optional[AdmissionPolicy] = None, **kwargs):
    clock = SimClock()
    server = InferenceServer(
        repo, policy=policy, workers=1, autoscale=autoscale,
        admission=admission, clock=clock, **kwargs
    )
    return server, clock


class TestServerAutoscaling:
    def test_scales_up_under_a_real_backlog(self, repo, served):
        server, clock = sim_server(
            repo,
            autoscale=AutoscalePolicy(
                min_workers=1, max_workers=4, tick_interval_s=1.0,
                backlog_high_per_worker=4.0, up_cooldown_ticks=1,
            ),
            # A wide window holds submissions in the forming batch, so the
            # backlog is fully test-controlled; the 8th submission flushes it.
            policy=BatchPolicy(max_batch_size=8, max_delay_ms=60_000),
        )
        with server:
            futures = [
                server.predict_async("resnet_s", served.batch[i]) for i in range(7)
            ]
            assert server.snapshot()["resnet_s/1"]["queue"]["backlog"] == 7
            clock.advance(1.0)  # one control tick: 7 > 4.0/worker → grow
            snap = server.snapshot()["resnet_s/1"]
            assert snap["workers"] == 2
            decisions = server.autoscaler.decisions()
            assert decisions[0].action == "scale_up"
            assert (decisions[0].from_workers, decisions[0].to_workers) == (1, 2)
            futures.append(server.predict_async("resnet_s", served.batch[7]))
            outs = np.stack([f.result(timeout=120.0) for f in futures])
            np.testing.assert_allclose(
                outs, served.expected[:8], rtol=1e-9, atol=1e-12
            )
            control = server.control_plane()
            assert control["autoscaler"]["decisions"][0]["action"] == "scale_up"

    def test_scale_to_zero_revives_with_identical_predictions(self, repo, served):
        server, clock = sim_server(
            repo,
            autoscale=AutoscalePolicy(
                min_workers=1, max_workers=2, tick_interval_s=1.0,
                idle_ticks_to_zero=2,
            ),
            policy=BatchPolicy(max_batch_size=1, max_delay_ms=0.0),
        )
        with server:
            before = server.predict("resnet_s", served.batch[0], timeout=120.0)
            assert server.serving() == [("resnet_s", 1)]
            loads_before_park = repo.loads
            clock.advance(3.0)  # baseline tick + two idle ticks → park
            assert server.serving() == []
            scaler_snap = server.autoscaler.snapshot()
            assert scaler_snap["parks"] == 1
            assert scaler_snap["watched"] == []
            # Revival: the next request rebuilds the pipeline from the
            # repository's still-warm cache — no artifact re-read, the same
            # program object, bitwise-identical predictions.
            after = server.predict("resnet_s", served.batch[0], timeout=120.0)
            np.testing.assert_array_equal(before, after)
            assert repo.loads == loads_before_park  # cache hit, not a reload
            assert server.serving() == [("resnet_s", 1)]
            snap = server.autoscaler.snapshot()
            assert snap["revivals"] == 1
            assert snap["decisions"][-1]["action"] == "revive"

    def test_park_and_revive_cycles_are_stable(self, repo, served):
        server, clock = sim_server(
            repo,
            autoscale=AutoscalePolicy(
                min_workers=1, max_workers=2, tick_interval_s=1.0,
                idle_ticks_to_zero=2,
            ),
            policy=BatchPolicy(max_batch_size=1, max_delay_ms=0.0),
        )
        with server:
            outputs = []
            for cycle in range(3):
                outputs.append(server.predict("resnet_s", served.batch[1], timeout=120.0))
                clock.advance(3.0)
                assert server.serving() == [] , f"cycle {cycle} did not park"
            assert server.autoscaler.snapshot()["parks"] == 3
            for out in outputs[1:]:
                np.testing.assert_array_equal(outputs[0], out)

    def test_healthz_is_judged_on_the_post_scale_bound(self, repo, served):
        """Satellite (f): after a scale-up the admission bound grows with the
        pool, and /healthz saturation is judged against the *current* bound —
        a backlog that would have saturated the startup bound reports ok."""
        server, clock = sim_server(
            repo,
            autoscale=AutoscalePolicy(
                min_workers=1, max_workers=4, tick_interval_s=1.0,
                backlog_high_per_worker=4.0, up_cooldown_ticks=1,
            ),
            policy=BatchPolicy(max_batch_size=64, max_delay_ms=60_000),
            admission=AdmissionPolicy(max_queue_depth=10),
        )
        with server:
            for i in range(8):
                server.predict_async("resnet_s", served.batch[i % len(served.batch)])
            clock.advance(1.0)  # backlog 8 > 4/worker → 1 → 2 workers
            snap = server.snapshot()["resnet_s/1"]
            assert snap["workers"] == 2
            assert snap["queue"]["capacity"] == 20  # 10 × (2 workers / 1 base)
            # Push the backlog past the *old* bound (10) but well under the
            # scaled one; admission must accept and health must stay ok.
            for i in range(4):
                server.predict_async("resnet_s", served.batch[i % len(served.batch)])
            health = server.health()
            assert health["status"] == "ok"
            model = health["models"]["resnet_s/1"]
            assert model["queue_depth"] == 12   # would saturate the old bound
            assert model["queue_capacity"] == 20
            assert server.snapshot()["resnet_s/1"]["resilience"]["shed_total"] == 0
        # close(drain=False) settles the parked-in-window futures.


class TestTickerReentrancy:
    def test_stop_from_inside_the_callback_is_safe(self):
        clock = SimClock()
        fired: List[int] = []
        holder: List[Ticker] = []

        def fn():
            fired.append(1)
            holder[0].stop()

        holder.append(Ticker(1.0, fn, clock=clock).start())
        clock.advance(5.0)
        assert fired == [1]  # stopped itself after the first tick

    def test_concurrent_start_is_idempotent(self):
        clock = SimClock()
        count = [0]
        ticker = Ticker(1.0, lambda: count.__setitem__(0, count[0] + 1), clock=clock)
        threads = [threading.Thread(target=ticker.start) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        clock.advance(1.0)
        assert count[0] == 1  # one armed timer, not four
        ticker.stop()
