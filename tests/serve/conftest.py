"""Shared fixtures for the serving tests.

One small compressed model is calibrated and compiled once per session; every
test builds its own throwaway :class:`ModelRepository` from the saved artifact
(an artifact copy is cheap, and repositories are mutated by publish/hot-swap
tests, so sharing one would couple test order).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Tuple

import numpy as np
import pytest

from repro.core import (
    BitSerialInferenceEngine,
    CompressionPolicy,
    EngineConfig,
    NetworkProgram,
    compress_model,
    save_program,
)
from repro.models import create_model
from repro.nn import DataLoader
from repro.nn.data.dataset import ArrayDataset
from repro.serve import ModelRepository


@dataclass
class ServedModel:
    """The session's compiled model: engine, programs, artifact, test data."""

    engine: BitSerialInferenceEngine
    program: NetworkProgram  # optimized
    program_unoptimized: NetworkProgram
    artifact: Path  # save_program(program)
    batch: np.ndarray  # (N, 3, 32, 32) held-out samples
    expected: np.ndarray  # engine.predict(batch)

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return tuple(self.program.input_shape)


@pytest.fixture(scope="session")
def served(tmp_path_factory) -> ServedModel:
    model = create_model("resnet_s_tiny", num_classes=10, in_channels=3, rng=0)
    result = compress_model(
        model, (3, 32, 32), pool_size=16,
        policy=CompressionPolicy(group_size=8), seed=0,
    )
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(32, 3, 32, 32))
    targets = rng.integers(0, 10, size=32)
    loader = DataLoader(ArrayDataset(inputs, targets), batch_size=16)
    engine = BitSerialInferenceEngine(
        result.model, result.pool, EngineConfig(lut_bitwidth=8, calibration_batches=2)
    )
    engine.calibrate(loader)
    program = engine.compile(optimize=True)
    artifact = tmp_path_factory.mktemp("artifact") / "resnet_s.npz"
    save_program(program, artifact)
    batch = rng.normal(size=(12, 3, 32, 32))
    return ServedModel(
        engine=engine,
        program=program,
        program_unoptimized=engine.compile(optimize=False),
        artifact=artifact,
        batch=batch,
        expected=engine.predict(batch),
    )


@pytest.fixture()
def repo(tmp_path, served) -> ModelRepository:
    """A fresh repository with the session model published as resnet_s v1."""
    repository = ModelRepository(tmp_path / "repo", capacity=4)
    repository.publish_artifact(served.artifact, "resnet_s")
    return repository


# ---------------------------------------------------------------------------
# Sleep lint: the simulation suites must stay wall-clock free
# ---------------------------------------------------------------------------
# Files written before the sim-clock harness existed; they poll real worker
# processes / breaker reset windows and may keep their sleeps.  Everything
# newer drives time through tests/serve/simclock.py — a ``time.sleep`` there
# silently re-couples virtual and wall time, so this lint fails the suite
# the moment one appears.  Do NOT add files to this list; port them.
_SLEEP_ALLOWED = {"test_faults.py", "test_server.py", "test_batcher.py"}


@pytest.fixture(scope="session", autouse=True)
def _no_wall_clock_sleeps_in_sim_tests():
    """Fail the serve suite if a sim-clock test file grows a real sleep."""
    here = Path(__file__).parent
    offenders = []
    for path in sorted(here.glob("test_*.py")) + [here / "simclock.py"]:
        if path.name in _SLEEP_ALLOWED:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            code = line.split("#", 1)[0]
            if "time.sleep" in code or "from time import sleep" in code:
                offenders.append(f"{path.name}:{lineno}: {line.strip()}")
    assert not offenders, (
        "wall-clock sleeps in simulation-clock test files (drive time with "
        "SimClock.advance() instead):\n" + "\n".join(offenders)
    )
