"""Tests for the on-disk model repository (layout, LRU, hot-swap)."""

import json

import numpy as np
import pytest

from repro.core import load_program
from repro.serve import ModelNotFound, ModelRepository
from repro.serve.repository import ARTIFACT_NAME, METADATA_NAME


class TestLayoutAndPublish:
    def test_publish_creates_versioned_layout(self, repo, served):
        version = repo.publish(served.program, "resnet_s")  # second version
        assert version == 2
        assert repo.list_models() == {"resnet_s": [1, 2]}
        leaf = repo.root / "resnet_s" / "2"
        assert (leaf / ARTIFACT_NAME).exists()
        assert (leaf / METADATA_NAME).exists()

    def test_metadata_sidecar_matches_program(self, repo, served):
        meta = repo.metadata("resnet_s")
        assert meta["name"] == "resnet_s"
        assert meta["version"] == 1
        assert tuple(meta["input_shape"]) == served.input_shape
        assert meta["op_counts"] == served.program.metadata()["op_counts"]
        # The sidecar is valid standalone JSON (no numpy types leaked in).
        raw = (repo.root / "resnet_s" / "1" / METADATA_NAME).read_text()
        assert json.loads(raw)["num_ops"] == len(served.program.ops)

    def test_versions_are_immutable(self, repo, served):
        with pytest.raises(FileExistsError):
            repo.publish(served.program, "resnet_s", version=1)
        with pytest.raises(FileExistsError):
            repo.publish_artifact(served.artifact, "resnet_s", version=1)

    def test_invalid_names_rejected(self, repo):
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                repo.versions(bad)

    def test_unknown_model_and_version_raise_model_not_found(self, repo):
        with pytest.raises(ModelNotFound):
            repo.resolve("nope")
        with pytest.raises(ModelNotFound):
            repo.resolve("resnet_s", version=9)


class TestResolveAndLoad:
    def test_resolve_defaults_to_latest(self, repo, served):
        repo.publish(served.program_unoptimized, "resnet_s")
        name, version, path = repo.resolve("resnet_s")
        assert (name, version) == ("resnet_s", 2)
        assert path == repo.root / "resnet_s" / "2" / ARTIFACT_NAME
        assert repo.metadata("resnet_s")["optimized"] is False  # v2 wins
        assert repo.metadata("resnet_s", version=1)["optimized"] is True

    def test_loaded_program_executes_identically(self, repo, served):
        from repro.core import Executor

        loaded = repo.get("resnet_s")
        assert loaded.key == ("resnet_s", 1)
        out = Executor(loaded.program, backend="plan").run(served.batch)
        np.testing.assert_allclose(out, served.expected, rtol=1e-9, atol=1e-12)

    def test_get_caches_and_counts_loads(self, repo):
        first = repo.get("resnet_s")
        second = repo.get("resnet_s")
        assert first is second
        assert repo.loads == 1


class TestLRUEviction:
    def test_capacity_bounds_cache(self, tmp_path, served):
        repo = ModelRepository(tmp_path / "repo", capacity=2)
        for name in ("a", "b", "c"):
            repo.publish_artifact(served.artifact, name)
        repo.get("a")
        repo.get("b")
        repo.get("c")  # evicts a
        assert repo.cached == [("b", 1), ("c", 1)]
        assert repo.evictions == 1
        repo.get("b")  # refreshes b's recency
        repo.get("a")  # reload; evicts c
        assert repo.cached == [("b", 1), ("a", 1)]
        assert repo.loads == 4

    def test_evicted_loaded_model_keeps_working(self, tmp_path, served):
        """Eviction drops the cache entry, not programs held by callers."""
        from repro.core import Executor

        repo = ModelRepository(tmp_path / "repo", capacity=1)
        repo.publish_artifact(served.artifact, "a")
        repo.publish_artifact(served.artifact, "b")
        held = repo.get("a")
        repo.get("b")  # evicts a from the cache
        assert repo.cached == [("b", 1)]
        out = Executor(held.program, backend="plan").run(served.batch[:2])
        np.testing.assert_allclose(out, served.expected[:2], rtol=1e-9, atol=1e-12)

    def test_manual_evict(self, repo):
        repo.get("resnet_s")
        assert repo.evict("resnet_s") == 1
        assert repo.cached == []
        assert repo.evict("resnet_s") == 0


class TestArtifactValidation:
    def test_publish_artifact_rejects_non_program_files(self, tmp_path, repo):
        from repro.core import ProgramFormatError

        junk = tmp_path / "junk.npz"
        np.savez(junk, values=np.zeros(3))
        with pytest.raises(ProgramFormatError, match="junk.npz"):
            repo.publish_artifact(junk, "junk")
        assert "junk" not in repo.list_models()

    def test_published_artifact_roundtrips_via_load_program(self, repo, served):
        program = load_program(repo.artifact_path("resnet_s"))
        assert program.kinds() == served.program.kinds()
