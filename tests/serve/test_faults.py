"""Chaos suite: deterministic fault injection through the serving stack.

The :mod:`repro.serve.faults` harness schedules worker crashes, slowdowns,
queue stalls, and corrupt artifact reads on exact (worker, spawn, batch)
coordinates, so every test here replays identically: retries recover within
their backoff budget, breakers walk closed → open → half_open → closed on
cue, shutdown under load settles every future, and recovered pipelines
produce predictions identical to the never-injected path.
"""

import pickle
import time

import numpy as np
import pytest

from repro.serve import (
    AdmissionPolicy,
    BatchPolicy,
    BreakerPolicy,
    CircuitOpen,
    DeadlineExceeded,
    FaultPlan,
    FaultSpec,
    InferenceServer,
    NoLiveWorkers,
    ProcessWorkerPool,
    RetryPolicy,
    ServerClosed,
    ThreadWorkerPool,
    WorkerCrashed,
)
from repro.serve.stats import ServerStats

# Retry with no backoff sleeps: chaos tests exercise the retry *logic*, the
# wall-clock backoff is covered by the dispatcher unit tests.
FAST_RETRY = RetryPolicy(max_retries=2, backoff_base_s=0.0, jitter=0.0, seed=0)


# ---------------------------------------------------------------------------
# The harness itself
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("explode")
        with pytest.raises(ValueError):
            FaultSpec("slow", delay_ms=-1.0)
        with pytest.raises(ValueError):
            FaultSpec("crash", nth_batch=0)
        with pytest.raises(ValueError):
            FaultSpec("crash", times=0)
        with pytest.raises(ValueError):
            FaultSpec("crash", probability=2.0)

    def test_crash_fires_on_exact_batch_and_worker(self):
        plan = FaultPlan.crash_on_batch(3, worker=1)
        wrong_worker = plan.session(worker=0)
        assert not any(wrong_worker.on_batch() for _ in range(5))
        session = plan.session(worker=1)
        fired = [bool(session.on_batch()) for _ in range(5)]
        assert fired == [False, False, True, False, False]

    def test_spawn_zero_targets_only_the_first_incarnation(self):
        plan = FaultPlan.crash_on_batch(1, worker=0, spawn=0)
        assert plan.session(worker=0, spawn=0).on_batch()
        assert not plan.session(worker=0, spawn=1).on_batch()
        poison = FaultPlan.crash_on_batch(1, worker=0, spawn=None)
        assert poison.session(worker=0, spawn=4).on_batch()

    def test_times_budget_limits_triggers(self):
        plan = FaultPlan.slow_worker(1.0, times=2)
        session = plan.session()
        fired = [bool(session.on_batch()) for _ in range(4)]
        assert fired == [True, True, False, False]

    def test_probability_draws_are_seeded_and_replayable(self):
        plan = FaultPlan((FaultSpec("slow", times=None, probability=0.5),), seed=42)

        def pattern(worker):
            session = plan.session(worker=worker)
            return [bool(session.on_batch()) for _ in range(32)]

        assert pattern(0) == pattern(0)  # same coordinates: same coin flips
        assert pattern(0) != pattern(1)  # each worker gets its own stream
        assert any(pattern(0)) and not all(pattern(0))

    def test_plans_compose_and_order_sleeps_before_the_crash(self):
        plan = FaultPlan.slow_worker(5.0, times=1) + FaultPlan.crash_on_batch(1)
        fired = plan.session().on_batch()
        assert [spec.kind for spec in fired] == ["slow", "crash"]

    def test_plan_survives_pickling(self):
        plan = FaultPlan.crash_on_batch(2, worker=1) + FaultPlan.corrupt_artifact()
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.session(worker=1).on_batch() == []

    def test_artifact_fault_is_separate_from_batch_faults(self):
        plan = FaultPlan.corrupt_artifact(worker=0) + FaultPlan.crash_on_batch(1)
        session = plan.session(worker=0)
        assert session.on_artifact_load().kind == "corrupt_artifact"
        assert session.on_artifact_load() is None  # budget of 1 spent
        assert [s.kind for s in session.on_batch()] == ["crash"]


# ---------------------------------------------------------------------------
# Thread-pool chaos through the full server
# ---------------------------------------------------------------------------
class TestThreadPoolChaos:
    def test_injected_crash_is_retried_and_the_answer_is_unchanged(self, repo, served):
        server = InferenceServer(
            repo, retry=FAST_RETRY,
            fault_plan=FaultPlan.crash_on_batch(1, worker=0),
        )
        try:
            out = server.predict("resnet_s", served.batch[0], timeout=120.0)
            np.testing.assert_allclose(out, served.expected[0], rtol=1e-9, atol=1e-12)
            snap = server.stats("resnet_s")["resilience"]
            assert snap["retries"] >= 1
        finally:
            server.close()

    def test_crash_without_retry_surfaces_worker_crashed(self, repo, served):
        server = InferenceServer(
            repo, retry=None, breaker=None,
            fault_plan=FaultPlan.crash_on_batch(1, worker=0),
        )
        try:
            with pytest.raises(WorkerCrashed):
                server.predict("resnet_s", served.batch[0], timeout=120.0)
        finally:
            server.close()

    def test_repeated_crashes_open_the_breaker_then_a_probe_closes_it(
        self, repo, served
    ):
        # The first two batches crash (exhausting the retry budget and the
        # breaker's failure threshold); the third — the half-open probe
        # after the reset timeout — succeeds and closes the breaker.
        server = InferenceServer(
            repo,
            retry=RetryPolicy(max_retries=1, backoff_base_s=0.0, jitter=0.0),
            breaker=BreakerPolicy(failure_threshold=2, reset_timeout_s=1.0),
            fault_plan=FaultPlan((FaultSpec("crash", worker=0, times=2),)),
        )
        try:
            with pytest.raises(WorkerCrashed):
                server.predict("resnet_s", served.batch[0], timeout=120.0)
            # Hard-open: admission sheds before anything queues.
            with pytest.raises(CircuitOpen):
                server.predict("resnet_s", served.batch[0], timeout=120.0)
            health = server.health()
            assert health["status"] == "degraded"
            assert health["models"]["resnet_s/1"]["reasons"] == ["breaker_open"]
            # Recovery: the reset timeout elapses, the probe batch runs clean.
            deadline = time.perf_counter() + 30.0
            out = None
            while time.perf_counter() < deadline:
                try:
                    out = server.predict("resnet_s", served.batch[0], timeout=120.0)
                    break
                except CircuitOpen:
                    time.sleep(0.1)
            assert out is not None, "breaker never admitted the probe"
            np.testing.assert_allclose(out, served.expected[0], rtol=1e-9, atol=1e-12)
            assert server.health()["status"] == "ok"
            transitions = server.stats("resnet_s")["resilience"]["breaker_transitions"]
            assert transitions.get("closed->open") == 1
            assert transitions.get("open->half_open") == 1
            assert transitions.get("half_open->closed") == 1
        finally:
            server.close()

    def test_slow_worker_trips_the_request_deadline(self, repo, served):
        server = InferenceServer(
            repo, retry=None, breaker=None,
            fault_plan=FaultPlan.slow_worker(500.0, times=None),
        )
        try:
            start = time.perf_counter()
            with pytest.raises(DeadlineExceeded):
                server.predict("resnet_s", served.batch[0], timeout_ms=100.0)
            # Failed at the deadline, not after the injected slowdown.
            assert time.perf_counter() - start < 0.5
        finally:
            server.close()

    def test_queue_stall_delays_but_does_not_fail(self, repo, served):
        server = InferenceServer(
            repo, fault_plan=FaultPlan.queue_stall(150.0, worker=0)
        )
        try:
            start = time.perf_counter()
            out = server.predict("resnet_s", served.batch[0], timeout=120.0)
            assert time.perf_counter() - start >= 0.15
            np.testing.assert_allclose(out, served.expected[0], rtol=1e-9, atol=1e-12)
        finally:
            server.close()

    def test_close_under_load_fails_queued_requests_with_server_closed(
        self, repo, served
    ):
        # A wide-open batching window holds submissions in the collector;
        # close() must settle every one of them with ServerClosed — fast,
        # deterministically, and before pool teardown — never hang a future.
        server = InferenceServer(
            repo, policy=BatchPolicy(max_batch_size=64, max_delay_ms=60_000.0)
        )
        try:
            futures = [
                server.predict_async("resnet_s", served.batch[i % len(served.batch)])
                for i in range(6)
            ]
            start = time.perf_counter()
            server.close()
            for future in futures:
                with pytest.raises(ServerClosed):
                    future.result(timeout=10.0)
            assert time.perf_counter() - start < 10.0
            assert server.health()["status"] == "closed"
            with pytest.raises(RuntimeError):
                server.predict("resnet_s", served.batch[0])
        finally:
            server.close()

    def test_close_with_drain_still_serves_the_backlog(self, repo, served):
        server = InferenceServer(
            repo, policy=BatchPolicy(max_batch_size=64, max_delay_ms=60_000.0)
        )
        futures = [server.predict_async("resnet_s", served.batch[i]) for i in range(3)]
        server.close(drain=True)
        for i, future in enumerate(futures):
            np.testing.assert_allclose(
                future.result(timeout=120.0), served.expected[i],
                rtol=1e-9, atol=1e-12,
            )


# ---------------------------------------------------------------------------
# Process-pool chaos: real worker deaths
# ---------------------------------------------------------------------------
class TestProcessPoolChaos:
    def test_injected_crash_retries_to_the_surviving_worker(self, repo, served):
        server = InferenceServer(
            repo, worker_mode="process", workers=2, retry=FAST_RETRY,
            fault_plan=FaultPlan.crash_on_batch(1, worker=0),
        )
        try:
            # Worker 0 hard-exits (os._exit) holding the first batch; the
            # resilient dispatcher re-submits to worker 1, so the caller
            # sees only the correct answer.
            out = server.predict("resnet_s", served.batch[0], timeout=120.0)
            np.testing.assert_allclose(out, served.expected[0], rtol=1e-9, atol=1e-12)
            assert server.stats("resnet_s")["resilience"]["retries"] >= 1
        finally:
            server.close()

    def test_concurrent_crashes_respawn_both_slots(self, served):
        # Both workers die in the same window (each crashes its own first
        # batch).  Each slot's respawn is owned by exactly one thread
        # (_respawning), both in-flight futures fail — never hang — and the
        # pool recovers to two live, healthy spawn-1 incarnations.
        plan = FaultPlan.crash_on_batch(1, worker=0) + FaultPlan.crash_on_batch(
            1, worker=1
        )
        pool = ProcessWorkerPool(served.artifact, num_workers=2, fault_plan=plan)
        try:
            old_pids = pool.worker_pids()
            assert len(old_pids) == 2
            first = pool.submit(served.batch[:1])   # lands on worker 0
            second = pool.submit(served.batch[:1])  # worker 0 busy → worker 1
            for future in (first, second):
                with pytest.raises(WorkerCrashed):
                    future.result(timeout=120.0)
            deadline = time.perf_counter() + 120.0
            out = None
            while time.perf_counter() < deadline:
                try:
                    out = pool.submit(served.batch[:2]).result(timeout=120.0)
                    break
                except (WorkerCrashed, NoLiveWorkers):
                    time.sleep(0.1)
            assert out is not None, "pool never recovered from the double crash"
            np.testing.assert_allclose(
                out, served.expected[:2], rtol=1e-9, atol=1e-12
            )
            deadline = time.perf_counter() + 60.0
            while time.perf_counter() < deadline and len(pool.worker_pids()) < 2:
                time.sleep(0.1)
            new_pids = pool.worker_pids()
            assert len(new_pids) == 2
            assert not set(new_pids) & set(old_pids)
        finally:
            pool.close()

    def test_corrupt_artifact_hits_the_start_failure_cap(self, served):
        # Every incarnation's artifact read fails, so respawn gives up after
        # the cap instead of spawn-looping forever; submits then report
        # NoLiveWorkers (a retriable pool state, not a hang).
        plan = FaultPlan.corrupt_artifact(worker=0, spawn=None)
        pool = ProcessWorkerPool(served.artifact, num_workers=1, fault_plan=plan)
        try:
            deadline = time.perf_counter() + 120.0
            while (
                time.perf_counter() < deadline
                and pool._start_failures < pool._MAX_START_FAILURES
            ):
                time.sleep(0.1)
            assert pool._start_failures >= pool._MAX_START_FAILURES
            assert "injected corrupt artifact" in (pool._last_death or "")
            # The respawn loop has given up; the pool reports the retriable
            # NoLiveWorkers (no hang, no further process spawning).
            deadline = time.perf_counter() + 60.0
            saw_no_live = False
            while time.perf_counter() < deadline:
                try:
                    pool.submit(served.batch[:1]).result(timeout=120.0)
                except NoLiveWorkers:
                    saw_no_live = True
                    break
                except WorkerCrashed:
                    time.sleep(0.1)  # death noticed per-batch; keep probing
            assert saw_no_live
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# Server-wide readiness rollup
# ---------------------------------------------------------------------------
class TestServerStatsRollup:
    def _snapshot(self, breaker="closed", depth=0, capacity=100, **counters):
        return {
            "requests": {"submitted": 10, "completed": 8, "failed": 2},
            "queue": {"depth": depth, "capacity": capacity},
            "resilience": {
                "shed_total": counters.get("shed_total", 0),
                "deadline_expired": counters.get("deadline_expired", 0),
                "retries": counters.get("retries", 0),
                "breaker_transitions": counters.get("breaker_transitions", {}),
                "breaker": {"state": breaker},
            },
        }

    def test_all_healthy_rolls_up_ok(self):
        rollup = ServerStats().rollup({"m/1": self._snapshot(retries=3)})
        assert rollup["status"] == "ok"
        assert rollup["degraded"] == []
        assert rollup["models"]["m/1"]["ready"] is True
        assert rollup["totals"]["submitted"] == 10
        assert rollup["totals"]["retries"] == 3

    def test_open_breaker_degrades(self):
        rollup = ServerStats().rollup(
            {"a/1": self._snapshot(), "b/2": self._snapshot(breaker="open")}
        )
        assert rollup["status"] == "degraded"
        assert rollup["degraded"] == ["b/2"]
        assert rollup["models"]["b/2"]["reasons"] == ["breaker_open"]
        assert rollup["models"]["a/1"]["ready"] is True

    def test_saturated_queue_degrades(self):
        rollup = ServerStats(saturation_threshold=0.9).rollup(
            {"m/1": self._snapshot(depth=95, capacity=100)}
        )
        assert rollup["status"] == "degraded"
        assert rollup["models"]["m/1"]["reasons"] == ["queue_saturated"]

    def test_totals_sum_across_models(self):
        rollup = ServerStats().rollup(
            {
                "a/1": self._snapshot(
                    shed_total=5, breaker_transitions={"closed->open": 1}
                ),
                "b/1": self._snapshot(deadline_expired=2),
            }
        )
        totals = rollup["totals"]
        assert totals["shed_total"] == 5
        assert totals["deadline_expired"] == 2
        assert totals["breaker_transitions"] == 1
        assert totals["submitted"] == 20


# ---------------------------------------------------------------------------
# Crashes injected mid-resize (the autoscaler's transition window)
# ---------------------------------------------------------------------------
class _PlusOne:
    def run(self, batch):
        return batch + 1.0


class TestScaleChaos:
    """``FaultPlan.crash_during_scale``: a worker dies exactly while the
    pool is resizing — the window the autoscaler opens on every decision.
    Thread pools simulate the death as a failed batch; process pools
    hard-terminate the victim and must respawn it."""

    def test_thread_pool_crash_during_grow_fails_one_batch_then_recovers(self):
        pool = ThreadWorkerPool(
            _PlusOne, num_workers=1,
            fault_plan=FaultPlan.crash_during_scale(nth_resize=1),
        )
        try:
            np.testing.assert_array_equal(
                pool.submit(np.zeros(2)).result(timeout=30.0), np.ones(2)
            )
            assert pool.resize(2) == 2  # arms exactly one mid-scale crash
            with pytest.raises(WorkerCrashed, match="during resize"):
                pool.submit(np.zeros(2)).result(timeout=30.0)
            # The times=1 budget is spent: the grown pool is healthy.
            np.testing.assert_array_equal(
                pool.submit(np.zeros(2)).result(timeout=30.0), np.ones(2)
            )
            # A later shrink is not the nth_resize=1 transition: no crash.
            assert pool.resize(1) == 1
            np.testing.assert_array_equal(
                pool.submit(np.zeros(2)).result(timeout=30.0), np.ones(2)
            )
        finally:
            pool.close()

    def test_thread_pool_resize_crash_is_absorbed_by_the_retry_layer(self):
        from repro.serve import ResilientDispatcher

        pool = ThreadWorkerPool(
            _PlusOne, num_workers=1,
            fault_plan=FaultPlan.crash_during_scale(nth_resize=1),
        )
        dispatch = ResilientDispatcher(pool.submit, FAST_RETRY)
        try:
            pool.resize(2)
            # The injected mid-scale crash fails the first attempt; the
            # dispatcher re-submits and the caller sees only the answer —
            # what a server-side autoscale decision looks like to clients.
            np.testing.assert_array_equal(
                dispatch(np.zeros(2)).result(timeout=30.0), np.ones(2)
            )
        finally:
            pool.close()

    def test_process_pool_victim_terminated_mid_grow_is_respawned(self, served):
        pool = ProcessWorkerPool(
            served.artifact, num_workers=2,
            fault_plan=FaultPlan.crash_during_scale(worker=0, nth_resize=1),
        )
        try:
            old_pids = pool.worker_pids()
            assert len(old_pids) == 2
            # Growing 2 → 3 terminates worker 0's process mid-transition (a
            # real SIGTERM, not a simulated error).  The grow itself must
            # still complete, and the crash detector respawns slot 0.
            pool.resize(3)
            # The victim's death is detected asynchronously (its reader
            # thread sees the pipe close), so wait for the replacement —
            # not just the grown slot — before judging the roster.
            deadline = time.perf_counter() + 120.0
            while time.perf_counter() < deadline:
                pids = pool.worker_pids()
                if len(pids) == 3 and old_pids[0] not in pids:
                    break
                time.sleep(0.1)
            new_pids = pool.worker_pids()
            assert len(new_pids) == 3, f"pool never re-filled: {new_pids}"
            assert old_pids[0] not in new_pids  # the victim really died
            assert old_pids[1] in new_pids      # the survivor was untouched
            out = None
            deadline = time.perf_counter() + 120.0
            while time.perf_counter() < deadline:
                try:
                    out = pool.submit(served.batch[:2]).result(timeout=120.0)
                    break
                except (WorkerCrashed, NoLiveWorkers):
                    time.sleep(0.1)
            assert out is not None, "pool never served after the respawn"
            np.testing.assert_allclose(
                out, served.expected[:2], rtol=1e-9, atol=1e-12
            )
        finally:
            pool.close()

    def test_process_pool_crash_during_shrink_never_respawns_the_retiree(
        self, served
    ):
        pool = ProcessWorkerPool(
            served.artifact, num_workers=3,
            fault_plan=FaultPlan.crash_during_scale(worker=1, nth_resize=1),
        )
        try:
            old_pids = pool.worker_pids()
            assert len(old_pids) == 3
            # Shrinking 3 → 2 retires the tail slot gracefully *and* kills
            # worker 1 mid-transition.  Slot 2 must stay retired (resize's
            # shrink, not a death) while slot 1 respawns.
            pool.resize(2)
            deadline = time.perf_counter() + 120.0
            while time.perf_counter() < deadline:
                pids = pool.worker_pids()
                if len(pids) == 2 and old_pids[1] not in pids:
                    break
                time.sleep(0.1)
            pids = pool.worker_pids()
            assert len(pids) == 2, f"expected 2 live workers, got {pids}"
            assert old_pids[0] in pids       # untouched survivor
            assert old_pids[1] not in pids   # the victim was replaced
            assert old_pids[2] not in pids   # the retiree stayed retired
            out = None
            deadline = time.perf_counter() + 120.0
            while time.perf_counter() < deadline:
                try:
                    out = pool.submit(served.batch[:1]).result(timeout=120.0)
                    break
                except (WorkerCrashed, NoLiveWorkers):
                    time.sleep(0.1)
            assert out is not None, "pool never served after the shrink"
            np.testing.assert_allclose(
                out, served.expected[:1], rtol=1e-9, atol=1e-12
            )
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# Shared-memory hygiene: crash/respawn churn must never leak ring segments
# ---------------------------------------------------------------------------
class TestShmRingHygiene:
    """Every ring a pool ever created must be unlinked by pool.close().

    The regression this guards: a worker dying *between* ring teardown and
    respawn used to leave its segments registered in /dev/shm forever.  The
    rings now register in a process-wide set (`_ShmRing.live_segments()`),
    `stop()` unlinks in a `finally`, and `close()` sweeps stragglers — so
    after any amount of chaos the live set returns to its baseline.
    """

    def test_clean_lifecycle_leaves_no_segments(self, served):
        from repro.serve.workers import _ShmRing

        baseline = _ShmRing.live_segments()
        pool = ProcessWorkerPool(served.artifact, num_workers=2)
        try:
            assert len(_ShmRing.live_segments()) == len(baseline) + 4  # 2 rings/worker
            out = pool.submit(served.batch[:2]).result(timeout=120.0)
            np.testing.assert_allclose(out, served.expected[:2], rtol=1e-9, atol=1e-12)
        finally:
            pool.close()
        assert _ShmRing.live_segments() == baseline

    def test_crash_respawn_churn_leaves_no_segments(self, served):
        from repro.serve.workers import _ShmRing

        baseline = _ShmRing.live_segments()
        # Worker 0 crashes its first batch on every incarnation: each respawn
        # creates fresh rings and must unlink the dead incarnation's.
        plan = FaultPlan.crash_on_batch(1, worker=0, spawn=None)
        pool = ProcessWorkerPool(served.artifact, num_workers=2, fault_plan=plan)
        try:
            crashes = 0
            deadline = time.perf_counter() + 120.0
            while crashes < 2 and time.perf_counter() < deadline:
                try:
                    pool.submit(served.batch[:1]).result(timeout=120.0)
                except WorkerCrashed:
                    crashes += 1
                except NoLiveWorkers:
                    time.sleep(0.05)
            assert crashes >= 2, "fault plan never fired"
        finally:
            pool.close()
        assert _ShmRing.live_segments() == baseline
