"""Cluster router: membership, retry-on-replica-failure, server integration.

Pure simulation — replicas are in-memory fakes and the heartbeat runs on
:class:`tests.serve.simclock.SimClock`, so failure detection (alive →
suspect → dead → rejoin) is driven in virtual time with zero waiting and
zero flakes.  The real-socket path is covered by ``test_cluster_live.py``.
"""

from __future__ import annotations

import json
import urllib.request

import numpy as np
import pytest

from repro.serve import InferenceServer, serve_http
from repro.serve.cluster.router import (
    ClusterRouter,
    MembershipPolicy,
    NoReplicas,
    ReplicaError,
    ReplicaHandle,
)
from repro.serve.cluster.transport import TransportError
from repro.serve.stats import ModelStats
from repro.serve.workers import WorkerCrashed

from simclock import SimClock


class FakeReplica(ReplicaHandle):
    """Scripted in-memory replica: flip ``up`` to crash/restart it."""

    def __init__(self, name: str, up: bool = True):
        self.name = name
        self.up = up
        self.predicts = 0
        self.probes = 0

    def predict(self, model, version, batch, timeout_s=None):
        self.predicts += 1
        if not self.up:
            raise TransportError(f"{self.name} is down")
        return np.asarray(batch) * 2.0

    def probe(self, timeout_s=None):
        self.probes += 1
        if not self.up:
            raise TransportError(f"{self.name} is down")
        return {"name": self.name}


def _router(replicas, clock=None, start=False, **policy_kw):
    policy = MembershipPolicy(
        probe_interval_s=policy_kw.pop("probe_interval_s", 0.5),
        suspect_after=policy_kw.pop("suspect_after", 1),
        dead_after=policy_kw.pop("dead_after", 3),
        **policy_kw,
    )
    return ClusterRouter(
        replicas, policy=policy, clock=clock or SimClock(), start=start
    )


class TestMembership:
    def test_probe_failures_walk_alive_suspect_dead(self):
        replica = FakeReplica("r0")
        router = _router([replica, FakeReplica("r1")])
        try:
            replica.up = False
            router.probe_all()
            assert router.member_states()["r0"] == "suspect"
            router.probe_all()
            assert router.member_states()["r0"] == "suspect"
            router.probe_all()
            assert router.member_states()["r0"] == "dead"
            assert router.member_states()["r1"] == "alive"
        finally:
            router.close()

    def test_dead_replica_rejoins_on_probe_success(self):
        replica = FakeReplica("r0", up=False)
        router = _router([replica])
        try:
            for _ in range(3):
                router.probe_all()
            assert router.member_states()["r0"] == "dead"
            replica.up = True
            router.probe_all()
            assert router.member_states()["r0"] == "alive"
            transitions = [(e["from"], e["to"]) for e in router.snapshot()["events"]]
            assert transitions == [
                ("alive", "suspect"), ("suspect", "dead"), ("dead", "alive"),
            ]
        finally:
            router.close()

    def test_heartbeat_runs_on_the_injected_clock(self):
        clock = SimClock()
        replica = FakeReplica("r0")
        router = _router([replica], clock=clock, start=True)
        try:
            assert replica.probes == 0
            clock.advance(0.5)
            assert replica.probes == 1
            clock.advance(2.0)
            assert replica.probes == 5
            # Detection in virtual time: kill it, advance past dead_after.
            replica.up = False
            clock.advance(1.5)
            assert router.member_states()["r0"] == "dead"
        finally:
            router.close()

    def test_events_are_stamped_with_clock_time_and_bounded(self):
        clock = SimClock()
        replica = FakeReplica("r0")
        router = _router([replica], clock=clock, history=4, dead_after=1)
        try:
            for round_ in range(6):
                clock.advance(1.0)
                replica.up = False
                router.probe_all()  # alive -> dead (dead_after=1 via suspect)
                replica.up = True
                router.probe_all()  # dead -> alive
            events = router.snapshot()["events"]
            assert len(events) == 4  # bounded by policy.history
            assert all(e["at"] == pytest.approx(6.0) for e in events[-2:])
        finally:
            router.close()

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="dead_after"):
            MembershipPolicy(suspect_after=3, dead_after=2)
        with pytest.raises(ValueError, match="probe_interval_s"):
            MembershipPolicy(probe_interval_s=0)
        with pytest.raises(ValueError, match="at least one replica"):
            ClusterRouter([], clock=SimClock(), start=False)


class TestDispatch:
    def test_batch_shards_across_replicas_and_reassembles(self):
        replicas = [FakeReplica("r0"), FakeReplica("r1"), FakeReplica("r2")]
        router = _router(replicas)
        try:
            batch = np.arange(12.0).reshape(6, 2)
            out = router.submit("m", None, batch).result(timeout=10)
            np.testing.assert_array_equal(out, batch * 2.0)
            assert all(r.predicts == 1 for r in replicas)  # 6 rows / 3 shards
        finally:
            router.close()

    def test_failed_shard_redispatches_to_survivor(self):
        sick = FakeReplica("sick", up=False)
        healthy = FakeReplica("healthy")
        router = _router([sick, healthy])
        try:
            stats = ModelStats()
            batch = np.ones((4, 2))
            out = router.submit("m", None, batch, stats=stats).result(timeout=10)
            np.testing.assert_array_equal(out, batch * 2.0)
            snap = router.snapshot()
            assert snap["counters"]["shard_retries"] >= 1
            assert snap["counters"]["rerouted_shards"] >= 1
            assert stats.retries >= 1
            # The predict failure counted toward detection too.
            assert router.member_states()["sick"] == "suspect"
        finally:
            router.close()

    def test_all_replicas_failing_raises_worker_crashed(self):
        router = _router(
            [FakeReplica("r0", up=False), FakeReplica("r1", up=False)],
            dead_after=10,  # keep them suspect: routable, but failing
        )
        try:
            future = router.submit("m", None, np.ones((2, 2)))
            with pytest.raises(WorkerCrashed):
                future.result(timeout=10)
        finally:
            router.close()

    def test_empty_membership_raises_no_replicas(self):
        replica = FakeReplica("r0", up=False)
        router = _router([replica], dead_after=1)
        try:
            router.probe_all()  # -> dead
            future = router.submit("m", None, np.ones((2, 2)))
            with pytest.raises(NoReplicas):
                future.result(timeout=10)
            assert router.snapshot()["counters"]["no_replica_failures"] == 1
        finally:
            router.close()

    def test_replica_error_is_not_retried(self):
        class Broken(FakeReplica):
            def predict(self, model, version, batch, timeout_s=None):
                self.predicts += 1
                raise ReplicaError("no such model anywhere")

        broken, spare = Broken("b0"), FakeReplica("r1")
        router = _router([broken, spare])
        try:
            future = router.submit("m", None, np.ones((1, 2)))
            with pytest.raises(ReplicaError):
                future.result(timeout=10)
            # Application errors are identical cluster-wide: no re-dispatch.
            assert spare.predicts == 0
            assert router.snapshot()["counters"]["shard_retries"] == 0
        finally:
            router.close()

    def test_single_row_batch_takes_one_replica(self):
        replicas = [FakeReplica("r0"), FakeReplica("r1")]
        router = _router(replicas)
        try:
            out = router.submit("m", None, np.ones((1, 3))).result(timeout=10)
            assert out.shape == (1, 3)
            assert sum(r.predicts for r in replicas) == 1
        finally:
            router.close()


class TestServerIntegration:
    @pytest.fixture()
    def cluster_server(self, repo):
        replicas = [FakeReplica("r0"), FakeReplica("r1")]
        router = _router(replicas)
        server = InferenceServer(repo, worker_mode="cluster", cluster=router)
        yield server, router, replicas
        server.close()
        router.close()

    def test_predict_batch_serves_through_the_cluster(self, cluster_server, served):
        server, router, replicas = cluster_server
        batch = served.batch[:4]
        out = server.predict_batch("resnet_s", batch)
        np.testing.assert_array_equal(out, np.asarray(batch) * 2.0)
        assert router.snapshot()["counters"]["batches"] == 1

    def test_healthz_surfaces_membership_and_retry_counters(
        self, cluster_server, served
    ):
        server, router, replicas = cluster_server
        replicas[0].up = False
        server.predict_batch("resnet_s", served.batch[:4])
        health = server.health()
        cluster = health["control_plane"]["cluster"]
        assert cluster["replicas"]["r0"]["state"] == "suspect"
        assert cluster["replicas"]["r1"]["state"] == "alive"
        assert cluster["counters"]["shard_retries"] >= 1
        assert [e["to"] for e in cluster["events"]] == ["suspect"]

    def test_http_predict_and_healthz_through_cluster(self, cluster_server, served):
        server, router, replicas = cluster_server
        with serve_http(server, port=0) as front:
            body = json.dumps(
                {"inputs": np.asarray(served.batch[:2]).tolist()}
            ).encode()
            request = urllib.request.Request(
                f"{front.url}/v1/models/resnet_s/predict",
                data=body, headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request) as response:
                payload = json.loads(response.read())
            np.testing.assert_allclose(
                payload["outputs"], np.asarray(served.batch[:2]) * 2.0
            )
            with urllib.request.urlopen(f"{front.url}/healthz") as response:
                health = json.loads(response.read())
            assert "cluster" in health["control_plane"]

    def test_http_returns_503_no_replicas_when_cluster_is_down(
        self, cluster_server, served
    ):
        server, router, replicas = cluster_server
        for replica in replicas:
            replica.up = False
        for _ in range(3):
            router.probe_all()
        assert router.live_count() == 0
        with serve_http(server, port=0) as front:
            body = json.dumps(
                {"inputs": np.asarray(served.batch[0]).tolist()}
            ).encode()
            request = urllib.request.Request(
                f"{front.url}/v1/models/resnet_s/predict", data=body
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read())
            assert payload["reason"] == "no_replicas"
            assert excinfo.value.headers["Retry-After"] is not None
