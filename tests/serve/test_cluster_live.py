"""Cluster serving over real sockets: sync, identical predictions, kill-one.

Two tiers of realism:

* **In-process nodes** — real :class:`ReplicaNode` listeners on loopback
  ports, killed by hard-closing them (indistinguishable from a crash at the
  transport layer).  Fast enough for the default suite.
* **Subprocess nodes** — ``python -m repro.serve.cluster.node`` daemons
  SIGKILLed mid-load (the CI chaos tier's smoke): the acceptance scenario
  of docs/CLUSTER.md's failure table, end to end.

No wall-clock sleeps: readiness is the node's READY line / a completed
sync, and failure detection is driven by explicit ``probe_all()`` calls —
the membership interval itself is sim-tested in ``test_cluster.py``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.serve import InferenceServer, ModelRepository
from repro.serve.cluster import (
    ClusterRouter,
    MembershipPolicy,
    ReplicaNode,
    pull_from_node,
    repository_manifest,
    sync_to_node,
)


@pytest.fixture()
def nodes(tmp_path, repo):
    """Three live in-process replicas, synced from the front-end repo."""
    started = [
        ReplicaNode(tmp_path / f"replica{i}", name=f"replica{i}").start()
        for i in range(3)
    ]
    for node in started:
        sync_to_node(node.address, repo)
    yield started
    for node in started:
        node.close()


def _router(nodes, **kw):
    kw.setdefault("request_timeout_s", 30.0)
    kw.setdefault("connect_timeout_s", 2.0)
    return ClusterRouter(
        [n.address for n in nodes],
        policy=MembershipPolicy(probe_interval_s=0.2, **kw),
        start=False,
    )


class TestSync:
    def test_push_transfers_only_missing_artifacts(self, tmp_path, repo):
        node = ReplicaNode(tmp_path / "cold").start()
        try:
            first = sync_to_node(node.address, repo)
            assert first["pushed"] == [("resnet_s", 1)]
            assert first["bytes"] > 0
            again = sync_to_node(node.address, repo)
            assert again["pushed"] == []
            assert again["skipped"] == [("resnet_s", 1)]
            assert again["bytes"] == 0
        finally:
            node.close()

    def test_synced_replica_manifest_matches_source(self, nodes, repo):
        replica_repo = ModelRepository(nodes[0].repository.root)
        assert repository_manifest(replica_repo) == repository_manifest(repo)

    def test_pull_direction_converges_a_cold_repo(self, tmp_path, nodes, repo):
        cold = ModelRepository(tmp_path / "cold-puller")
        report = pull_from_node(nodes[0].address, cold)
        assert report["pushed"] == [("resnet_s", 1)]
        assert repository_manifest(cold) == repository_manifest(repo)


class TestLiveCluster:
    def test_cluster_predictions_match_local_engine(self, nodes, repo, served):
        router = _router(nodes)
        server = InferenceServer(repo, worker_mode="cluster", cluster=router)
        try:
            out = server.predict_batch("resnet_s", served.batch)
            np.testing.assert_allclose(out, served.expected, rtol=1e-9, atol=1e-12)
            # At fixed membership the whole path is deterministic: the same
            # request twice is bitwise identical (same shards, same replica
            # executors, same artifact bytes — the header digest guarantees
            # the last one).
            again = server.predict_batch("resnet_s", served.batch)
            np.testing.assert_array_equal(out, again)
        finally:
            server.close()
            router.close()

    def test_kill_one_replica_mid_load_zero_client_errors(
        self, nodes, repo, served
    ):
        router = _router(nodes)
        server = InferenceServer(repo, worker_mode="cluster", cluster=router)
        try:
            router.probe_all()
            assert router.live_count() == 3
            batch = served.batch
            # Warm all three replicas, then kill one and keep serving: every
            # request must keep succeeding with correct outputs.
            for _ in range(2):
                np.testing.assert_allclose(
                    server.predict_batch("resnet_s", batch), served.expected,
                    rtol=1e-9, atol=1e-12,
                )
            nodes[1].close()  # crash, as seen from the wire
            survivors = [
                server.predict_batch("resnet_s", batch) for _ in range(4)
            ]
            for out in survivors:
                np.testing.assert_allclose(
                    out, served.expected, rtol=1e-9, atol=1e-12
                )
            # Post-kill membership is stable, so the rerouted path is again
            # deterministic: repeats are bitwise identical.
            np.testing.assert_array_equal(survivors[-2], survivors[-1])
            snapshot = router.snapshot()
            assert snapshot["counters"]["shard_retries"] >= 1
            # Health probes converge on the crash.
            for _ in range(3):
                router.probe_all()
            health = server.health()
            cluster = health["control_plane"]["cluster"]
            assert cluster["replicas"]["127.0.0.1:%d" % nodes[1].address[1]][
                "state"
            ] == "dead"
            assert cluster["live"] == 2
            assert [e["to"] for e in cluster["events"]][-1] == "dead"
        finally:
            server.close()
            router.close()

    def test_oversized_batch_is_rejected_cleanly(self, nodes, repo, served):
        router = _router(nodes)
        try:
            rows = np.zeros((4096,) + served.input_shape)
            future = router.submit("resnet_s", None, rows)
            with pytest.raises(Exception) as excinfo:
                future.result(timeout=60)
            assert "bound" in str(excinfo.value) or "slot geometry" in str(
                excinfo.value
            )
        finally:
            router.close()


class TestSubprocessKill:
    """The acceptance scenario: SIGKILL a replica *process* mid-load."""

    def _spawn_node(self, repo_root: Path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.serve.cluster.node",
             "--repo", str(repo_root)],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            env=env, text=True,
        )
        ready = process.stdout.readline().strip()
        assert ready.startswith("READY "), f"node never came up: {ready!r}"
        host_port = ready.split()[1]
        host, port = host_port.rsplit(":", 1)
        return process, (host, int(port))

    def test_sigkill_one_of_three_replicas_zero_failed_requests(
        self, tmp_path, repo, served
    ):
        processes, addresses = [], []
        try:
            for i in range(3):
                process, address = self._spawn_node(tmp_path / f"proc{i}")
                processes.append(process)
                addresses.append(address)
            for address in addresses:
                sync_to_node(address, repo)
            router = ClusterRouter(
                addresses,
                policy=MembershipPolicy(
                    probe_interval_s=0.2, request_timeout_s=120.0
                ),
                start=False,
            )
            server = InferenceServer(repo, worker_mode="cluster", cluster=router)
            try:
                batch = served.batch
                failures = 0
                for round_ in range(6):
                    if round_ == 2:
                        # Mid-load, no drain, no goodbye.
                        processes[0].send_signal(signal.SIGKILL)
                        processes[0].wait(timeout=30)
                    try:
                        out = server.predict_batch("resnet_s", batch)
                        np.testing.assert_allclose(
                            out, served.expected, rtol=1e-9, atol=1e-12
                        )
                    except Exception:
                        failures += 1
                assert failures == 0
                snapshot = router.snapshot()
                assert snapshot["counters"]["shard_retries"] >= 1
                for _ in range(3):
                    router.probe_all()
                states = router.member_states()
                dead_name = "%s:%d" % addresses[0]
                assert states[dead_name] == "dead"
                assert sum(1 for s in states.values() if s == "alive") == 2
            finally:
                server.close()
                router.close()
        finally:
            for process in processes:
                if process.poll() is None:
                    process.kill()
                process.wait(timeout=30)
