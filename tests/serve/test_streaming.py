"""Tests for stateful streaming serving: sessions, TTL, faults, HTTP.

No wall-clock sleeping anywhere (the serve sleep-lint forbids it): TTL
eviction is driven through the deterministic :class:`SimClock`, and
everything else is request/response.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.stream_plan import StreamUnsupported
from repro.serve import (
    InferenceServer,
    StreamPolicy,
    UnknownSession,
    WorkerError,
    serve_http,
)

from simclock import SimClock


@pytest.fixture()
def clock():
    return SimClock()


@pytest.fixture()
def stream_server(repo, clock):
    server = InferenceServer(
        repo,
        clock=clock,
        stream=StreamPolicy(
            session_ttl_s=60.0, sweep_interval_s=10.0, max_sessions=4,
            crossover=0.9, verify=True,
        ),
    )
    yield server
    server.close()


def _frames(served, n=3, patch=1.0):
    """A base frame plus ``n - 1`` frames differing in one 6x6 patch."""
    frames = [np.array(served.batch[0], copy=True)]
    for i in range(1, n):
        nxt = frames[-1].copy()
        nxt[:, :6, :6] += patch * (i + 1)
        frames.append(nxt)
    return np.stack(frames)


class TestStreamRequests:
    def test_session_lifecycle_and_bit_exactness(self, stream_server, served):
        frames = _frames(served, n=3)
        version, sid, results = stream_server.stream_request("resnet_s", frames)
        results = list(results)
        assert version == 1 and sid
        assert [r["mode"] for r in results] == ["full", "incremental", "incremental"]
        # Threshold 0: streamed outputs identical to stateless predicts.
        for frame, result in zip(frames, results):
            np.testing.assert_array_equal(
                result["outputs"], stream_server.predict("resnet_s", frame)
            )

    def test_affinity_token_continues_the_session(self, stream_server, served):
        frames = _frames(served, n=2)
        _, sid, results = stream_server.stream_request("resnet_s", frames)
        list(results)
        # Same frame through the same session: the memoized fast path.
        _, sid2, results = stream_server.stream_request(
            "resnet_s", frames[-1], session=sid
        )
        (result,) = list(results)
        assert sid2 == sid
        assert result["mode"] == "cached"

    def test_unknown_session_rejected_before_any_work(self, stream_server, served):
        with pytest.raises(UnknownSession):
            stream_server.stream_request(
                "resnet_s", served.batch[0], session="never-opened"
            )

    def test_close_session_drops_state(self, stream_server, served):
        _, sid, results = stream_server.stream_request(
            "resnet_s", served.batch[0], close_session=True
        )
        list(results)
        with pytest.raises(UnknownSession):
            stream_server.stream_request("resnet_s", served.batch[0], session=sid)

    def test_bad_frame_shape_is_a_value_error(self, stream_server, served):
        _, sid, results = stream_server.stream_request("resnet_s", served.batch[0])
        list(results)
        with pytest.raises(ValueError):
            stream_server.stream_request(
                "resnet_s", np.zeros((3, 16, 16)), session=sid
            )

    def test_lossy_threshold_serves_cached_answers(self, stream_server, served):
        base = served.batch[0]
        _, sid, results = stream_server.stream_request(
            "resnet_s", base, threshold=0.5
        )
        first = list(results)[0]
        _, _, results = stream_server.stream_request(
            "resnet_s", base + 0.01, session=sid  # sub-threshold everywhere
        )
        (second,) = list(results)
        assert second["mode"] == "cached"
        np.testing.assert_array_equal(second["outputs"], first["outputs"])


class TestSessionTable:
    def test_ttl_eviction_via_sweep_ticker(self, stream_server, served, clock):
        _, sid, results = stream_server.stream_request("resnet_s", served.batch[0])
        list(results)
        manager = stream_server._pipeline("resnet_s").stream_manager
        assert manager.snapshot()["sessions"] == 1
        clock.advance(61.0)  # past the TTL; the sweep ticker fires on the way
        snap = manager.snapshot()
        assert snap["sessions"] == 0
        assert snap["expired"] == 1
        with pytest.raises(UnknownSession):
            stream_server.stream_request("resnet_s", served.batch[0], session=sid)

    def test_touching_a_session_defers_its_eviction(self, stream_server, served, clock):
        _, sid, results = stream_server.stream_request("resnet_s", served.batch[0])
        list(results)
        clock.advance(40.0)
        _, _, results = stream_server.stream_request(
            "resnet_s", served.batch[0], session=sid
        )
        list(results)  # refreshes last_used at t=40
        clock.advance(40.0)  # t=80: idle 40s < TTL 60s
        manager = stream_server._pipeline("resnet_s").stream_manager
        assert manager.snapshot()["sessions"] == 1

    def test_capacity_evicts_least_recently_used(self, stream_server, served, clock):
        sids = []
        for _ in range(5):  # policy caps at 4
            _, sid, results = stream_server.stream_request("resnet_s", served.batch[0])
            list(results)
            sids.append(sid)
            clock.advance(1.0)  # distinct last_used stamps
        manager = stream_server._pipeline("resnet_s").stream_manager
        snap = manager.snapshot()
        assert snap["sessions"] == 4
        assert snap["evicted"] == 1
        with pytest.raises(UnknownSession):
            stream_server.stream_request("resnet_s", served.batch[0], session=sids[0])

    def test_streaming_stats_attached_to_snapshot(self, stream_server, served):
        _, _, results = stream_server.stream_request("resnet_s", _frames(served, n=2))
        list(results)
        snap = stream_server.stats("resnet_s")
        assert snap["streaming"]["frames"] == 2
        assert snap["streaming"]["full"] == 1
        assert snap["streaming"]["incremental"] == 1
        assert snap["streaming"]["state_bytes"] > 0


class TestFaultSemantics:
    def test_poisoned_session_resets_and_recovers(self, stream_server, served):
        frames = _frames(served, n=2)
        _, sid, results = stream_server.stream_request("resnet_s", frames[0])
        list(results)
        manager = stream_server._pipeline("resnet_s").stream_manager
        # Corrupt the session's persistent state so the next incremental
        # step explodes mid-frame (a stand-in for any runtime fault).
        manager._sessions[sid].buffers.clear()
        _, _, results = stream_server.stream_request(
            "resnet_s", frames[1], session=sid
        )
        (result,) = list(results)
        # Reset + full recompute: a delayed answer, never a wrong one.
        assert result["mode"] == "full"
        assert result["recovered"] is True
        np.testing.assert_array_equal(
            result["outputs"], stream_server.predict("resnet_s", frames[1])
        )
        assert manager.snapshot()["faults"] == 1

    def test_unrecoverable_session_is_evicted_with_worker_error(
        self, stream_server, served
    ):
        _, sid, results = stream_server.stream_request("resnet_s", served.batch[0])
        list(results)
        manager = stream_server._pipeline("resnet_s").stream_manager
        session = manager._sessions[sid]
        session.buffers.clear()
        session.plan = None  # even the reset-retry cannot run
        try:
            _, _, results = stream_server.stream_request(
                "resnet_s", served.batch[0], session=sid
            )
            with pytest.raises(WorkerError):
                list(results)
        finally:
            session.plan = manager.plan  # un-poison the shared object graph
        assert sid not in manager._sessions

    def test_server_close_drops_sessions(self, repo, served, clock):
        server = InferenceServer(
            repo, clock=clock, stream=StreamPolicy(crossover=0.9)
        )
        _, sid, results = server.stream_request("resnet_s", served.batch[0])
        list(results)
        manager = server._pipeline("resnet_s").stream_manager
        server.close()
        assert manager.snapshot()["sessions"] == 0


class TestCapabilityGate:
    @pytest.fixture()
    def legacy_repo(self, repo, served, tmp_path):
        """Publish a schema-2 artifact (no ``stream`` capability block)."""
        data = np.load(served.artifact, allow_pickle=False)
        arrays = {k: data[k] for k in data.files}
        meta = json.loads(str(arrays.pop("__program__")))
        meta["schema"] = 2
        meta["metadata"].pop("stream", None)
        arrays["__program__"] = np.array(json.dumps(meta))
        legacy = tmp_path / "legacy.npz"
        np.savez_compressed(legacy, **arrays)
        repo.publish_artifact(legacy, "legacy")
        return repo

    def test_pre_schema_artifact_raises_stream_unsupported(
        self, legacy_repo, served, clock
    ):
        server = InferenceServer(legacy_repo, clock=clock)
        try:
            # Plain predicts still work: the gate is streaming-only.
            server.predict("legacy", served.batch[0])
            with pytest.raises(StreamUnsupported) as exc:
                server.stream_request("legacy", served.batch[0])
            assert exc.value.reason == "stream_unsupported"
            assert "schema" in str(exc.value)
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Chunked HTTP endpoint
# ---------------------------------------------------------------------------
@pytest.fixture()
def stream_front(stream_server):
    front = serve_http(stream_server, port=0)
    yield front
    front.close()


def _post_stream(url, name, payload):
    request = urllib.request.Request(
        url + f"/v1/models/{name}/stream",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=120.0) as response:
        sid = response.headers["X-Stream-Session"]
        lines = [
            json.loads(line)
            for line in response.read().decode().splitlines() if line
        ]
        return sid, response.headers, lines


class TestHttpStreaming:
    def test_chunked_ndjson_stream(self, stream_front, stream_server, served):
        frames = _frames(served, n=3)
        sid, headers, lines = _post_stream(
            stream_front.url, "resnet_s", {"frames": frames.tolist()}
        )
        assert headers["Content-Type"] == "application/x-ndjson"
        assert headers["Transfer-Encoding"] == "chunked"
        assert headers["X-Model-Version"] == "1"
        assert [line["mode"] for line in lines] == [
            "full", "incremental", "incremental",
        ]
        assert [line["frame"] for line in lines] == [0, 1, 2]
        for frame, line in zip(frames, lines):
            np.testing.assert_array_equal(
                np.asarray(line["outputs"]),
                stream_server.predict("resnet_s", frame),
            )

    def test_session_header_continues_across_requests(self, stream_front, served):
        base = served.batch[0]
        sid, _, _ = _post_stream(
            stream_front.url, "resnet_s", {"frames": base.tolist()}
        )
        sid2, _, lines = _post_stream(
            stream_front.url, "resnet_s",
            {"frames": base.tolist(), "session": sid, "close_session": True},
        )
        assert sid2 == sid
        assert lines[0]["mode"] == "cached"
        # close_session dropped it: the token is now unknown.
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_stream(
                stream_front.url, "resnet_s",
                {"frames": base.tolist(), "session": sid},
            )
        assert err.value.code == 404
        assert json.loads(err.value.read())["reason"] == "unknown_session"

    def test_missing_frames_is_400(self, stream_front):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_stream(stream_front.url, "resnet_s", {"inputs": [1.0]})
        assert err.value.code == 400

    def test_unknown_model_is_404(self, stream_front):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_stream(stream_front.url, "ghost", {"frames": [1.0]})
        assert err.value.code == 404

    def test_pre_schema_artifact_streams_400_stream_unsupported(
        self, repo, served, tmp_path, clock
    ):
        data = np.load(served.artifact, allow_pickle=False)
        arrays = {k: data[k] for k in data.files}
        meta = json.loads(str(arrays.pop("__program__")))
        meta["schema"] = 2
        meta["metadata"].pop("stream", None)
        arrays["__program__"] = np.array(json.dumps(meta))
        legacy = tmp_path / "legacy.npz"
        np.savez_compressed(legacy, **arrays)
        repo.publish_artifact(legacy, "legacy")
        server = InferenceServer(repo, clock=clock)
        front = serve_http(server, port=0)
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                _post_stream(
                    front.url, "legacy", {"frames": served.batch[0].tolist()}
                )
            assert err.value.code == 400
            body = json.loads(err.value.read())
            assert body["reason"] == "stream_unsupported"
            # And the same artifact still predicts normally.
            request = urllib.request.Request(
                front.url + "/v1/models/legacy/predict",
                data=json.dumps({"inputs": served.batch[0].tolist()}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=120.0) as response:
                assert response.status == 200
        finally:
            front.close()
            server.close()
