"""Documentation consistency checks.

Two invariants the docs promise:

* ``docs/ARCHITECTURE.md`` documents **every** IR op kind that
  ``repro.core.program`` defines (the op reference table has one row per
  kind in ``IR_OP_KINDS``), so the table cannot silently drift from the
  compiler;
* ``docs/ARCHITECTURE.md`` documents **every registered compiler pass**
  (one row per ``PASS_REGISTRY`` entry: name, stage, level, counters) and
  every optimization level, so the pass-manager table cannot drift either;
* every relative markdown link in ``README.md`` and ``docs/*.md`` resolves
  to a real file (the CI link-checker step runs exactly this module).
"""

import re
from pathlib import Path

import pytest

from repro.core import IR_OP_KINDS, OPT_LEVELS, PASS_REGISTRY
from repro.core.program import NetworkProgram

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def test_docs_exist():
    names = {path.name for path in DOC_FILES}
    assert "ARCHITECTURE.md" in names
    assert "SERVING.md" in names
    assert "README.md" in names


class TestArchitectureOpReference:
    def test_every_ir_op_kind_has_a_table_row(self):
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        missing = [
            kind
            for kind in IR_OP_KINDS
            if not re.search(rf"^\|\s*`{re.escape(kind)}`\s*\|", text, re.MULTILINE)
        ]
        assert not missing, (
            f"docs/ARCHITECTURE.md op reference table is missing rows for: {missing}"
        )

    def test_ir_op_kinds_is_the_canonical_executor_vocabulary(self):
        """Every kind the typing stage can emit is in IR_OP_KINDS (grepping
        the emit calls of program.py keeps the tuple honest)."""
        source = (REPO_ROOT / "src/repro/core/program.py").read_text()
        emitted = set(re.findall(r'emit\(\s*"(\w+)"', source))
        emitted |= {"requantize"}  # created by fuse_requantize, not typed
        # gop passthrough kinds are emitted via a variable; they are listed
        # in the membership test the typing loop uses.
        emitted |= {"activation", "pool", "flatten", "add"}
        assert emitted <= set(IR_OP_KINDS)

    def test_op_counts_metadata_only_uses_documented_kinds(self, compressed_small_model):
        from repro.core import compile_network

        program = compile_network(compressed_small_model.model, (3, 32, 32))
        assert isinstance(program, NetworkProgram)
        assert set(program.metadata()["op_counts"]) <= set(IR_OP_KINDS)


class TestPassManagerReference:
    """The §3 pass table tracks the live registry, like the IR op table."""

    def test_every_registered_pass_has_a_table_row(self):
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        missing = []
        for name, pass_ in PASS_REGISTRY.items():
            row = re.search(rf"^\|\s*`{re.escape(name)}`\s*\|(.*)$", text, re.MULTILINE)
            if row is None:
                missing.append(name)
                continue
            # The row must name the pass's stage and gating level.
            assert pass_.stage in row.group(1), (
                f"pass '{name}' row does not state its stage '{pass_.stage}'"
            )
            assert pass_.level in row.group(1), (
                f"pass '{name}' row does not state its level '{pass_.level}'"
            )
        assert not missing, (
            f"docs/ARCHITECTURE.md pass table is missing rows for: {missing}"
        )

    def test_every_pass_counter_is_documented(self):
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        for name, pass_ in PASS_REGISTRY.items():
            for counter in pass_.counters:
                assert f"`{counter}`" in text, (
                    f"pass '{name}' counter '{counter}' is not documented"
                )

    def test_every_optimization_level_is_documented(self):
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        for level in OPT_LEVELS:
            assert re.search(rf"^\|\s*`{level}`\s*\|", text, re.MULTILINE), (
                f"optimization level '{level}' has no row in the levels table"
            )


class TestMarkdownLinks:
    @pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
    def test_relative_links_resolve(self, doc):
        text = doc.read_text()
        broken = []
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]  # drop the anchor
            if not relative:
                continue
            if not (doc.parent / relative).exists():
                broken.append(target)
        assert not broken, f"{doc.name} has broken relative links: {broken}"

    def test_readme_links_both_guides(self):
        text = (REPO_ROOT / "README.md").read_text()
        assert "docs/ARCHITECTURE.md" in text
        assert "docs/SERVING.md" in text
