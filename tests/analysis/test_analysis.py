"""Tests for accuracy helpers, BN recalibration and the bitwidth search."""

import numpy as np
import pytest

from repro.analysis import (
    accuracy_drop,
    evaluate_accuracy,
    find_min_activation_bitwidth,
    recalibrate_batchnorm,
)
from repro.core import BitSerialInferenceEngine, EngineConfig
from repro.nn import BatchNorm2d, Conv2d, DataLoader, Sequential, Flatten, Linear
from repro.nn.data.dataset import ArrayDataset


def _loader(n=32, channels=3, size=32, classes=10, seed=0):
    rng = np.random.default_rng(seed)
    return DataLoader(
        ArrayDataset(rng.normal(size=(n, channels, size, size)), rng.integers(0, classes, n)),
        batch_size=16,
    )


class TestAccuracyHelpers:
    def test_evaluate_accuracy_accepts_dataset_or_loader(self, small_model, tiny_cifar):
        _, test_ds = tiny_cifar
        from_dataset = evaluate_accuracy(small_model, test_ds)
        from_loader = evaluate_accuracy(small_model, DataLoader(test_ds, batch_size=16))
        assert from_dataset == pytest.approx(from_loader)

    def test_accuracy_drop_percentage_points(self):
        assert accuracy_drop(0.90, 0.885) == pytest.approx(1.5)
        assert accuracy_drop(0.5, 0.6) == pytest.approx(-10.0)

    def test_accuracy_drop_validation(self):
        with pytest.raises(ValueError):
            accuracy_drop(1.5, 0.5)


class TestBatchnormRecalibration:
    def test_running_stats_match_new_distribution(self):
        model = Sequential(Conv2d(3, 4, 3, padding=1, rng=0), BatchNorm2d(4), Flatten(), Linear(4 * 8 * 8, 2, rng=0))
        loader = _loader(n=64, size=8, classes=2)
        recalibrate_batchnorm(model, loader, num_batches=4)
        bn = model[1]
        conv_outputs = []
        model.eval()
        for inputs, _ in loader:
            conv_outputs.append(model[0](inputs))
        stacked = np.concatenate(conv_outputs)
        np.testing.assert_allclose(bn.running_mean, stacked.mean(axis=(0, 2, 3)), atol=1e-6)

    def test_returns_number_of_bn_layers(self, small_model):
        count = recalibrate_batchnorm(small_model, _loader(), num_batches=1)
        expected = sum(1 for m in small_model.modules() if isinstance(m, BatchNorm2d))
        assert count == expected

    def test_model_without_bn_is_noop(self):
        model = Sequential(Flatten(), Linear(3 * 32 * 32, 2, rng=0))
        assert recalibrate_batchnorm(model, _loader(), num_batches=1) == 0

    def test_leaves_model_in_eval_mode(self, small_model):
        recalibrate_batchnorm(small_model, _loader(), num_batches=1)
        assert not small_model.training

    def test_validation(self, small_model):
        with pytest.raises(ValueError):
            recalibrate_batchnorm(small_model, _loader(), num_batches=0)

    def test_recalibration_restores_accuracy_after_weight_perturbation(self, tiny_loaders):
        """The motivating use case: refreshing stats after a weight transformation."""
        from repro.models import create_model
        from repro.nn import SGD, TrainConfig, Trainer
        from repro.nn.training.trainer import evaluate_model

        train_loader, test_loader = tiny_loaders
        model = create_model("resnet_s_tiny", num_classes=10, rng=0)
        Trainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9)).fit(
            train_loader, TrainConfig(epochs=2)
        )
        model.eval()
        baseline = evaluate_model(model, test_loader)
        # Rescale every conv weight: BN statistics are now stale.
        for module in model.modules():
            if isinstance(module, Conv2d):
                module.weight.data *= 1.7
        stale = evaluate_model(model, test_loader)
        recalibrate_batchnorm(model, train_loader, num_batches=4)
        refreshed = evaluate_model(model, test_loader)
        assert refreshed >= stale - 1e-9
        assert refreshed >= baseline - 0.25


class TestBitwidthSearch:
    def test_finds_min_bitwidth_on_compressed_model(self, compressed_small_model):
        loader = _loader(n=32)
        engine = BitSerialInferenceEngine(
            compressed_small_model.model,
            compressed_small_model.pool,
            EngineConfig(activation_bitwidth=8, lut_bitwidth=None, calibration_batches=2),
        )
        engine.calibrate(loader)
        reference = engine.evaluate(loader)
        result = find_min_activation_bitwidth(
            engine, loader, reference_accuracy=reference, max_drop=1.0 - 1e-9,
            bitwidths=(8, 6, 4),
        )
        # With a permissive drop threshold every bitwidth qualifies.
        assert result.min_bitwidth == 4
        assert set(result.accuracies) == {8, 6, 4}

    def test_strict_threshold_keeps_high_bitwidth(self, compressed_small_model):
        loader = _loader(n=32, seed=3)
        engine = BitSerialInferenceEngine(
            compressed_small_model.model,
            compressed_small_model.pool,
            EngineConfig(activation_bitwidth=8, lut_bitwidth=None, calibration_batches=2),
        )
        engine.calibrate(loader)
        reference = engine.evaluate(loader)
        result = find_min_activation_bitwidth(
            engine, loader, reference_accuracy=reference, max_drop=0.0, bitwidths=(8, 1)
        )
        assert result.min_bitwidth in (8, 1)
        assert 8 in result.accuracies

    def test_validation(self, compressed_small_model):
        engine = BitSerialInferenceEngine(
            compressed_small_model.model, compressed_small_model.pool
        )
        with pytest.raises(ValueError):
            find_min_activation_bitwidth(engine, None, 0.9, bitwidths=())
        with pytest.raises(ValueError):
            find_min_activation_bitwidth(engine, None, 0.9, max_drop=1.5)
