"""Tests for whole-network latency estimation and memory-fit checks."""

import pytest

from repro.core import CompressionPolicy
from repro.mcu import (
    MC_LARGE,
    MC_SMALL,
    BitSerialKernelConfig,
    estimate_cmsis_network,
    estimate_weight_pool_network,
)
from repro.models import create_model


@pytest.fixture(scope="module")
def resnet10():
    return create_model("resnet10", num_classes=10, in_channels=3, rng=0)


@pytest.fixture(scope="module")
def resnet14():
    return create_model("resnet14", num_classes=10, in_channels=3, rng=0)


class TestCmsisEstimate:
    def test_report_fields(self, resnet10):
        report = estimate_cmsis_network(resnet10, (3, 32, 32), MC_LARGE, "resnet10")
        assert report.mode == "cmsis"
        assert report.total_cycles > 0
        assert report.latency_seconds == pytest.approx(
            report.total_cycles / 120e6, rel=1e-9
        )
        assert len(report.layers) > 0
        assert all(not layer.compressed for layer in report.layers)

    def test_flash_requirement_equals_param_bytes(self, resnet10):
        report = estimate_cmsis_network(resnet10, (3, 32, 32), MC_LARGE)
        assert report.flash_bytes_needed == pytest.approx(resnet10.num_parameters(), rel=0.01)

    def test_resnet14_does_not_fit_mc_large_without_compression(self, resnet14):
        """Table 7: ResNet-14 (2.7M parameters) exceeds 1MB flash at 8 bits."""
        report = estimate_cmsis_network(resnet14, (3, 32, 32), MC_LARGE)
        assert not report.fits_flash
        assert report.latency_or_none is None

    def test_resnet10_does_not_fit_mc_small(self, resnet10):
        report = estimate_cmsis_network(resnet10, (3, 32, 32), MC_SMALL)
        assert not report.fits_flash


class TestWeightPoolEstimate:
    def test_compressed_layers_flagged(self, resnet10):
        report = estimate_weight_pool_network(
            resnet10, (3, 32, 32), MC_LARGE, BitSerialKernelConfig(pool_size=64)
        )
        assert report.mode == "weight_pool"
        compressed = [l for l in report.layers if l.compressed]
        uncompressed = [l for l in report.layers if not l.compressed]
        assert compressed, "most conv layers should be compressed"
        # First conv and the classifier stay uncompressed under the default policy.
        assert any(l.kind == "linear" for l in uncompressed)

    def test_weight_pool_makes_resnet14_fit_mc_large(self, resnet14):
        """Table 7's key qualitative point: compression makes the big nets deployable."""
        cmsis = estimate_cmsis_network(resnet14, (3, 32, 32), MC_LARGE)
        pool = estimate_weight_pool_network(
            resnet14, (3, 32, 32), MC_LARGE, BitSerialKernelConfig(pool_size=64)
        )
        assert not cmsis.fits_flash
        assert pool.fits_flash
        assert pool.latency_or_none is not None

    def test_speedup_over_cmsis_for_medium_network(self, resnet10):
        """Paper: >2.8x at the minimum bitwidth, >1.5x at 8 bits for ResNet-10."""
        cmsis = estimate_cmsis_network(resnet10, (3, 32, 32), MC_LARGE)
        pool8 = estimate_weight_pool_network(
            resnet10, (3, 32, 32), MC_LARGE, BitSerialKernelConfig(pool_size=64)
        )
        pool4 = estimate_weight_pool_network(
            resnet10,
            (3, 32, 32),
            MC_LARGE,
            BitSerialKernelConfig(pool_size=64, activation_bitwidth=4),
        )
        assert cmsis.latency_seconds / pool8.latency_seconds > 1.2
        assert cmsis.latency_seconds / pool4.latency_seconds > 2.0

    def test_lower_bitwidth_is_faster(self, resnet10):
        latencies = [
            estimate_weight_pool_network(
                resnet10,
                (3, 32, 32),
                MC_LARGE,
                BitSerialKernelConfig(pool_size=64, activation_bitwidth=bits),
            ).latency_seconds
            for bits in (8, 4, 2)
        ]
        assert latencies[0] > latencies[1] > latencies[2]

    def test_smaller_pool_is_faster_for_wide_layers(self, resnet10):
        pool64 = estimate_weight_pool_network(
            resnet10, (3, 32, 32), MC_LARGE, BitSerialKernelConfig(pool_size=64)
        )
        pool32 = estimate_weight_pool_network(
            resnet10, (3, 32, 32), MC_LARGE, BitSerialKernelConfig(pool_size=32)
        )
        assert pool32.latency_seconds < pool64.latency_seconds

    def test_mc_small_is_slower_than_mc_large(self):
        model = create_model("resnet_s", num_classes=10, rng=0)
        large = estimate_weight_pool_network(
            model, (3, 32, 32), MC_LARGE, BitSerialKernelConfig(pool_size=64)
        )
        small = estimate_weight_pool_network(
            model, (3, 32, 32), MC_SMALL, BitSerialKernelConfig(pool_size=64)
        )
        assert small.latency_seconds > large.latency_seconds

    def test_sram_requirement_includes_lut_cache(self, resnet10):
        cached = estimate_weight_pool_network(
            resnet10, (3, 32, 32), MC_LARGE, BitSerialKernelConfig(lut_caching=True)
        )
        uncached = estimate_weight_pool_network(
            resnet10, (3, 32, 32), MC_LARGE, BitSerialKernelConfig(lut_caching=False)
        )
        assert cached.sram_bytes_needed > uncached.sram_bytes_needed

    def test_policy_controls_hypothetical_compression(self, resnet10):
        # A group size that divides no layer's channel count (and no padding)
        # makes every layer ineligible, so nothing is treated as compressed.
        nothing_compressed = estimate_weight_pool_network(
            resnet10,
            (3, 32, 32),
            MC_LARGE,
            BitSerialKernelConfig(pool_size=64),
            policy=CompressionPolicy(group_size=7, pad_channels=False),
        )
        assert all(not layer.compressed for layer in nothing_compressed.layers)

    def test_works_on_actually_compressed_model(self, compressed_small_model):
        report = estimate_weight_pool_network(
            compressed_small_model.model,
            (3, 32, 32),
            MC_LARGE,
            BitSerialKernelConfig(pool_size=16),
        )
        assert any(layer.compressed for layer in report.layers)
        assert report.latency_seconds > 0
