"""Tests for the MCU device models and kernel cost models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tracing import LayerTrace
from repro.mcu import MC_LARGE, MC_SMALL, BitSerialKernelConfig, CycleCosts, MCUDevice
from repro.mcu.kernels.bitserial import bitserial_conv_cycles, bitserial_layer_breakdown, bitserial_linear_cycles
from repro.mcu.kernels.cmsis import cmsis_conv_cycles, cmsis_linear_cycles
from repro.mcu.kernels.memoization import expected_unique_indices, memoized_conv_cycles


def conv_trace(filters=64, channels=None, size=16, kernel=3, groups=1):
    channels = filters if channels is None else channels
    return LayerTrace(
        name="conv",
        kind="conv",
        in_channels=channels,
        out_channels=filters,
        kernel_size=kernel,
        stride=1,
        padding=kernel // 2,
        groups=groups,
        input_hw=(size, size),
        output_hw=(size, size),
        weight_shape=(filters, channels // groups, kernel, kernel),
        has_bias=False,
    )


def linear_trace(in_features=256, out_features=10):
    return LayerTrace(
        name="fc",
        kind="linear",
        in_channels=in_features,
        out_channels=out_features,
        kernel_size=1,
        stride=1,
        padding=0,
        groups=1,
        input_hw=(1, 1),
        output_hw=(1, 1),
        weight_shape=(out_features, in_features),
        has_bias=True,
    )


class TestDevices:
    def test_table2_parameters(self):
        assert MC_LARGE.sram_bytes == 128 * 1024
        assert MC_LARGE.flash_bytes == 1024 * 1024
        assert MC_LARGE.freq_mhz == 120.0
        assert MC_SMALL.sram_bytes == 20 * 1024
        assert MC_SMALL.flash_bytes == 128 * 1024
        assert MC_SMALL.freq_mhz == 72.0

    def test_cycles_to_seconds(self):
        assert MC_LARGE.cycles_to_seconds(120e6) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            MC_LARGE.cycles_to_seconds(-1)

    def test_available_memory_excludes_reserves(self):
        assert MC_LARGE.available_flash_bytes < MC_LARGE.flash_bytes
        assert MC_SMALL.available_sram_bytes < MC_SMALL.sram_bytes

    def test_cost_table_validation(self):
        with pytest.raises(ValueError):
            CycleCosts(sram_load=0)
        with pytest.raises(ValueError):
            CycleCosts(flash_rand_load=1.0, flash_seq_load=2.0)
        with pytest.raises(ValueError):
            MCUDevice(name="x", part="y", sram_bytes=0, flash_bytes=1, freq_mhz=1)


class TestCmsisKernel:
    def test_cost_scales_linearly_with_macs(self):
        small = cmsis_conv_cycles(conv_trace(filters=32), MC_LARGE)
        large = cmsis_conv_cycles(conv_trace(filters=64), MC_LARGE)
        # Doubling the filters doubles the MACs (channels held at 32 vs 64 changes
        # both, so compare fixed-channel variants).
        a = cmsis_conv_cycles(conv_trace(filters=32, channels=64), MC_LARGE)
        b = cmsis_conv_cycles(conv_trace(filters=64, channels=64), MC_LARGE)
        assert b / a == pytest.approx(2.0, rel=0.05)
        assert large > small

    def test_effective_cycles_per_mac_is_plausible(self):
        trace = conv_trace(filters=128)
        cycles = cmsis_conv_cycles(trace, MC_LARGE)
        assert 2.0 < cycles / trace.macs < 8.0

    def test_linear_kernel(self):
        cycles = cmsis_linear_cycles(linear_trace(), MC_LARGE)
        assert cycles > 0

    def test_kind_validation(self):
        with pytest.raises(ValueError):
            cmsis_conv_cycles(linear_trace(), MC_LARGE)
        with pytest.raises(ValueError):
            cmsis_linear_cycles(conv_trace(), MC_LARGE)


class TestBitSerialKernelConfig:
    def test_precompute_rule_follows_paper(self):
        config = BitSerialKernelConfig(pool_size=64)
        assert not config.uses_precompute(32)
        assert not config.uses_precompute(64)
        assert config.uses_precompute(128)
        assert BitSerialKernelConfig(precompute="always").uses_precompute(8)
        assert not BitSerialKernelConfig(precompute="never").uses_precompute(512)

    def test_validation(self):
        with pytest.raises(ValueError):
            BitSerialKernelConfig(pool_size=0)
        with pytest.raises(ValueError):
            BitSerialKernelConfig(activation_bitwidth=9)
        with pytest.raises(ValueError):
            BitSerialKernelConfig(precompute="sometimes")


class TestBitSerialKernel:
    def test_breakdown_sums_to_total(self):
        trace = conv_trace(filters=128)
        config = BitSerialKernelConfig()
        breakdown = bitserial_layer_breakdown(trace, config, MC_LARGE)
        assert breakdown.total == pytest.approx(
            bitserial_conv_cycles(trace, config, MC_LARGE)
        )
        assert breakdown.used_precompute

    def test_cost_monotone_in_bitwidth(self):
        """DESIGN invariant 6 (bitwidth part)."""
        trace = conv_trace(filters=64)
        costs = [
            bitserial_conv_cycles(
                trace, BitSerialKernelConfig(activation_bitwidth=b), MC_LARGE
            )
            for b in range(1, 9)
        ]
        assert all(a < b for a, b in zip(costs, costs[1:]))

    def test_cost_monotone_in_filters(self):
        costs = [
            bitserial_conv_cycles(conv_trace(filters=f, channels=64), BitSerialKernelConfig(), MC_LARGE)
            for f in (16, 32, 64, 128)
        ]
        assert all(a < b for a, b in zip(costs, costs[1:]))

    def test_lut_caching_helps_when_flash_is_slower(self):
        """DESIGN invariant 6 (caching part): caching never hurts for realistic layers."""
        for filters in (32, 64, 128, 192):
            trace = conv_trace(filters=filters)
            cached = bitserial_conv_cycles(
                trace, BitSerialKernelConfig(lut_caching=True, precompute="never"), MC_LARGE
            )
            uncached = bitserial_conv_cycles(
                trace, BitSerialKernelConfig(lut_caching=False, precompute="never"), MC_LARGE
            )
            assert cached <= uncached

    def test_caching_benefit_grows_with_filters(self):
        def speedup(filters):
            trace = conv_trace(filters=filters)
            base = bitserial_conv_cycles(
                trace, BitSerialKernelConfig(lut_caching=False, precompute="never"), MC_LARGE
            )
            cached = bitserial_conv_cycles(
                trace, BitSerialKernelConfig(lut_caching=True, precompute="never"), MC_LARGE
            )
            return base / cached

        assert speedup(192) > speedup(64) > speedup(32) > 1.0

    def test_precompute_helps_only_above_pool_size(self):
        """Figure 7's crossover: precompute pays off when filters > pool size."""
        config_never = BitSerialKernelConfig(precompute="never")
        config_always = BitSerialKernelConfig(precompute="always")
        narrow = conv_trace(filters=32)
        wide = conv_trace(filters=192)
        assert bitserial_conv_cycles(narrow, config_always, MC_LARGE) > bitserial_conv_cycles(
            narrow, config_never, MC_LARGE
        )
        assert bitserial_conv_cycles(wide, config_always, MC_LARGE) < bitserial_conv_cycles(
            wide, config_never, MC_LARGE
        )

    def test_naive_unpacking_is_much_slower(self):
        """§4.1: repeating bit unpacking per filter wrecks the runtime."""
        trace = conv_trace(filters=128)
        shared = bitserial_conv_cycles(
            trace, BitSerialKernelConfig(share_unpacking=True), MC_LARGE
        )
        naive = bitserial_conv_cycles(
            trace, BitSerialKernelConfig(share_unpacking=False), MC_LARGE
        )
        assert naive > 2.0 * shared

    def test_speedup_vs_cmsis_grows_with_layer_width(self):
        """Table 7 trend: weight pools help more on wider layers."""
        def speedup(filters):
            trace = conv_trace(filters=filters)
            return cmsis_conv_cycles(trace, MC_LARGE) / bitserial_conv_cycles(
                trace, BitSerialKernelConfig(), MC_LARGE
            )

        assert speedup(192) > speedup(128) > speedup(32)
        assert speedup(192) > 2.0  # paper: 2.38x at 8 bits for wide layers

    def test_linear_kernel_costs(self):
        config = BitSerialKernelConfig()
        cycles = bitserial_linear_cycles(linear_trace(), config, MC_LARGE)
        assert cycles > 0
        with pytest.raises(ValueError):
            bitserial_linear_cycles(conv_trace(), config, MC_LARGE)

    def test_conv_kind_validation(self):
        with pytest.raises(ValueError):
            bitserial_conv_cycles(linear_trace(), BitSerialKernelConfig(), MC_LARGE)

    @given(
        filters=st.sampled_from([16, 32, 64, 128]),
        bits=st.integers(1, 8),
        caching=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_costs_positive_and_finite(self, filters, bits, caching):
        trace = conv_trace(filters=filters)
        config = BitSerialKernelConfig(activation_bitwidth=bits, lut_caching=caching)
        cycles = bitserial_conv_cycles(trace, config, MC_LARGE)
        assert np.isfinite(cycles) and cycles > 0


class TestMemoization:
    def test_expected_unique_indices_saturates_at_pool_size(self):
        assert expected_unique_indices(64, 0) == 0
        assert expected_unique_indices(64, 10**6) == pytest.approx(64, rel=1e-6)
        assert 0 < expected_unique_indices(64, 64) < 64

    def test_memoization_beats_no_reuse_for_wide_layers(self):
        trace = conv_trace(filters=256)
        base = bitserial_conv_cycles(
            trace, BitSerialKernelConfig(precompute="never"), MC_LARGE
        )
        memo = memoized_conv_cycles(trace, BitSerialKernelConfig(), MC_LARGE)
        assert memo < base

    def test_precompute_beats_memoization_for_wide_layers(self):
        """Paper §4.3: precomputation wins, which is why it is the default."""
        trace = conv_trace(filters=256)
        pre = bitserial_conv_cycles(
            trace, BitSerialKernelConfig(precompute="always"), MC_LARGE
        )
        memo = memoized_conv_cycles(trace, BitSerialKernelConfig(), MC_LARGE)
        assert pre < memo

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_unique_indices(0, 5)
        with pytest.raises(ValueError):
            memoized_conv_cycles(linear_trace(), BitSerialKernelConfig(), MC_LARGE)
