"""Tests for the standalone C source bundle (MCU deployment path).

The bundle reuses the O4 emitter in standalone mode to lower *every* step
of a planned program — including the float convolutions the host backend
keeps on NumPy — into self-contained C99.  Structure and counters are
checked everywhere; on hosts with a C compiler the bundle is additionally
compiled and run against the plan backend (float tolerance end to end,
exact argmax — the float conv loop nests sum in a different order than
BLAS, which is the documented numerics contract of standalone mode).
"""

import struct
import subprocess

import numpy as np
import pytest

from repro.core import (
    BitSerialInferenceEngine,
    CompressionPolicy,
    EngineConfig,
    Executor,
    compile_network,
    compress_model,
)
from repro.core.codegen.build import CFLAGS, find_compiler
from repro.mcu import build_source_bundle, write_source_bundle
from repro.models import create_model
from repro.nn import DataLoader
from repro.nn.data.dataset import ArrayDataset

needs_cc = pytest.mark.skipif(
    find_compiler() is None, reason="no host C compiler available"
)


@pytest.fixture(scope="module")
def program():
    model = create_model("resnet14_tiny", num_classes=10, in_channels=3, rng=0)
    result = compress_model(
        model, (3, 32, 32), pool_size=16,
        policy=CompressionPolicy(group_size=8), seed=0,
    )
    engine = BitSerialInferenceEngine(
        result.model, result.pool, EngineConfig(lut_bitwidth=8, calibration_batches=2)
    )
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(32, 3, 32, 32))
    targets = rng.integers(0, 10, size=32)
    engine.calibrate(DataLoader(ArrayDataset(inputs, targets), batch_size=16))
    return compile_network(
        engine.model, (3, 32, 32),
        lut=engine.lut,
        activation_params=engine.activation_params,
        level="O2",
    )


def test_bundle_structure_and_counters(program):
    bundle = build_source_bundle(program)
    assert set(bundle.files) == {"model.c", "weights.c", "model.h", "main.c"}
    assert bundle.entry == "repro_net_run"
    assert bundle.input_elems == 3 * 32 * 32
    assert bundle.output_elems == 10
    assert bundle.arena_bytes > 0
    assert bundle.consts_bytes > 0
    # Standalone mode lowers the whole schedule into a single segment — no
    # step is left on the host.
    assert bundle.counters["segments"] == 1
    assert bundle.counters["native_steps"] == bundle.counters["steps"]
    assert "void repro_net_run(const double* input, double* output)" in (
        bundle.files["model.c"]
    )
    assert f"repro_consts[{bundle.consts_bytes}]" in bundle.files["weights.c"]
    assert f"#define REPRO_INPUT_ELEMS {bundle.input_elems}" in bundle.files["model.h"]


def test_bundle_emission_is_deterministic(program):
    first = build_source_bundle(program)
    second = build_source_bundle(program)
    assert first.files == second.files


def test_write_source_bundle(program, tmp_path):
    bundle = write_source_bundle(program, tmp_path / "bundle")
    for name in bundle.files:
        assert (tmp_path / "bundle" / name).read_text() == bundle.files[name]


@needs_cc
def test_bundle_compiles_and_matches_plan_backend(program, tmp_path):
    bundle = write_source_bundle(program, tmp_path)
    exe = tmp_path / "net"
    sources = [str(tmp_path / name) for name in ("model.c", "weights.c", "main.c")]
    flags = [f for f in CFLAGS if f not in ("-fPIC", "-shared")]
    subprocess.run(
        [find_compiler(), *flags, "-o", str(exe), *sources, "-lm"],
        check=True, capture_output=True, text=True,
    )

    # Oracle: the plan backend at the bundle's own configuration (tile 1).
    oracle = Executor(program, backend="plan", tile=1, n_shards=1)
    rng = np.random.default_rng(3)
    for trial in range(3):
        sample = np.ascontiguousarray(rng.normal(size=(3, 32, 32)))
        proc = subprocess.run(
            [str(exe)], input=sample.tobytes(), capture_output=True, check=True
        )
        got = np.frombuffer(proc.stdout, dtype=np.float64)
        assert got.shape == (bundle.output_elems,)
        expected = oracle.run(sample[None])[0]
        # Float conv loop nests reorder the BLAS reductions: tolerance for
        # the logits, exact agreement on the prediction.
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-12)
        assert int(got.argmax()) == int(expected.argmax()), f"trial {trial}"
