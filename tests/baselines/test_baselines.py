"""Tests for the CMSIS-like int8 pipeline and binarized-network baselines."""

import numpy as np
import pytest

from repro.baselines import (
    BinaryActivation,
    BinaryConv2d,
    BinaryLinear,
    binarize_model,
    binary_network_storage_bits,
    quantize_model_int8,
)
from repro.baselines.bnn import binarize_weights
from repro.baselines.cmsis import Int8Conv2d, Int8Linear
from repro.models import create_model
from repro.nn import Conv2d, DataLoader, Linear
from repro.nn.data.dataset import ArrayDataset


@pytest.fixture()
def calibration_loader():
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(32, 3, 32, 32))
    targets = rng.integers(0, 10, size=32)
    return DataLoader(ArrayDataset(inputs, targets), batch_size=16)


class TestInt8Pipeline:
    def test_quantize_model_replaces_layers(self, small_model, calibration_loader):
        quantized = quantize_model_int8(small_model, (3, 32, 32), calibration_loader)
        assert any(isinstance(m, Int8Conv2d) for m in quantized.modules())
        assert any(isinstance(m, Int8Linear) for m in quantized.modules())
        # Original model untouched.
        assert not any(isinstance(m, Int8Conv2d) for m in small_model.modules())

    def test_quantized_model_output_close_to_float(self, small_model, calibration_loader):
        small_model.eval()
        x = np.random.default_rng(1).normal(size=(4, 3, 32, 32))
        float_out = small_model(x)
        quantized = quantize_model_int8(small_model, (3, 32, 32), calibration_loader)
        quantized.eval()
        int8_out = quantized(x)
        correlation = np.corrcoef(float_out.ravel(), int8_out.ravel())[0, 1]
        assert correlation > 0.98

    def test_int8_conv_weights_are_quantized(self):
        conv = Conv2d(4, 8, 3, rng=0)
        int8 = Int8Conv2d(conv)
        unique_levels = np.unique(int8._quantized_weight)
        assert len(unique_levels) <= 256

    def test_int8_layers_are_inference_only(self):
        conv = Int8Conv2d(Conv2d(4, 8, 3, rng=0))
        with pytest.raises(NotImplementedError):
            conv.backward(np.zeros((1, 8, 1, 1)))
        linear = Int8Linear(Linear(4, 2, rng=0))
        with pytest.raises(NotImplementedError):
            linear.backward(np.zeros((1, 2)))


class TestBinarization:
    def test_binarize_weights_values(self):
        weight = np.array([[[[0.5, -0.25]]], [[[1.0, 2.0]]]])
        binary = binarize_weights(weight)
        np.testing.assert_allclose(np.abs(binary[0]), 0.375)
        np.testing.assert_allclose(np.abs(binary[1]), 1.5)
        assert np.all(np.sign(binary[weight != 0]) == np.sign(weight[weight != 0]))

    def test_binary_conv_uses_two_levels_per_filter(self):
        conv = BinaryConv2d(4, 3, 3, rng=0)
        conv(np.random.default_rng(0).normal(size=(1, 4, 5, 5)))
        weight = conv._cache[2]
        for f in range(3):
            assert len(np.unique(np.abs(weight[f]))) == 1

    def test_binary_conv_backward_updates_latent_weights(self):
        conv = BinaryConv2d(4, 3, 3, padding=1, rng=0)
        x = np.random.default_rng(1).normal(size=(2, 4, 5, 5))
        out = conv(x)
        conv.backward(np.ones_like(out))
        assert np.abs(conv.weight.grad).sum() > 0

    def test_binary_activation_sign_and_ste(self):
        act = BinaryActivation()
        x = np.array([[-0.5, 0.2, 2.0]])
        np.testing.assert_array_equal(act(x), [[-1.0, 1.0, 1.0]])
        grad = act.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, [[1.0, 1.0, 0.0]])

    def test_binarize_model_keeps_first_and_last_full_precision(self, small_model):
        binarized = binarize_model(small_model, (3, 32, 32))
        from repro.core.tracing import trace_model

        traces = trace_model(binarized, (3, 32, 32))
        assert not isinstance(traces[0].module, BinaryConv2d)
        assert not isinstance(traces[-1].module, (BinaryLinear,))
        assert any(isinstance(t.module, BinaryConv2d) for t in traces)

    def test_binary_storage_is_much_smaller_than_int8(self, small_model):
        int8_bits = small_model.num_parameters() * 8
        binarized = binarize_model(small_model, (3, 32, 32))
        binary_bits = binary_network_storage_bits(binarized, (3, 32, 32))
        assert binary_bits < int8_bits / 3

    def test_binarized_model_still_classifies(self, small_model):
        binarized = binarize_model(small_model, (3, 32, 32))
        binarized.eval()
        out = binarized(np.zeros((2, 3, 32, 32)))
        assert out.shape == (2, 10)
        assert np.all(np.isfinite(out))

    def test_binarized_model_can_learn_a_toy_problem(self):
        """Binarized TinyConv should train (even if it ends up less accurate)."""
        from repro.nn import SGD, CrossEntropyLoss

        model = create_model("tinyconv_tiny", num_classes=3, in_channels=1, rng=0)
        binarized = binarize_model(model, (1, 32, 32))
        rng = np.random.default_rng(0)
        x = rng.normal(size=(12, 1, 32, 32)) + np.repeat(np.arange(3), 4).reshape(-1, 1, 1, 1)
        y = np.repeat(np.arange(3), 4)
        loss_fn = CrossEntropyLoss()
        optimizer = SGD(binarized.parameters(), lr=0.05, momentum=0.9)
        initial = loss_fn(binarized(x), y)
        for _ in range(20):
            optimizer.zero_grad()
            loss = loss_fn(binarized(x), y)
            binarized.backward(loss_fn.backward())
            optimizer.step()
        assert loss_fn(binarized(x), y) < initial
