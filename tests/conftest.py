"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CompressionPolicy, compress_model
from repro.core.weight_pool import WeightPool
from repro.datasets import SyntheticCIFAR10, make_classification_split
from repro.models import create_model
from repro.nn import DataLoader


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_cifar():
    """A very small synthetic CIFAR-like train/test split shared across tests."""
    return make_classification_split(
        SyntheticCIFAR10, train_per_class=6, test_per_class=4, seed=0, noise_std=0.4
    )


@pytest.fixture(scope="session")
def tiny_loaders(tiny_cifar):
    train_ds, test_ds = tiny_cifar
    return (
        DataLoader(train_ds, batch_size=16, shuffle=True, rng=0),
        DataLoader(test_ds, batch_size=16),
    )


@pytest.fixture(scope="session")
def small_pool(rng) -> WeightPool:
    """A 16-entry pool of 8-element vectors used by unit tests."""
    return WeightPool(vectors=np.random.default_rng(3).normal(size=(16, 8)))


@pytest.fixture()
def small_model():
    """A small untrained model with layers eligible for compression."""
    return create_model("resnet_s_tiny", num_classes=10, in_channels=3, rng=0)


@pytest.fixture()
def compressed_small_model(small_model):
    """The small model compressed with a 16-entry pool (no fine-tuning)."""
    return compress_model(
        small_model,
        (3, 32, 32),
        pool_size=16,
        policy=CompressionPolicy(group_size=8),
        seed=0,
    )
