"""Tests for the experiment infrastructure (results, scales, cheap runners).

Training-heavy runners (tables 1, 4, 5, 6, figure 4, section 5.5) are
exercised by the benchmark harness; here we test the shared infrastructure and
the analytical runners that need no training.
"""

import pytest

from repro.experiments import ExperimentResult, SCALES, get_scale
from repro.experiments import ablations, figure7, figure8, table3, table7
from repro.experiments.scale import ExperimentScale


class TestExperimentResult:
    def _result(self):
        result = ExperimentResult(
            experiment_id="tX", title="demo", headers=["name", "value"], scale="tiny"
        )
        result.add_row("a", 1.0)
        result.add_row("b", None)
        result.add_note("a note")
        return result

    def test_table_rendering(self):
        text = self._result().to_table()
        assert "tX: demo" in text
        assert "note: a note" in text
        assert "/" in text  # None rendered as slash

    def test_column_extraction(self):
        assert self._result().column("name") == ["a", "b"]
        with pytest.raises(KeyError):
            self._result().column("missing")

    def test_row_by(self):
        assert self._result().row_by("name", "a")[1] == 1.0
        with pytest.raises(KeyError):
            self._result().row_by("name", "zzz")


class TestScales:
    def test_presets_exist(self):
        assert set(SCALES) == {"tiny", "small", "full"}

    def test_get_scale_by_name_and_passthrough(self):
        tiny = get_scale("tiny")
        assert get_scale(tiny) is tiny
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_scales_are_ordered_by_size(self):
        assert SCALES["tiny"].train_per_class < SCALES["small"].train_per_class
        assert SCALES["small"].train_per_class < SCALES["full"].train_per_class

    def test_model_name_suffix(self):
        assert SCALES["tiny"].model_name("resnet10") == "resnet10_tiny"
        assert SCALES["full"].model_name("resnet10") == "resnet10"

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(
                name="bad", train_per_class=0, test_per_class=1, cifar_classes=10,
                quickdraw_classes=10, image_size=32, pretrain_epochs=1,
                finetune_epochs=1, batch_size=8, calibration_batches=1, model_suffix="",
            )


class TestAnalyticalRunners:
    """Runners that use only the cost model / storage accounting (no training)."""

    def test_figure7_shapes(self):
        result = figure7.run(filter_counts=(32, 64, 128, 192))
        caching = result.column("caching speedup")
        precompute = result.column("precompute+caching speedup")
        # Caching speedup grows with filter count; precompute only engages > pool size.
        assert caching == sorted(caching)
        assert precompute[-1] > caching[-1]
        assert precompute[0] == pytest.approx(caching[0], rel=1e-6)
        assert all(s >= 1.0 for s in caching)

    def test_figure8_shapes(self):
        result = figure8.run(bitwidths=(8, 4, 1))
        no_pre = result.column("speedup (no precompute)")
        pre = result.column("speedup (precompute)")
        assert no_pre[0] == pytest.approx(1.0)
        assert pre[0] == pytest.approx(1.0)
        # Lower bitwidth -> faster, and truncation helps more without precompute.
        assert no_pre[-1] > no_pre[1] > no_pre[0]
        assert no_pre[-1] > pre[-1]

    def test_table3_compression_trends(self):
        result = table3.run()
        networks = result.column("network")
        ratios = dict(zip(networks, result.column("CR")))
        overheads = dict(zip(networks, result.column("LUT overhead (%)")))
        # Paper Table 3 trends: CR grows with network size, LUT overhead shrinks.
        assert ratios["ResNet-14"] > ratios["ResNet-10"] > ratios["ResNet-s"]
        assert ratios["ResNet-14"] > 6.5
        assert overheads["TinyConv"] > overheads["ResNet-14"]

    def test_table7_fit_and_speedups(self):
        result = table7.run()
        large_rows = [r for r in result.rows if r[0] == "MC-large"]
        by_network = {row[1]: row for row in large_rows}
        # ResNet-14 and MobileNet-v2 do not fit in flash without compression.
        assert by_network["ResNet-14"][2] is None
        assert by_network["MobileNet-v2"][2] is None
        assert by_network["ResNet-14"][3] is not None
        # ResNet-10: weight pools are faster than CMSIS, and min-bitwidth is faster still.
        resnet10 = by_network["ResNet-10"]
        assert resnet10[3] < resnet10[2]
        assert resnet10[4] < resnet10[3]
        # MC-small only carries the two smallest networks.
        small_rows = [r for r in result.rows if r[0] == "MC-small"]
        assert {row[1] for row in small_rows} == {"TinyConv", "ResNet-s"}

    def test_ablation_memoization(self):
        result = ablations.run_memoization(filter_counts=(32, 128, 256))
        pre = result.column("precompute speedup")
        memo = result.column("memoization speedup")
        # For wide layers precomputation wins (the paper's choice).
        assert pre[-1] > memo[-1] > 1.0

    def test_ablation_lut_layout(self):
        result = ablations.run_lut_layout(filter_counts=(64, 192))
        speedups = result.column("speedup")
        # The cacheable (input-oriented) layout never loses; the relative gain
        # shrinks once precomputation bounds the number of lookups per group.
        assert all(s >= 1.0 for s in speedups)

    def test_ablation_index_bitwidth(self):
        result = ablations.run_index_bitwidth(index_bitwidths=(6, 8, 16))
        ratios = result.column("compression ratio")
        assert ratios[0] > ratios[1] > ratios[2]
