"""Gradient checks and behavioural tests for every layer."""

import numpy as np
import pytest

from repro import nn
from repro.nn.gradcheck import check_module_gradients


class TestConv2d:
    def test_gradients(self):
        conv = nn.Conv2d(3, 5, 3, stride=1, padding=1, rng=0)
        x = np.random.default_rng(0).normal(size=(2, 3, 5, 5))
        check_module_gradients(conv, x)

    def test_gradients_strided_no_bias(self):
        conv = nn.Conv2d(4, 2, 3, stride=2, padding=0, bias=False, rng=1)
        x = np.random.default_rng(1).normal(size=(2, 4, 7, 7))
        check_module_gradients(conv, x)

    def test_gradients_depthwise(self):
        conv = nn.Conv2d(4, 4, 3, stride=1, padding=1, groups=4, rng=2)
        x = np.random.default_rng(2).normal(size=(1, 4, 5, 5))
        check_module_gradients(conv, x)

    def test_output_shape_helper(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=0)
        assert conv.output_shape((32, 32)) == (16, 16)

    def test_depthwise_and_pointwise_flags(self):
        assert nn.Conv2d(8, 8, 3, groups=8).is_depthwise
        assert not nn.Conv2d(8, 8, 3).is_depthwise
        assert nn.Conv2d(8, 16, 1).is_pointwise
        assert not nn.Conv2d(8, 16, 3).is_pointwise

    def test_invalid_groups_rejected(self):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 4, 3, groups=2)

    def test_backward_before_forward_raises(self):
        conv = nn.Conv2d(3, 4, 3)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 4, 3, 3)))

    def test_records_last_input_shape(self):
        conv = nn.Conv2d(3, 4, 3, padding=1, rng=0)
        conv(np.zeros((2, 3, 8, 8)))
        assert conv.last_input_shape == (2, 3, 8, 8)


class TestLinear:
    def test_gradients(self):
        linear = nn.Linear(6, 4, rng=0)
        x = np.random.default_rng(0).normal(size=(3, 6))
        check_module_gradients(linear, x)

    def test_gradients_no_bias(self):
        linear = nn.Linear(5, 2, bias=False, rng=1)
        x = np.random.default_rng(1).normal(size=(4, 5))
        check_module_gradients(linear, x)

    def test_rejects_wrong_feature_count(self):
        linear = nn.Linear(4, 2)
        with pytest.raises(ValueError):
            linear(np.zeros((1, 5)))

    def test_rejects_non_2d_input(self):
        linear = nn.Linear(4, 2)
        with pytest.raises(ValueError):
            linear(np.zeros((1, 4, 1)))


class TestBatchNorm2d:
    def test_gradients_training_mode(self):
        bn = nn.BatchNorm2d(3)
        x = np.random.default_rng(0).normal(size=(4, 3, 4, 4))
        check_module_gradients(bn, x)

    def test_normalises_batch_statistics(self):
        bn = nn.BatchNorm2d(2)
        x = np.random.default_rng(1).normal(loc=3.0, scale=2.0, size=(8, 2, 6, 6))
        out = bn(x)
        assert abs(out.mean()) < 1e-8
        assert abs(out.std() - 1.0) < 1e-2

    def test_running_stats_update_and_eval_use(self):
        bn = nn.BatchNorm2d(2, momentum=1.0)
        x = np.random.default_rng(2).normal(loc=1.0, size=(16, 2, 4, 4))
        bn(x)
        np.testing.assert_allclose(bn.running_mean, x.mean(axis=(0, 2, 3)), atol=1e-10)
        bn.eval()
        out = bn(np.zeros((1, 2, 4, 4)))
        assert np.all(np.isfinite(out))

    def test_eval_mode_gradients(self):
        bn = nn.BatchNorm2d(3)
        # Populate running stats first, then check eval-mode gradients.
        bn(np.random.default_rng(3).normal(size=(4, 3, 4, 4)))
        bn.eval()
        x = np.random.default_rng(4).normal(size=(2, 3, 4, 4))
        check_module_gradients(bn, x)

    def test_fold_into_scale_shift(self):
        bn = nn.BatchNorm2d(3, momentum=1.0)
        x = np.random.default_rng(5).normal(size=(8, 3, 4, 4))
        bn(x)
        bn.eval()
        scale, shift = bn.fold_into_conv_scale_shift()
        expected = bn(x)
        folded = x * scale.reshape(1, -1, 1, 1) + shift.reshape(1, -1, 1, 1)
        np.testing.assert_allclose(folded, expected, atol=1e-8)

    def test_rejects_wrong_channel_count(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(3)(np.zeros((1, 4, 2, 2)))


class TestActivations:
    def test_relu_forward_and_gradients(self):
        relu = nn.ReLU()
        x = np.array([[-1.0, 0.5], [2.0, -3.0]])
        np.testing.assert_array_equal(relu(x), [[0.0, 0.5], [2.0, 0.0]])
        check_module_gradients(nn.ReLU(), np.random.default_rng(0).normal(size=(3, 4)) + 0.1)

    def test_relu6_clips(self):
        relu6 = nn.ReLU6()
        x = np.array([[-1.0, 3.0, 9.0]])
        np.testing.assert_array_equal(relu6(x), [[0.0, 3.0, 6.0]])

    def test_relu6_gradients(self):
        check_module_gradients(nn.ReLU6(), np.random.default_rng(1).normal(size=(3, 4)) * 3 + 0.05)

    def test_identity_passthrough(self):
        identity = nn.Identity()
        x = np.random.default_rng(2).normal(size=(2, 3))
        np.testing.assert_array_equal(identity(x), x)
        np.testing.assert_array_equal(identity.backward(x), x)


class TestPooling:
    def test_maxpool_forward(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = nn.MaxPool2d(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradients(self):
        check_module_gradients(nn.MaxPool2d(2), np.random.default_rng(0).normal(size=(2, 3, 4, 4)))

    def test_avgpool_forward(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = nn.AvgPool2d(2)(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_gradients(self):
        check_module_gradients(nn.AvgPool2d(2), np.random.default_rng(1).normal(size=(2, 3, 6, 6)))

    def test_global_avgpool(self):
        x = np.random.default_rng(2).normal(size=(2, 3, 4, 5))
        out = nn.GlobalAvgPool2d()(x)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))
        check_module_gradients(nn.GlobalAvgPool2d(), x)

    def test_pooling_rejects_indivisible_input(self):
        with pytest.raises(ValueError):
            nn.MaxPool2d(3)(np.zeros((1, 1, 4, 4)))


class TestContainers:
    def test_sequential_forward_backward(self):
        seq = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, rng=0),
            nn.BatchNorm2d(4),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.Linear(4 * 2 * 2, 3, rng=1),
        )
        x = np.random.default_rng(0).normal(size=(2, 3, 4, 4))
        check_module_gradients(seq, x)

    def test_sequential_indexing_and_iteration(self):
        seq = nn.Sequential(nn.ReLU(), nn.Flatten())
        assert len(seq) == 2
        assert isinstance(seq[0], nn.ReLU)
        assert [type(m).__name__ for m in seq] == ["ReLU", "Flatten"]

    def test_sequential_append(self):
        seq = nn.Sequential(nn.ReLU())
        seq.append(nn.Flatten())
        assert len(seq) == 2

    def test_flatten_roundtrip(self):
        flatten = nn.Flatten()
        x = np.random.default_rng(1).normal(size=(2, 3, 4, 4))
        out = flatten(x)
        assert out.shape == (2, 48)
        assert flatten.backward(out).shape == x.shape
