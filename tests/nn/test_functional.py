"""Tests for the vectorised functional primitives against loop references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


def reference_conv2d(x, weight, bias, stride, padding, groups=1):
    """Straightforward loop implementation used as the gold standard."""
    n, c, h, w = x.shape
    f, c_per_group, kh, kw = weight.shape
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    x_pad = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, f, oh, ow))
    f_per_group = f // groups
    for ni in range(n):
        for fi in range(f):
            g = fi // f_per_group
            for oi in range(oh):
                for oj in range(ow):
                    patch = x_pad[
                        ni,
                        g * c_per_group : (g + 1) * c_per_group,
                        oi * stride : oi * stride + kh,
                        oj * stride : oj * stride + kw,
                    ]
                    out[ni, fi, oi, oj] = (patch * weight[fi]).sum()
            if bias is not None:
                out[ni, fi] += bias[fi]
    return out


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 3, 2, 1) == 16
        assert F.conv_output_size(5, 5, 1, 0) == 1

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_shape(self):
        x = np.arange(2 * 3 * 5 * 5, dtype=float).reshape(2, 3, 5, 5)
        cols = F.im2col(x, (3, 3), stride=1, padding=1)
        assert cols.shape == (2, 27, 25)

    def test_identity_kernel_recovers_pixels(self):
        x = np.random.default_rng(0).normal(size=(1, 2, 4, 4))
        cols = F.im2col(x, (1, 1), stride=1, padding=0)
        np.testing.assert_allclose(cols.reshape(1, 2, 16), x.reshape(1, 2, 16))

    def test_col2im_is_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> for random x, y (adjointness).
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 6, 6))
        cols = F.im2col(x, (3, 3), stride=2, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = F.col2im(y, x.shape, (3, 3), stride=2, padding=1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2dForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 2)])
    def test_matches_reference(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out, _ = F.conv2d_forward(x, w, b, stride, padding)
        np.testing.assert_allclose(out, reference_conv2d(x, w, b, stride, padding), atol=1e-10)

    def test_grouped_matches_reference(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 4, 6, 6))
        w = rng.normal(size=(4, 1, 3, 3))  # depthwise
        out, _ = F.conv2d_forward(x, w, None, 1, 1, groups=4)
        np.testing.assert_allclose(
            out, reference_conv2d(x, w, None, 1, 1, groups=4), atol=1e-10
        )

    def test_1x1_conv(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 8, 4, 4))
        w = rng.normal(size=(5, 8, 1, 1))
        out, _ = F.conv2d_forward(x, w, None, 1, 0)
        expected = np.einsum("nchw,fc->nfhw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_rejects_bad_group_config(self):
        x = np.zeros((1, 3, 4, 4))
        w = np.zeros((4, 1, 3, 3))
        with pytest.raises(ValueError):
            F.conv2d_forward(x, w, None, 1, 1, groups=3)

    def test_rejects_channel_mismatch(self):
        x = np.zeros((1, 4, 4, 4))
        w = np.zeros((4, 3, 3, 3))
        with pytest.raises(ValueError):
            F.conv2d_forward(x, w, None, 1, 1, groups=1)

    @given(
        n=st.integers(1, 2),
        c=st.integers(1, 4),
        f=st.integers(1, 4),
        size=st.integers(3, 8),
        stride=st.integers(1, 2),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_matches_reference(self, n, c, f, size, stride):
        rng = np.random.default_rng(n * 100 + c * 10 + f)
        x = rng.normal(size=(n, c, size, size))
        w = rng.normal(size=(f, c, 3, 3))
        out, _ = F.conv2d_forward(x, w, None, stride, 1)
        np.testing.assert_allclose(out, reference_conv2d(x, w, None, stride, 1), atol=1e-9)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(5, 7)) * 10
        probs = F.softmax(logits, axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-12)

    def test_stability_with_large_values(self):
        logits = np.array([[1000.0, 1000.0]])
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_log_softmax_consistency(self):
        logits = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_allclose(
            F.log_softmax(logits), np.log(F.softmax(logits)), atol=1e-12
        )
