"""Tests for losses, optimizers and learning-rate schedulers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.gradcheck import numerical_gradient
from repro.nn.parameter import Parameter


class TestCrossEntropyLoss:
    def test_matches_manual_computation(self):
        logits = np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]]))
        targets = np.array([0, 1])
        loss = nn.CrossEntropyLoss()(logits, targets)
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        assert loss == pytest.approx(expected, rel=1e-10)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 5))
        targets = np.array([0, 2, 4, 1])
        loss_fn = nn.CrossEntropyLoss()
        loss_fn(logits, targets)
        analytic = loss_fn.backward()
        numeric = numerical_gradient(lambda z: nn.CrossEntropyLoss()(z, targets), logits.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)

    def test_label_smoothing_increases_loss_of_confident_prediction(self):
        logits = np.array([[10.0, -10.0]])
        targets = np.array([0])
        plain = nn.CrossEntropyLoss()(logits, targets)
        smoothed = nn.CrossEntropyLoss(label_smoothing=0.2)(logits, targets)
        assert smoothed > plain

    def test_rejects_bad_targets(self):
        loss = nn.CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss(np.zeros((2, 3)), np.array([0, 3]))
        with pytest.raises(ValueError):
            loss(np.zeros((2, 3)), np.array([0]))

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss(label_smoothing=1.0)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            nn.CrossEntropyLoss().backward()


class TestSGD:
    def _param(self, value):
        return Parameter(np.array(value, dtype=float))

    def test_plain_gradient_step(self):
        p = self._param([1.0, 2.0])
        opt = nn.SGD([p], lr=0.1)
        p.grad[:] = [1.0, -1.0]
        opt.step()
        np.testing.assert_allclose(p.data, [0.9, 2.1])

    def test_momentum_accumulates(self):
        p = self._param([0.0])
        opt = nn.SGD([p], lr=1.0, momentum=0.5)
        p.grad[:] = [1.0]
        opt.step()  # velocity = 1, p = -1
        p.grad[:] = [1.0]
        opt.step()  # velocity = 1.5, p = -2.5
        np.testing.assert_allclose(p.data, [-2.5])

    def test_weight_decay_pulls_towards_zero(self):
        p = self._param([1.0])
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        p.grad[:] = [0.0]
        opt.step()
        assert p.data[0] < 1.0

    def test_non_trainable_parameters_untouched(self):
        p = Parameter(np.array([1.0]), trainable=False)
        opt = nn.SGD([p], lr=0.1)
        p.grad[:] = [1.0]
        opt.step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_zero_grad(self):
        p = self._param([1.0])
        opt = nn.SGD([p], lr=0.1)
        p.grad[:] = [5.0]
        opt.zero_grad()
        np.testing.assert_allclose(p.grad, [0.0])

    def test_validation(self):
        p = self._param([1.0])
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)
        with pytest.raises(ValueError):
            nn.SGD([p], lr=-1.0)
        with pytest.raises(ValueError):
            nn.SGD([p], lr=0.1, nesterov=True)

    def test_state_dict_roundtrip(self):
        p = self._param([1.0])
        opt = nn.SGD([p], lr=0.1, momentum=0.9)
        p.grad[:] = [1.0]
        opt.step()
        state = opt.state_dict()
        opt2 = nn.SGD([p], lr=0.1, momentum=0.9)
        opt2.load_state_dict(state)
        np.testing.assert_allclose(opt2._velocity[0], opt._velocity[0])

    def test_sgd_minimises_quadratic(self):
        p = self._param([5.0])
        opt = nn.SGD([p], lr=0.1, momentum=0.9)
        for _ in range(300):
            opt.zero_grad()
            p.grad[:] = 2 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 1e-3


class TestSchedulers:
    def _opt(self):
        return nn.SGD([Parameter(np.zeros(1))], lr=1.0)

    def test_step_lr(self):
        opt = self._opt()
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_multistep_lr(self):
        opt = self._opt()
        sched = nn.MultiStepLR(opt, milestones=[2, 4], gamma=0.5)
        lrs = [sched.step() for _ in range(5)]
        np.testing.assert_allclose(lrs, [1.0, 0.5, 0.5, 0.25, 0.25])

    def test_cosine_annealing_endpoints(self):
        opt = self._opt()
        sched = nn.CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < 1.0
        assert lrs[-1] == pytest.approx(0.1)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_scheduler_updates_optimizer(self):
        opt = self._opt()
        sched = nn.StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        assert opt.lr == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            nn.StepLR(self._opt(), step_size=0)
        with pytest.raises(ValueError):
            nn.CosineAnnealingLR(self._opt(), t_max=0)
