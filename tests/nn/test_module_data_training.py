"""Tests for the Module base class, data pipeline, metrics and trainer."""

import numpy as np
import pytest

from repro import nn
from repro.nn.parameter import Parameter
from repro.nn.training.metrics import accuracy, top_k_accuracy
from repro.nn.training.trainer import evaluate_model


class _ToyModel(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 8, rng=0)
        self.act = nn.ReLU()
        self.fc2 = nn.Linear(8, 3, rng=1)

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))

    def backward(self, grad):
        return self.fc1.backward(self.act.backward(self.fc2.backward(grad)))


class TestModule:
    def test_parameter_registration(self):
        model = _ToyModel()
        names = [name for name, _ in model.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names
        assert len(model.parameters()) == 4

    def test_num_parameters(self):
        model = _ToyModel()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 3 + 3

    def test_train_eval_propagates(self):
        model = _ToyModel()
        model.eval()
        assert not model.fc1.training
        model.train()
        assert model.fc2.training

    def test_zero_grad(self):
        model = _ToyModel()
        model.fc1.weight.grad[:] = 1.0
        model.zero_grad()
        assert np.all(model.fc1.weight.grad == 0)

    def test_state_dict_roundtrip(self):
        model = _ToyModel()
        state = model.state_dict()
        other = _ToyModel()
        other.load_state_dict(state)
        np.testing.assert_array_equal(other.fc1.weight.data, model.fc1.weight.data)

    def test_state_dict_missing_key_raises(self):
        model = _ToyModel()
        state = model.state_dict()
        state.pop("fc1.weight")
        with pytest.raises(KeyError):
            _ToyModel().load_state_dict(state)

    def test_state_dict_unexpected_key_raises(self):
        model = _ToyModel()
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            _ToyModel().load_state_dict(state)

    def test_state_dict_includes_bn_buffers(self):
        bn = nn.BatchNorm2d(3)
        assert "running_mean" in bn.state_dict()

    def test_named_modules_traversal(self):
        model = _ToyModel()
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "fc1" in names

    def test_parameter_shape_mismatch_rejected(self):
        param = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            param.copy_(np.zeros(3))
        with pytest.raises(ValueError):
            param.accumulate_grad(np.zeros(3))


class TestDataPipeline:
    def test_array_dataset_len_and_getitem(self):
        ds = nn.ArrayDataset(np.arange(12).reshape(6, 2), np.arange(6))
        assert len(ds) == 6
        x, y = ds[2]
        np.testing.assert_array_equal(x, [4, 5])
        assert y == 2

    def test_array_dataset_length_mismatch(self):
        with pytest.raises(ValueError):
            nn.ArrayDataset(np.zeros((3, 2)), np.zeros(4))

    def test_subset(self):
        ds = nn.ArrayDataset(np.arange(10).reshape(10, 1), np.arange(10))
        sub = nn.Subset(ds, [1, 3, 5])
        assert len(sub) == 3
        assert sub[1][1] == 3

    def test_subset_out_of_range(self):
        ds = nn.ArrayDataset(np.zeros((3, 1)), np.zeros(3))
        with pytest.raises(IndexError):
            nn.Subset(ds, [5])

    def test_dataloader_batching(self):
        ds = nn.ArrayDataset(np.arange(10).reshape(10, 1), np.arange(10))
        loader = nn.DataLoader(ds, batch_size=3)
        batches = list(loader)
        assert len(batches) == 4
        assert len(loader) == 4
        assert batches[-1][0].shape[0] == 1

    def test_dataloader_drop_last(self):
        ds = nn.ArrayDataset(np.arange(10).reshape(10, 1), np.arange(10))
        loader = nn.DataLoader(ds, batch_size=3, drop_last=True)
        assert len(loader) == 3
        assert all(x.shape[0] == 3 for x, _ in loader)

    def test_dataloader_shuffle_is_seeded(self):
        ds = nn.ArrayDataset(np.arange(10).reshape(10, 1), np.arange(10))
        first = [y.tolist() for _, y in nn.DataLoader(ds, batch_size=10, shuffle=True, rng=3)]
        second = [y.tolist() for _, y in nn.DataLoader(ds, batch_size=10, shuffle=True, rng=3)]
        assert first == second
        assert first[0] != list(range(10))

    def test_dataloader_covers_all_samples_when_shuffled(self):
        ds = nn.ArrayDataset(np.arange(20).reshape(20, 1), np.arange(20))
        loader = nn.DataLoader(ds, batch_size=6, shuffle=True, rng=0)
        seen = sorted(int(y) for _, ys in loader for y in ys)
        assert seen == list(range(20))

    def test_dataloader_rejects_bad_batch_size(self):
        ds = nn.ArrayDataset(np.zeros((3, 1)), np.zeros(3))
        with pytest.raises(ValueError):
            nn.DataLoader(ds, batch_size=0)


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_top_k(self):
        logits = np.array([[3.0, 2.0, 1.0, 0.0]])
        assert top_k_accuracy(logits, np.array([2]), k=3) == 1.0
        assert top_k_accuracy(logits, np.array([3]), k=3) == 0.0

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((1, 2)), np.zeros(1), k=3)


class TestTrainer:
    def _toy_classification(self, n=120, seed=0):
        rng = np.random.default_rng(seed)
        centers = rng.normal(size=(3, 4)) * 3
        labels = rng.integers(0, 3, size=n)
        inputs = centers[labels] + rng.normal(scale=0.5, size=(n, 4))
        return nn.ArrayDataset(inputs, labels)

    def test_training_reduces_loss_and_learns(self):
        ds = self._toy_classification()
        loader = nn.DataLoader(ds, batch_size=16, shuffle=True, rng=0)
        model = _ToyModel()
        trainer = nn.Trainer(model, nn.SGD(model.parameters(), lr=0.1, momentum=0.9))
        history = trainer.fit(loader, nn.TrainConfig(epochs=8))
        assert history[-1].train_loss < history[0].train_loss
        assert trainer.evaluate(nn.DataLoader(ds, batch_size=32)) > 0.8

    def test_after_forward_hook_called(self):
        ds = self._toy_classification(n=32)
        loader = nn.DataLoader(ds, batch_size=16)
        model = _ToyModel()
        calls = []
        trainer = nn.Trainer(
            model,
            nn.SGD(model.parameters(), lr=0.05),
            after_forward=lambda m: calls.append(m),
        )
        trainer.fit(loader, nn.TrainConfig(epochs=1))
        assert len(calls) == len(loader)

    def test_history_records_validation_accuracy(self):
        ds = self._toy_classification(n=48)
        loader = nn.DataLoader(ds, batch_size=16)
        model = _ToyModel()
        trainer = nn.Trainer(model, nn.SGD(model.parameters(), lr=0.05))
        history = trainer.fit(loader, nn.TrainConfig(epochs=1), val_loader=loader)
        assert history[0].val_accuracy is not None

    def test_evaluate_model_helper(self):
        ds = self._toy_classification(n=32)
        model = _ToyModel()
        acc = evaluate_model(model, nn.DataLoader(ds, batch_size=8))
        assert 0.0 <= acc <= 1.0
