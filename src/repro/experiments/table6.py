"""Table 6: inference accuracy vs. activation bitwidth, plus the minimum bitwidth.

The paper sweeps the activation bitwidth from 8 down to 3 bits (LUT fixed at
8 bits, pool 64) and reports, per network, the minimum bitwidth whose accuracy
drop against the float weight-pool network stays below 1 %.  (The bracketed
numbers in the paper are after quantization-aware retraining; this runner
reports post-training accuracy and exposes retraining as follow-up work in
EXPERIMENTS.md.)
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core import EngineConfig
from repro.experiments._cli import run_cli
from repro.experiments.common import (
    NETWORK_DATASETS,
    calibrated_engine,
    compress_and_finetune,
    pretrained_model,
    test_loader_for,
)
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import get_scale

PAPER_MIN_BITWIDTH = {
    "resnet_s": 4,
    "resnet10": 4,
    "resnet14": 3,
    "tinyconv": 4,
    "mobilenetv2": 5,
}


def run(
    scale="tiny",
    seed: int = 0,
    activation_bitwidths: Sequence[int] = (8, 7, 6, 5, 4, 3),
    pool_size: int = 64,
    lut_bitwidth: int = 8,
    max_drop: float = 0.01,
    networks: Optional[Sequence[Tuple[str, str]]] = None,
) -> ExperimentResult:
    """Reproduce Table 6 at the given scale."""
    scale = get_scale(scale)
    networks = tuple(networks) if networks is not None else NETWORK_DATASETS
    headers = ["network", "dataset", "float pool (%)"]
    headers += [f"{b}-bit (%)" for b in activation_bitwidths]
    headers += ["min bitwidth (<1% drop)", "paper min bitwidth"]
    result = ExperimentResult(
        experiment_id="table6",
        title="Accuracy vs. activation bitwidth (8-bit LUT, pool 64)",
        headers=headers,
        scale=scale.name,
    )

    for paper_name, dataset in networks:
        pretrained = pretrained_model(paper_name, dataset, scale, seed)
        compressed, float_accuracy = compress_and_finetune(
            pretrained, scale, pool_size=pool_size, seed=seed
        )
        loader = test_loader_for(pretrained, scale, seed)
        engine = calibrated_engine(
            compressed,
            pretrained,
            scale,
            EngineConfig(
                activation_bitwidth=max(activation_bitwidths),
                lut_bitwidth=lut_bitwidth,
                calibration_batches=scale.calibration_batches,
            ),
            seed=seed,
        )
        row = [paper_name, dataset, float_accuracy * 100.0]
        accuracies = {}
        for bitwidth in sorted(activation_bitwidths, reverse=True):
            engine.set_activation_bitwidth(bitwidth)
            accuracies[bitwidth] = engine.evaluate(loader)
        for bitwidth in activation_bitwidths:
            row.append(accuracies[bitwidth] * 100.0)
        # Minimum bitwidth with <1% drop, derived from the sweep just measured
        # (same protocol as repro.analysis.find_min_activation_bitwidth, without
        # re-running the evaluations).
        min_bitwidth = None
        for bitwidth in sorted(accuracies, reverse=True):
            if float_accuracy - accuracies[bitwidth] <= max_drop:
                min_bitwidth = bitwidth
            else:
                break
        row.append(min_bitwidth)
        row.append(PAPER_MIN_BITWIDTH.get(paper_name))
        result.add_row(*row)
        result.extras[paper_name] = accuracies

    result.add_note(
        "post-training quantization only (the paper's bracketed numbers additionally retrain "
        "with quantized activations)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run_cli(run, __doc__)
