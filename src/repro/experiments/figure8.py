"""Figure 8: speedup vs. activation bitwidth (the arbitrary-precision knob).

For a 128-filter / 128-channel 3x3 layer (16x16 input, pool 64) the paper
reports the speedup of each activation bitwidth relative to the 8-bit
bit-serial implementation, (a) without and (b) with precomputation.  Without
precomputation the speedup scales almost linearly (bounded by the fixed bit
unpacking cost); with precomputation the filter-loop lookups do not shrink
with the bitwidth, so the curve saturates.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments._cli import run_cli
from repro.experiments.figure7 import synthetic_layer
from repro.experiments.result import ExperimentResult
from repro.mcu import MC_LARGE, BitSerialKernelConfig, MCUDevice
from repro.mcu.kernels.bitserial import bitserial_conv_cycles

PAPER_SPEEDUPS_NO_PRECOMPUTE = {8: 1.0, 7: 1.1, 6: 1.25, 5: 1.45, 4: 1.7, 3: 2.1, 2: 2.7, 1: 3.9}
PAPER_SPEEDUPS_PRECOMPUTE = {8: 1.0, 7: 1.1, 6: 1.2, 5: 1.35, 4: 1.5, 3: 1.7, 2: 2.0, 1: 2.3}


def run(
    scale="tiny",
    seed: int = 0,
    bitwidths: Sequence[int] = (8, 7, 6, 5, 4, 3, 2, 1),
    filters: int = 128,
    pool_size: int = 64,
    device: MCUDevice = MC_LARGE,
) -> ExperimentResult:
    """Reproduce Figure 8 (analytical cost model; scale-independent)."""
    result = ExperimentResult(
        experiment_id="figure8",
        title="Speedup vs. activation bitwidth (128-filter layer, relative to 8-bit)",
        headers=[
            "activation bits",
            "speedup (no precompute)",
            "speedup (precompute)",
            "paper (no precompute)",
            "paper (precompute)",
        ],
        scale="cost model (scale-independent)",
    )
    trace = synthetic_layer(filters)
    reference = {}
    for precompute in ("never", "always"):
        reference[precompute] = bitserial_conv_cycles(
            trace,
            BitSerialKernelConfig(
                pool_size=pool_size, activation_bitwidth=8, precompute=precompute
            ),
            device,
        )
    for bits in bitwidths:
        cycles_no_pre = bitserial_conv_cycles(
            trace,
            BitSerialKernelConfig(pool_size=pool_size, activation_bitwidth=bits, precompute="never"),
            device,
        )
        cycles_pre = bitserial_conv_cycles(
            trace,
            BitSerialKernelConfig(pool_size=pool_size, activation_bitwidth=bits, precompute="always"),
            device,
        )
        result.add_row(
            bits,
            reference["never"] / cycles_no_pre,
            reference["always"] / cycles_pre,
            PAPER_SPEEDUPS_NO_PRECOMPUTE.get(bits),
            PAPER_SPEEDUPS_PRECOMPUTE.get(bits),
        )
    result.add_note(f"device={device.name}; input 16x16, channels = filters = {filters}")
    return result


if __name__ == "__main__":  # pragma: no cover
    run_cli(run, __doc__)
