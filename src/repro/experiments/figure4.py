"""Figure 4: z-dimension pools vs. xy-dimension (2D-kernel) pools.

The paper shows that, on ResNet-14 / CIFAR-10, clustering along the channel
dimension (z) matches or beats clustering 3x3 kernels *with* per-kernel
scaling coefficients, and clearly beats kernel clustering *without*
coefficients — while needing no coefficient storage (which is what lifts the
compression ratio from 4.5x to 8x).

This runner evaluates all variants as pure weight projections (no
fine-tuning) so the comparison isolates representational power; the paper
fine-tunes all variants, which shifts absolute numbers but not the ordering.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.batchnorm import recalibrate_batchnorm
from repro.core import CompressionPolicy, apply_xy_pool_to_model, compress_model
from repro.experiments._cli import run_cli
from repro.experiments.common import dataset_pair, loaders_for, pretrained_model, test_loader_for
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import get_scale
from repro.nn.training.trainer import evaluate_model

PAPER_NETWORK = "resnet14"
PAPER_DATASET = "cifar10"


def run(
    scale="tiny",
    seed: int = 0,
    xy_pool_sizes: Sequence[int] = (16, 32, 64),
    z_pool_sizes: Sequence[int] = (32, 64, 128),
    group_size: int = 8,
) -> ExperimentResult:
    """Reproduce Figure 4 at the given scale."""
    scale = get_scale(scale)
    result = ExperimentResult(
        experiment_id="figure4",
        title="Weight-pool variants: xy kernels (±coeff) vs. z-dimension vectors",
        headers=["setup", "pool size", "accuracy (%)", "accuracy drop (pp)"],
        scale=scale.name,
    )
    pretrained = pretrained_model(PAPER_NETWORK, PAPER_DATASET, scale, seed)
    loader = test_loader_for(pretrained, scale, seed)
    train_ds, test_ds = dataset_pair(PAPER_DATASET, scale, seed)
    train_loader, _ = loaders_for(train_ds, test_ds, scale, seed)
    original = pretrained.accuracy * 100.0
    result.add_row("original", "-", original, 0.0)

    def projection_accuracy(model) -> float:
        # Projected weights invalidate BatchNorm statistics; refresh them so
        # every variant is evaluated under the same conditions.
        recalibrate_batchnorm(model, train_loader, num_batches=scale.calibration_batches)
        return evaluate_model(model, loader) * 100.0

    for pool_size in xy_pool_sizes:
        for with_coeff in (False, True):
            xy = apply_xy_pool_to_model(
                pretrained.model,
                pretrained.input_shape,
                pool_size=pool_size,
                with_coefficients=with_coeff,
                seed=seed,
            )
            accuracy = projection_accuracy(xy.model)
            label = f"xy_{pool_size}" + ("_coeff" if with_coeff else "")
            result.add_row(label, pool_size, accuracy, original - accuracy)

    for pool_size in z_pool_sizes:
        compressed = compress_model(
            pretrained.model,
            pretrained.input_shape,
            pool_size=pool_size,
            policy=CompressionPolicy(group_size=group_size),
            seed=seed,
        )
        accuracy = projection_accuracy(compressed.model)
        result.add_row(f"z_{pool_size}_g{group_size}", pool_size, accuracy, original - accuracy)

    result.add_note(
        "projection-only accuracy (no fine-tuning) on the synthetic CIFAR-10 substitute; "
        "the paper's Figure 4 fine-tunes every variant"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run_cli(run, __doc__)
