"""Scale presets for the experiment runners.

NumPy-on-CPU cannot train the paper's full-size networks on full datasets in a
benchmark run, so every experiment accepts a scale preset:

* ``tiny``  — default for ``pytest benchmarks/``; small synthetic datasets and
  width-reduced model variants.  Captures qualitative trends in seconds-to-
  minutes per experiment.
* ``small`` — more data and epochs, same reduced models.
* ``full``  — the paper's model sizes and 100-class Quickdraw substitute.
  Provided for completeness; expect hours on CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling dataset size, model size, and training length."""

    name: str
    train_per_class: int
    test_per_class: int
    cifar_classes: int
    quickdraw_classes: int
    image_size: int
    pretrain_epochs: int
    finetune_epochs: int
    batch_size: int
    calibration_batches: int
    model_suffix: str  # appended to registry names ("_tiny" or "")
    default_pool_size: int = 64
    # Synthetic-task difficulty: higher noise keeps the uncompressed accuracy
    # away from 100 % so compression-induced drops remain measurable.  The
    # sketch-style Quickdraw substitute is more noise-sensitive than the
    # CIFAR-like task, so the two get separate settings.
    cifar_noise_std: float = 0.45
    quickdraw_noise_std: float = 0.3
    instance_strength: float = 0.5

    def __post_init__(self) -> None:
        if self.train_per_class < 1 or self.test_per_class < 1:
            raise ValueError("per-class sample counts must be positive")
        if self.image_size % 8:
            raise ValueError("image_size must be divisible by 8 (TinyConv pooling)")

    def model_name(self, paper_name: str) -> str:
        """Registry name of the model variant used at this scale."""
        return f"{paper_name}{self.model_suffix}"


SCALES: Dict[str, ExperimentScale] = {
    "tiny": ExperimentScale(
        name="tiny",
        train_per_class=28,
        test_per_class=16,
        cifar_classes=10,
        quickdraw_classes=10,
        image_size=32,
        pretrain_epochs=5,
        finetune_epochs=3,
        batch_size=32,
        calibration_batches=2,
        model_suffix="_tiny",
    ),
    "small": ExperimentScale(
        name="small",
        train_per_class=100,
        test_per_class=40,
        cifar_classes=10,
        quickdraw_classes=20,
        image_size=32,
        pretrain_epochs=10,
        finetune_epochs=4,
        batch_size=64,
        calibration_batches=3,
        model_suffix="_tiny",
    ),
    "full": ExperimentScale(
        name="full",
        train_per_class=500,
        test_per_class=100,
        cifar_classes=10,
        quickdraw_classes=100,
        image_size=32,
        pretrain_epochs=40,
        finetune_epochs=10,
        batch_size=128,
        calibration_batches=4,
        model_suffix="",
    ),
}


def get_scale(scale: Union[str, ExperimentScale]) -> ExperimentScale:
    """Resolve a scale preset by name (or pass through an explicit preset)."""
    if isinstance(scale, ExperimentScale):
        return scale
    if scale not in SCALES:
        raise KeyError(f"unknown scale '{scale}'; available: {', '.join(SCALES)}")
    return SCALES[scale]
