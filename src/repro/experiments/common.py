"""Shared infrastructure for the experiment runners.

Responsibilities:

* build the synthetic datasets used at a given scale (CIFAR-10 and
  Quickdraw-100 substitutes),
* pretrain the paper's networks once per (network, dataset, scale, seed)
  tuple, caching results on disk so that the many tables sharing a pretrained
  model do not repeat the work,
* compress + fine-tune weight-pool models,
* assemble calibrated bit-serial inference engines.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.batchnorm import recalibrate_batchnorm
from repro.core import (
    BitSerialInferenceEngine,
    CompressionPolicy,
    CompressionResult,
    EngineConfig,
    compress_model,
    finetune_compressed_model,
)
from repro.datasets import SyntheticCIFAR10, SyntheticQuickDraw, make_classification_split
from repro.models import create_model
from repro.nn import DataLoader, Module, SGD, TrainConfig, Trainer
from repro.nn.optim.scheduler import CosineAnnealingLR
from repro.nn.training.trainer import evaluate_model
from repro.experiments.scale import ExperimentScale, get_scale

# Paper §5.1: the five network–dataset combinations of the evaluation.
NETWORK_DATASETS = (
    ("resnet_s", "cifar10"),
    ("resnet10", "cifar10"),
    ("resnet14", "cifar10"),
    ("tinyconv", "quickdraw"),
    ("mobilenetv2", "quickdraw"),
)

_DATASET_CACHE: Dict[tuple, tuple] = {}
_MODEL_CACHE: Dict[tuple, tuple] = {}

CACHE_DIR = Path(__file__).resolve().parents[3] / ".cache" / "pretrained"


# ---------------------------------------------------------------------------
# Datasets
# ---------------------------------------------------------------------------
def dataset_pair(kind: str, scale, seed: int = 0):
    """Train/test synthetic datasets for ``kind`` in {"cifar10", "quickdraw"}."""
    scale = get_scale(scale)
    key = (kind, scale.name, seed)
    if key in _DATASET_CACHE:
        return _DATASET_CACHE[key]
    if kind == "cifar10":
        train, test = make_classification_split(
            SyntheticCIFAR10,
            train_per_class=scale.train_per_class,
            test_per_class=scale.test_per_class,
            seed=seed,
            num_classes=scale.cifar_classes,
            image_size=scale.image_size,
            noise_std=scale.cifar_noise_std,
            instance_strength=scale.instance_strength,
        )
    elif kind == "quickdraw":
        train, test = make_classification_split(
            SyntheticQuickDraw,
            train_per_class=scale.train_per_class,
            test_per_class=scale.test_per_class,
            seed=seed + 1,
            num_classes=scale.quickdraw_classes,
            image_size=scale.image_size,
            noise_std=scale.quickdraw_noise_std,
            instance_strength=scale.instance_strength,
        )
    else:
        raise ValueError(f"unknown dataset kind '{kind}' (expected 'cifar10' or 'quickdraw')")
    _DATASET_CACHE[key] = (train, test)
    return train, test


def loaders_for(train_ds, test_ds, scale, seed: int = 0) -> Tuple[DataLoader, DataLoader]:
    scale = get_scale(scale)
    train_loader = DataLoader(train_ds, batch_size=scale.batch_size, shuffle=True, rng=seed)
    test_loader = DataLoader(test_ds, batch_size=scale.batch_size, shuffle=False)
    return train_loader, test_loader


def dataset_num_classes(kind: str, scale) -> int:
    scale = get_scale(scale)
    return scale.cifar_classes if kind == "cifar10" else scale.quickdraw_classes


def dataset_channels(kind: str) -> int:
    return 3 if kind == "cifar10" else 1


# ---------------------------------------------------------------------------
# Pretraining with a disk cache
# ---------------------------------------------------------------------------
@dataclass
class PretrainedModel:
    """A pretrained float model plus its held-out accuracy."""

    model: Module
    accuracy: float
    paper_name: str
    dataset: str
    input_shape: Tuple[int, int, int]


def _cache_key(paper_name: str, kind: str, scale: ExperimentScale, seed: int) -> str:
    payload = json.dumps(
        {
            "paper_name": paper_name,
            "dataset": kind,
            "scale": scale.name,
            "train_per_class": scale.train_per_class,
            "classes": dataset_num_classes(kind, scale),
            "image_size": scale.image_size,
            "epochs": scale.pretrain_epochs,
            "suffix": scale.model_suffix,
            "noise_std": scale.cifar_noise_std if kind == "cifar10" else scale.quickdraw_noise_std,
            "instance_strength": scale.instance_strength,
            "seed": seed,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _build_model(paper_name: str, kind: str, scale: ExperimentScale, seed: int) -> Module:
    num_classes = dataset_num_classes(kind, scale)
    return create_model(
        scale.model_name(paper_name),
        num_classes=num_classes,
        in_channels=dataset_channels(kind),
        rng=seed,
    )


def pretrained_model(
    paper_name: str,
    kind: str,
    scale,
    seed: int = 0,
    use_disk_cache: bool = True,
) -> PretrainedModel:
    """Return a pretrained model for ``paper_name`` on dataset ``kind``.

    Results are cached in memory and (optionally) on disk under ``.cache/`` so
    repeated experiment runs reuse the same pretrained checkpoints.
    """
    scale = get_scale(scale)
    mem_key = (paper_name, kind, scale.name, seed)
    if mem_key in _MODEL_CACHE:
        return _MODEL_CACHE[mem_key]

    train_ds, test_ds = dataset_pair(kind, scale, seed)
    train_loader, test_loader = loaders_for(train_ds, test_ds, scale, seed)
    input_shape = train_ds.input_shape
    model = _build_model(paper_name, kind, scale, seed)

    cache_file = CACHE_DIR / f"{paper_name}_{kind}_{_cache_key(paper_name, kind, scale, seed)}.npz"
    if use_disk_cache and cache_file.exists():
        data = np.load(cache_file, allow_pickle=False)
        state = {key: data[key] for key in data.files if key != "__accuracy__"}
        model.load_state_dict(state)
        accuracy = float(data["__accuracy__"])
        result = PretrainedModel(model, accuracy, paper_name, kind, input_shape)
        _MODEL_CACHE[mem_key] = result
        return result

    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
    scheduler = CosineAnnealingLR(optimizer, t_max=max(scale.pretrain_epochs, 1))
    trainer = Trainer(model, optimizer, scheduler=scheduler)
    trainer.fit(train_loader, TrainConfig(epochs=scale.pretrain_epochs))
    accuracy = evaluate_model(model, test_loader)

    if use_disk_cache:
        CACHE_DIR.mkdir(parents=True, exist_ok=True)
        state = model.state_dict()
        np.savez(cache_file, __accuracy__=np.array(accuracy), **state)

    result = PretrainedModel(model, accuracy, paper_name, kind, input_shape)
    _MODEL_CACHE[mem_key] = result
    return result


# ---------------------------------------------------------------------------
# Compression + fine-tuning + engines
# ---------------------------------------------------------------------------
def compress_and_finetune(
    pretrained: PretrainedModel,
    scale,
    pool_size: int = 64,
    group_size: int = 8,
    seed: int = 0,
    finetune: bool = True,
    policy: Optional[CompressionPolicy] = None,
) -> Tuple[CompressionResult, float]:
    """Compress a pretrained model and (optionally) fine-tune the indices.

    Returns the compression result and the compressed model's test accuracy.
    """
    scale = get_scale(scale)
    policy = policy or CompressionPolicy(group_size=group_size)
    train_ds, test_ds = dataset_pair(pretrained.dataset, scale, seed)
    train_loader, test_loader = loaders_for(train_ds, test_ds, scale, seed)

    result = compress_model(
        pretrained.model,
        pretrained.input_shape,
        pool_size=pool_size,
        policy=policy,
        seed=seed,
    )
    if finetune and scale.finetune_epochs > 0:
        finetune_compressed_model(
            result.model,
            train_loader,
            epochs=scale.finetune_epochs,
            lr=0.01,
            val_loader=None,
        )
    else:
        # Projection-only evaluation: refresh the BatchNorm statistics, which
        # the weight replacement invalidates (fine-tuning does this implicitly).
        recalibrate_batchnorm(result.model, train_loader, num_batches=scale.calibration_batches)
    # Fine-tuning ends with one final index reassignment; refresh BN statistics
    # for the deployed (reconstructed) weights before measuring accuracy.
    recalibrate_batchnorm(result.model, train_loader, num_batches=scale.calibration_batches)
    accuracy = evaluate_model(result.model, test_loader)
    return result, accuracy


def calibrated_engine(
    result: CompressionResult,
    pretrained: PretrainedModel,
    scale,
    config: Optional[EngineConfig] = None,
    seed: int = 0,
) -> BitSerialInferenceEngine:
    """Build and calibrate a bit-serial engine for a compressed model."""
    scale = get_scale(scale)
    config = config or EngineConfig(calibration_batches=scale.calibration_batches)
    train_ds, _ = dataset_pair(pretrained.dataset, scale, seed)
    train_loader = DataLoader(train_ds, batch_size=scale.batch_size, shuffle=True, rng=seed + 7)
    engine = BitSerialInferenceEngine(result.model, result.pool, config)
    engine.calibrate(train_loader, batches=scale.calibration_batches)
    return engine


def test_loader_for(pretrained: PretrainedModel, scale, seed: int = 0) -> DataLoader:
    """The held-out loader matching a pretrained model's dataset."""
    scale = get_scale(scale)
    _, test_ds = dataset_pair(pretrained.dataset, scale, seed)
    return DataLoader(test_ds, batch_size=scale.batch_size, shuffle=False)
