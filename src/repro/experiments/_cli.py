"""Tiny argparse helper shared by the ``python -m repro.experiments.tableN`` entry points."""

from __future__ import annotations

import argparse
from typing import Callable

from repro.experiments.result import ExperimentResult


def run_cli(run: Callable[..., ExperimentResult], description: str) -> ExperimentResult:
    """Parse ``--scale``/``--seed`` and execute an experiment runner."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--scale", default="tiny", help="experiment scale preset (tiny/small/full)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args()
    result = run(scale=args.scale, seed=args.seed)
    print(result.to_table())
    return result
