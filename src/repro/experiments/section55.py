"""Section 5.5: comparison with binarized networks.

The paper notes that binarized networks reach a similar theoretical
compression ratio but lose far more accuracy: a binarized TinyConv reaches
66.9 % on CIFAR-10 versus 81.2 % for the weight-pool version.  This runner
trains both variants from the same pretrained TinyConv on the synthetic
CIFAR-10 substitute and compares accuracy and storage.
"""

from __future__ import annotations

import copy

from repro.baselines import binarize_model, binary_network_storage_bits
from repro.core import CompressionPolicy, analyze_model_storage
from repro.experiments._cli import run_cli
from repro.experiments.common import (
    compress_and_finetune,
    dataset_pair,
    loaders_for,
    pretrained_model,
)
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import get_scale
from repro.nn import SGD, TrainConfig, Trainer
from repro.nn.training.trainer import evaluate_model

PAPER_RESULTS = {"binarized": 66.9, "weight pool": 81.2}


def run(
    scale="tiny",
    seed: int = 0,
    pool_size: int = 64,
) -> ExperimentResult:
    """Reproduce the §5.5 comparison at the given scale."""
    scale = get_scale(scale)
    result = ExperimentResult(
        experiment_id="section55",
        title="Weight pools vs. binarized networks (TinyConv / CIFAR-10)",
        headers=["variant", "accuracy (%)", "weight storage (KiB)", "paper accuracy (%)"],
        scale=scale.name,
    )
    pretrained = pretrained_model("tinyconv", "cifar10", scale, seed)
    train_ds, test_ds = dataset_pair("cifar10", scale, seed)
    train_loader, test_loader = loaders_for(train_ds, test_ds, scale, seed)
    input_shape = pretrained.input_shape

    # Float reference.
    float_storage = analyze_model_storage(
        pretrained.model, input_shape, policy=CompressionPolicy()
    )
    result.add_row("original (8-bit)", pretrained.accuracy * 100.0,
                   float_storage.baseline_bits / 8.0 / 1024.0, None)

    # Weight-pool variant.
    compressed, wp_accuracy = compress_and_finetune(
        pretrained, scale, pool_size=pool_size, seed=seed
    )
    wp_storage = analyze_model_storage(
        compressed.model, input_shape, pool=compressed.pool, index_bitwidth=8
    )
    result.add_row(
        f"weight pool ({pool_size})",
        wp_accuracy * 100.0,
        wp_storage.compressed_bytes / 1024.0,
        PAPER_RESULTS["weight pool"],
    )

    # Binarized variant: binarize the pretrained weights and retrain with STE
    # for the same number of epochs the weight-pool variant was fine-tuned.
    # Every layer is binarized (as in the fully-binarized 3PXNet comparison the
    # paper cites); keeping the first/last layer full precision would make the
    # baseline stronger than the one the paper measured.
    binarized = binarize_model(
        copy.deepcopy(pretrained.model), input_shape, keep_first_last_full_precision=False
    )
    epochs = max(scale.finetune_epochs, 1)
    optimizer = SGD(binarized.parameters(), lr=0.01, momentum=0.9)
    Trainer(binarized, optimizer).fit(train_loader, TrainConfig(epochs=epochs))
    binarized.eval()
    bnn_accuracy = evaluate_model(binarized, test_loader)
    bnn_storage_bits = binary_network_storage_bits(binarized, input_shape)
    result.add_row(
        "binarized (1-bit weights)",
        bnn_accuracy * 100.0,
        bnn_storage_bits / 8.0 / 1024.0,
        PAPER_RESULTS["binarized"],
    )

    result.add_note(
        "binarized variant keeps the first and last layer full precision (standard BNN practice); "
        "expect the weight-pool variant to retain clearly more accuracy at comparable storage"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run_cli(run, __doc__)
