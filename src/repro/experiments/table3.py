"""Table 3: total parameters, compression ratio and LUT overhead per network.

Storage accounting is independent of training, so this runner always uses the
paper-sized networks (TinyConv, ResNet-s, ResNet-10, ResNet-14, MobileNet-v2)
with the paper's deployment choices: 64-entry pool, group size 8, 8-bit LUT,
8-bit index storage, first/depthwise/FC layers uncompressed.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core import CompressionPolicy, analyze_model_storage
from repro.experiments._cli import run_cli
from repro.experiments.result import ExperimentResult
from repro.models import create_model

# (paper name, registry name, dataset classes, input channels)
PAPER_NETWORKS: Tuple[Tuple[str, str, int, int], ...] = (
    ("TinyConv", "tinyconv", 100, 1),
    ("ResNet-s", "resnet_s", 10, 3),
    ("ResNet-10", "resnet10", 10, 3),
    ("ResNet-14", "resnet14", 10, 3),
    ("MobileNet-v2", "mobilenetv2", 100, 3),
)

PAPER_RESULTS = {
    "TinyConv": (81600, 2.32, 29.8),
    "ResNet-s": (170928, 4.43, 29.7),
    "ResNet-10": (665280, 6.51, 13.8),
    "ResNet-14": (2729664, 7.55, 4.3),
    "MobileNet-v2": (2249792, 6.22, 4.5),
}


def run(
    scale="tiny",
    seed: int = 0,
    pool_size: int = 64,
    group_size: int = 8,
    index_bitwidth: int = 8,
    lut_bitwidth: int = 8,
    image_size: int = 32,
    networks: Sequence[Tuple[str, str, int, int]] = PAPER_NETWORKS,
) -> ExperimentResult:
    """Reproduce Table 3 (always on the full-size networks)."""
    result = ExperimentResult(
        experiment_id="table3",
        title="Compression ratio and LUT overhead (pool 64, group 8, 8-bit LUT)",
        headers=[
            "network",
            "total params",
            "CR",
            "LUT overhead (%)",
            "paper params",
            "paper CR",
            "paper LUT overhead (%)",
        ],
        scale="full-size models (scale-independent)",
    )
    policy = CompressionPolicy(group_size=group_size)
    for paper_name, registry_name, num_classes, channels in networks:
        model = create_model(registry_name, num_classes=num_classes, in_channels=channels, rng=seed)
        report = analyze_model_storage(
            model,
            (channels, image_size, image_size),
            policy=policy,
            pool_size=pool_size,
            index_bitwidth=index_bitwidth,
            lut_bitwidth=lut_bitwidth,
        )
        paper = PAPER_RESULTS.get(paper_name, (None, None, None))
        result.add_row(
            paper_name,
            report.total_params,
            report.compression_ratio,
            report.lut_overhead * 100.0,
            paper[0],
            paper[1],
            paper[2],
        )
    result.add_note(
        f"index storage {index_bitwidth}-bit, LUT {lut_bitwidth}-bit; parameter counts differ "
        "slightly from the paper because the exact CIFAR/Quickdraw adaptations are not published"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run_cli(run, __doc__)
