"""Table 7: full-network inference latency on both microcontrollers.

For every network the paper reports the latency (seconds) of the CMSIS 8-bit
baseline and of weight-pool deployments with pool sizes 64 and 32, each at
8-bit and at the minimum activation bitwidth from Table 6.  Networks that do
not fit the device's flash are marked "/".  MC-small only fits the two
smallest networks.

This runner uses the analytical MCU cost model on the paper-sized networks
(latency estimation needs no training); see DESIGN.md §2 for the fidelity
caveats — the headline comparisons are the *ratios* between columns.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments._cli import run_cli
from repro.experiments.result import ExperimentResult
from repro.mcu import (
    MC_LARGE,
    MC_SMALL,
    BitSerialKernelConfig,
    MCUDevice,
    estimate_cmsis_network,
    estimate_weight_pool_network,
)
from repro.models import create_model

# (paper name, registry name, classes, input channels)
PAPER_NETWORKS: Tuple[Tuple[str, str, int, int], ...] = (
    ("TinyConv", "tinyconv", 100, 1),
    ("ResNet-s", "resnet_s", 10, 3),
    ("ResNet-10", "resnet10", 10, 3),
    ("ResNet-14", "resnet14", 10, 3),
    ("MobileNet-v2", "mobilenetv2", 100, 3),
)

# Table 6's minimum activation bitwidths (<1% accuracy drop).
PAPER_MIN_BITWIDTH: Dict[str, int] = {
    "TinyConv": 4,
    "ResNet-s": 4,
    "ResNet-10": 4,
    "ResNet-14": 3,
    "MobileNet-v2": 5,
}

PAPER_LATENCY_MC_LARGE = {
    "TinyConv": (1.06, 0.83, 0.75, 0.60, 0.57),
    "ResNet-s": (0.60, 0.49, 0.43, 0.31, 0.28),
    "ResNet-10": (5.28, 3.00, 2.22, 1.87, 1.61),
    "ResNet-14": (None, 3.46, 2.59, 1.92, 1.73),
    "MobileNet-v2": (None, 3.60, 3.12, 3.07, 2.78),
}

PAPER_LATENCY_MC_SMALL = {
    "TinyConv": (1.95, 1.49, 1.33, 0.99, 0.89),
    "ResNet-s": (1.24, 1.07, 0.89, 0.63, 0.55),
}


def run(
    scale="tiny",
    seed: int = 0,
    devices: Sequence[MCUDevice] = (MC_LARGE, MC_SMALL),
    pool_sizes: Sequence[int] = (64, 32),
    min_bitwidths: Optional[Dict[str, int]] = None,
    image_size: int = 32,
    networks: Sequence[Tuple[str, str, int, int]] = PAPER_NETWORKS,
) -> ExperimentResult:
    """Reproduce Table 7 (full-size networks, analytical MCU cost model)."""
    min_bitwidths = dict(PAPER_MIN_BITWIDTH if min_bitwidths is None else min_bitwidths)
    headers = ["device", "network", "CMSIS (s)"]
    for pool in pool_sizes:
        headers += [f"{pool}-8 (s)", f"{pool}-min (s)"]
    headers += ["paper CMSIS (s)", "paper 64-8 (s)", "paper 64-min (s)"]
    result = ExperimentResult(
        experiment_id="table7",
        title="Full-network inference latency (/ = does not fit in flash)",
        headers=headers,
        scale="full-size models + cost model (scale-independent)",
    )

    for device in devices:
        for paper_name, registry_name, num_classes, channels in networks:
            if device.name == "MC-small" and paper_name not in PAPER_LATENCY_MC_SMALL:
                # The paper only evaluates the two smallest networks on MC-small.
                continue
            model = create_model(
                registry_name, num_classes=num_classes, in_channels=channels, rng=seed
            )
            input_shape = (channels, image_size, image_size)
            cmsis = estimate_cmsis_network(model, input_shape, device, paper_name)
            row = [device.name, paper_name, cmsis.latency_or_none]
            min_bits = min_bitwidths.get(paper_name, 4)
            for pool in pool_sizes:
                for bits in (8, min_bits):
                    report = estimate_weight_pool_network(
                        model,
                        input_shape,
                        device,
                        BitSerialKernelConfig(pool_size=pool, activation_bitwidth=bits),
                        network_name=paper_name,
                    )
                    row.append(report.latency_or_none)
            paper = (
                PAPER_LATENCY_MC_LARGE.get(paper_name)
                if device.name == "MC-large"
                else PAPER_LATENCY_MC_SMALL.get(paper_name)
            )
            if paper is not None:
                row += [paper[0], paper[1], paper[3]]
            else:
                row += [None, None, None]
            result.add_row(*row)

    result.add_note(
        "minimum activation bitwidths taken from Table 6: "
        + ", ".join(f"{name}={bits}" for name, bits in min_bitwidths.items())
    )
    result.add_note(
        "absolute cycle counts are approximate; compare speedups (CMSIS / weight-pool) "
        "and which networks fit which device"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run_cli(run, __doc__)
