"""Table 1: accuracy of z-dimension weight pools with different group sizes.

The paper compresses ResNet-14 on CIFAR-10 with a 64-entry pool and group
sizes 4 / 8 / 16, showing that group size 8 balances compression and accuracy
(91.13 % vs an original 92.26 %, while 16 collapses to 87.96 %).
"""

from __future__ import annotations

from typing import Sequence

from repro.core import CompressionPolicy
from repro.experiments._cli import run_cli
from repro.experiments.common import compress_and_finetune, pretrained_model
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import get_scale

PAPER_NETWORK = "resnet14"
PAPER_DATASET = "cifar10"
PAPER_ROW = {"original": 92.26, 4: 91.22, 8: 91.13, 16: 87.96}


def run(
    scale="tiny",
    seed: int = 0,
    group_sizes: Sequence[int] = (4, 8, 16),
    pool_size: int = 64,
) -> ExperimentResult:
    """Reproduce Table 1 at the given scale."""
    scale = get_scale(scale)
    result = ExperimentResult(
        experiment_id="table1",
        title="Accuracy vs. z-dimension group size (ResNet-14 / CIFAR-10)",
        headers=["group size", "accuracy (%)", "accuracy drop (pp)", "paper accuracy (%)"],
        scale=scale.name,
    )
    pretrained = pretrained_model(PAPER_NETWORK, PAPER_DATASET, scale, seed)
    original = pretrained.accuracy * 100.0
    result.add_row("original", original, 0.0, PAPER_ROW["original"])

    for group_size in group_sizes:
        policy = CompressionPolicy(group_size=group_size)
        _, accuracy = compress_and_finetune(
            pretrained,
            scale,
            pool_size=pool_size,
            group_size=group_size,
            seed=seed,
            policy=policy,
        )
        accuracy *= 100.0
        result.add_row(group_size, accuracy, original - accuracy, PAPER_ROW.get(group_size))

    result.add_note(
        f"network={scale.model_name(PAPER_NETWORK)}, pool size={pool_size}, "
        "synthetic CIFAR-10 substitute; compare accuracy *drops*, not absolute values"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run_cli(run, __doc__)
