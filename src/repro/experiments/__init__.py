"""Experiment runners: one module per table/figure of the paper's evaluation.

Every runner module (``repro.experiments.table1`` … ``table7``, ``figure4``,
``figure7``, ``figure8``, ``section55``, ``ablations``) exposes
``run(scale=..., seed=...)`` returning an
:class:`~repro.experiments.result.ExperimentResult` whose rows mirror the
paper's table/figure.  The ``scale`` presets (:mod:`repro.experiments.scale`)
trade fidelity for runtime so the whole suite can execute on a laptop-class
CPU; see DESIGN.md §5.

Runner modules are intentionally not imported eagerly here — import the one
you need (they are lightweight, but keeping the package import cheap matters
for the library-only use case).
"""

from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SCALES, get_scale

__all__ = [
    "ExperimentResult",
    "ExperimentScale",
    "SCALES",
    "get_scale",
]
