"""Ablations beyond the paper's headline tables.

Three design-space studies DESIGN.md calls out:

* ``run_memoization`` — precomputation vs. dynamic memoization (paper §4.3 /
  appendix: the paper evaluated both and picked precomputation).
* ``run_lut_layout`` — input-oriented vs. weight-oriented LUT ordering
  (paper §4.2: only the input-oriented layout allows caching the active
  blocks, which is why it is the deployment default).
* ``run_index_bitwidth`` — log2(S) vs. 8-bit vs. 16-bit index storage
  (paper Eq. 4 note: the minimum bitwidth maximises compression but byte/
  half-word indices are cheaper to access).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core import CompressionPolicy, analyze_model_storage
from repro.experiments.figure7 import synthetic_layer
from repro.experiments.result import ExperimentResult
from repro.mcu import MC_LARGE, BitSerialKernelConfig, MCUDevice
from repro.mcu.kernels.bitserial import bitserial_conv_cycles
from repro.mcu.kernels.memoization import memoized_conv_cycles
from repro.models import create_model


def run_memoization(
    filter_counts: Sequence[int] = (32, 64, 128, 192, 256),
    pool_size: int = 64,
    device: MCUDevice = MC_LARGE,
    **_,
) -> ExperimentResult:
    """Precomputation vs. memoization across layer widths."""
    result = ExperimentResult(
        experiment_id="ablation-memoization",
        title="Computation-reuse strategies: precomputation vs. memoization",
        headers=["filters", "no reuse (Mcycles)", "precompute (Mcycles)", "memoization (Mcycles)",
                 "precompute speedup", "memoization speedup"],
        scale="cost model",
    )
    for filters in filter_counts:
        trace = synthetic_layer(filters)
        base = bitserial_conv_cycles(
            trace, BitSerialKernelConfig(pool_size=pool_size, precompute="never"), device
        )
        pre = bitserial_conv_cycles(
            trace, BitSerialKernelConfig(pool_size=pool_size, precompute="always"), device
        )
        memo = memoized_conv_cycles(
            trace, BitSerialKernelConfig(pool_size=pool_size), device
        )
        result.add_row(filters, base / 1e6, pre / 1e6, memo / 1e6, base / pre, base / memo)
    result.add_note("the paper picks precomputation; expect it to win for filters > pool size")
    return result


def run_lut_layout(
    filter_counts: Sequence[int] = (32, 64, 128, 192),
    pool_size: int = 64,
    device: MCUDevice = MC_LARGE,
    **_,
) -> ExperimentResult:
    """Input-oriented (cacheable) vs. weight-oriented (uncacheable) LUT layout."""
    result = ExperimentResult(
        experiment_id="ablation-lut-layout",
        title="LUT storage layout: input-oriented (cacheable) vs. weight-oriented",
        headers=["filters", "weight-oriented (Mcycles)", "input-oriented (Mcycles)", "speedup"],
        scale="cost model",
    )
    for filters in filter_counts:
        trace = synthetic_layer(filters)
        # Weight-oriented order scatters the active entries across the table, so
        # the per-input block cache cannot be built: lookups stay in flash.
        weight_oriented = bitserial_conv_cycles(
            trace,
            BitSerialKernelConfig(pool_size=pool_size, lut_caching=False, precompute="auto"),
            device,
        )
        input_oriented = bitserial_conv_cycles(
            trace,
            BitSerialKernelConfig(pool_size=pool_size, lut_caching=True, precompute="auto"),
            device,
        )
        result.add_row(filters, weight_oriented / 1e6, input_oriented / 1e6,
                       weight_oriented / input_oriented)
    result.add_note("input-oriented order is the paper's deployment default (§4.2)")
    return result


def run_index_bitwidth(
    index_bitwidths: Sequence[int] = (6, 8, 16),
    network: Tuple[str, int, int] = ("resnet10", 10, 3),
    pool_size: int = 64,
    image_size: int = 32,
    **_,
) -> ExperimentResult:
    """Compression-ratio impact of the weight-index storage bitwidth (Eq. 4)."""
    registry_name, num_classes, channels = network
    result = ExperimentResult(
        experiment_id="ablation-index-bitwidth",
        title=f"Index storage bitwidth vs. compression ratio ({registry_name}, pool {pool_size})",
        headers=["index bits", "compression ratio", "LUT overhead (%)"],
        scale="full-size model",
    )
    model = create_model(registry_name, num_classes=num_classes, in_channels=channels, rng=0)
    for index_bits in index_bitwidths:
        report = analyze_model_storage(
            model,
            (channels, image_size, image_size),
            policy=CompressionPolicy(),
            pool_size=pool_size,
            index_bitwidth=index_bits,
        )
        result.add_row(index_bits, report.compression_ratio, report.lut_overhead * 100.0)
    result.add_note("log2(S)=6 bits maximises compression; 8-bit indices are byte-addressable")
    return result


def run(scale="tiny", seed: int = 0) -> ExperimentResult:
    """Default ablation (memoization), for CLI symmetry with the other runners."""
    return run_memoization()


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments._cli import run_cli

    run_cli(run, __doc__)
