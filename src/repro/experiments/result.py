"""Structured experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.utils.tabulate import format_table


@dataclass
class ExperimentResult:
    """Rows of a reproduced table/figure plus bookkeeping metadata."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)
    scale: Optional[str] = None

    def add_row(self, *values: Any) -> None:
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_table(self, float_fmt: str = ".2f") -> str:
        """Render the result as an aligned plain-text table."""
        title = f"{self.experiment_id}: {self.title}"
        if self.scale:
            title += f" (scale={self.scale})"
        table = format_table(self.rows, headers=self.headers, float_fmt=float_fmt, title=title)
        if self.notes:
            table += "\n" + "\n".join(f"  note: {note}" for note in self.notes)
        return table

    def column(self, name: str) -> List[Any]:
        """Extract one column by header name."""
        headers = list(self.headers)
        if name not in headers:
            raise KeyError(f"no column named '{name}' (have {headers})")
        index = headers.index(name)
        return [row[index] for row in self.rows]

    def row_by(self, key_column: str, key_value: Any) -> Sequence[Any]:
        """Return the first row whose ``key_column`` equals ``key_value``."""
        keys = self.column(key_column)
        for i, key in enumerate(keys):
            if key == key_value:
                return self.rows[i]
        raise KeyError(f"no row with {key_column} == {key_value!r}")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_table()
