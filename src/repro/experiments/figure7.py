"""Figure 7: layer-level speedup from LUT caching and precomputation.

The paper benchmarks four 3x3 convolution layers (16x16 input, channels =
filters ∈ {32, 64, 128, 192}, pool 64) and reports the speedup of
(a) LUT caching alone and (b) precomputation + LUT caching over the baseline
bit-serial implementation (no caching, no precomputation).  Caching helps more
as the filter count grows; precomputation only helps once the layer has more
filters than pool entries.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.tracing import LayerTrace
from repro.experiments._cli import run_cli
from repro.experiments.result import ExperimentResult
from repro.mcu import MC_LARGE, BitSerialKernelConfig, MCUDevice
from repro.mcu.kernels.bitserial import bitserial_conv_cycles

PAPER_SPEEDUPS = {  # approximate values read off Figure 7
    32: (1.05, 1.0),
    64: (1.2, 1.2),
    128: (1.35, 2.0),
    192: (1.4, 2.45),
}


def synthetic_layer(filters: int, input_size: int = 16, kernel: int = 3) -> LayerTrace:
    """The Figure 7 benchmark layer: channels = filters, 16x16 input, 3x3 kernel."""
    return LayerTrace(
        name=f"conv{filters}",
        kind="conv",
        in_channels=filters,
        out_channels=filters,
        kernel_size=kernel,
        stride=1,
        padding=kernel // 2,
        groups=1,
        input_hw=(input_size, input_size),
        output_hw=(input_size, input_size),
        weight_shape=(filters, filters, kernel, kernel),
        has_bias=False,
    )


def run(
    scale="tiny",
    seed: int = 0,
    filter_counts: Sequence[int] = (32, 64, 128, 192),
    pool_size: int = 64,
    activation_bitwidth: int = 8,
    device: MCUDevice = MC_LARGE,
) -> ExperimentResult:
    """Reproduce Figure 7 (analytical cost model; scale-independent)."""
    result = ExperimentResult(
        experiment_id="figure7",
        title="Layer speedup of LUT caching and precomputation (vs. naive bit-serial)",
        headers=[
            "filters",
            "baseline (Mcycles)",
            "caching speedup",
            "precompute+caching speedup",
            "paper caching",
            "paper precompute+caching",
        ],
        scale="cost model (scale-independent)",
    )
    for filters in filter_counts:
        trace = synthetic_layer(filters)
        baseline = bitserial_conv_cycles(
            trace,
            BitSerialKernelConfig(
                pool_size=pool_size,
                activation_bitwidth=activation_bitwidth,
                lut_caching=False,
                precompute="never",
            ),
            device,
        )
        cached = bitserial_conv_cycles(
            trace,
            BitSerialKernelConfig(
                pool_size=pool_size,
                activation_bitwidth=activation_bitwidth,
                lut_caching=True,
                precompute="never",
            ),
            device,
        )
        precomputed = bitserial_conv_cycles(
            trace,
            BitSerialKernelConfig(
                pool_size=pool_size,
                activation_bitwidth=activation_bitwidth,
                lut_caching=True,
                precompute="auto",
            ),
            device,
        )
        paper = PAPER_SPEEDUPS.get(filters, (None, None))
        result.add_row(
            filters,
            baseline / 1e6,
            baseline / cached,
            baseline / precomputed,
            paper[0],
            paper[1],
        )
    result.add_note(
        f"device={device.name}; precomputation engages automatically only when filters > pool size"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run_cli(run, __doc__)
