"""Table 5: inference accuracy vs. lookup-table bitwidth.

The paper stores the LUT at 16 / 8 / 4 bits (plus a "No-LUT" reference that
skips the LUT entirely) with 8-bit activations and finds that an 8-bit LUT
loses essentially no accuracy, which is why 8 bits is the deployment default.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core import EngineConfig
from repro.experiments._cli import run_cli
from repro.experiments.common import (
    NETWORK_DATASETS,
    calibrated_engine,
    compress_and_finetune,
    pretrained_model,
    test_loader_for,
)
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import get_scale

PAPER_RESULTS = {
    "resnet_s": {"no-lut": 83.0, 16: 83.0, 8: 82.9, 4: 82.3},
    "resnet10": {"no-lut": 89.6, 16: 89.9, 8: 89.9, 4: 89.4},
    "resnet14": {"no-lut": 91.1, 16: 91.1, 8: 91.1, 4: 90.4},
    "tinyconv": {"no-lut": 82.2, 16: 82.2, 8: 82.1, 4: 81.6},
    "mobilenetv2": {"no-lut": 86.8, 16: 86.6, 8: 86.6, 4: 85.5},
}


def run(
    scale="tiny",
    seed: int = 0,
    lut_bitwidths: Sequence[Optional[int]] = (None, 16, 8, 4),
    activation_bitwidth: int = 8,
    pool_size: int = 64,
    networks: Optional[Sequence[Tuple[str, str]]] = None,
) -> ExperimentResult:
    """Reproduce Table 5 at the given scale.

    ``None`` in ``lut_bitwidths`` denotes the "No-LUT" reference (quantized
    activations, float pool weights, no lookup table).
    """
    scale = get_scale(scale)
    networks = tuple(networks) if networks is not None else NETWORK_DATASETS

    def column_name(bitwidth: Optional[int]) -> str:
        return "no-LUT (%)" if bitwidth is None else f"LUT {bitwidth}-bit (%)"

    headers = ["network", "dataset"] + [column_name(b) for b in lut_bitwidths] + ["paper 8-bit LUT"]
    result = ExperimentResult(
        experiment_id="table5",
        title=f"Accuracy vs. LUT bitwidth ({activation_bitwidth}-bit activations)",
        headers=headers,
        scale=scale.name,
    )

    for paper_name, dataset in networks:
        pretrained = pretrained_model(paper_name, dataset, scale, seed)
        compressed, _ = compress_and_finetune(pretrained, scale, pool_size=pool_size, seed=seed)
        loader = test_loader_for(pretrained, scale, seed)
        engine = calibrated_engine(
            compressed,
            pretrained,
            scale,
            EngineConfig(
                activation_bitwidth=activation_bitwidth,
                lut_bitwidth=None,
                use_lut=True,
                calibration_batches=scale.calibration_batches,
            ),
            seed=seed,
        )
        row = [paper_name, dataset]
        for lut_bitwidth in lut_bitwidths:
            if lut_bitwidth is None:
                engine.config = EngineConfig(
                    activation_bitwidth=activation_bitwidth,
                    lut_bitwidth=None,
                    use_lut=False,
                    calibration_batches=scale.calibration_batches,
                )
                engine.set_lut_bitwidth(None)
            else:
                engine.config = EngineConfig(
                    activation_bitwidth=activation_bitwidth,
                    lut_bitwidth=lut_bitwidth,
                    use_lut=True,
                    calibration_batches=scale.calibration_batches,
                )
                engine.set_lut_bitwidth(lut_bitwidth)
            row.append(engine.evaluate(loader) * 100.0)
        paper = PAPER_RESULTS.get(paper_name, {})
        row.append(paper.get(8))
        result.add_row(*row)

    result.add_note("expect the 16/8-bit LUT columns to match the no-LUT column closely")
    return result


if __name__ == "__main__":  # pragma: no cover
    run_cli(run, __doc__)
