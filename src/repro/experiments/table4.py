"""Table 4: accuracy of z-dimension weight pools vs. pool size (32 / 64 / 128).

The paper evaluates all five network–dataset combinations without activation
quantization, showing a pool of 64 vectors suffices for most networks (and
that ResNet-s, being already small, is the hardest to compress).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments._cli import run_cli
from repro.experiments.common import NETWORK_DATASETS, compress_and_finetune, pretrained_model
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import get_scale

PAPER_RESULTS = {
    "resnet_s": (85.3, 82.0, 83.0, 84.0),
    "resnet10": (91.0, 89.3, 89.8, 90.1),
    "resnet14": (92.3, 90.7, 91.1, 91.0),
    "tinyconv": (82.2, 81.7, 82.2, 82.3),
    "mobilenetv2": (86.5, 86.7, 86.8, 86.9),
}


def run(
    scale="tiny",
    seed: int = 0,
    pool_sizes: Sequence[int] = (32, 64, 128),
    networks: Optional[Sequence[Tuple[str, str]]] = None,
) -> ExperimentResult:
    """Reproduce Table 4 at the given scale."""
    scale = get_scale(scale)
    networks = tuple(networks) if networks is not None else NETWORK_DATASETS
    headers = ["network", "dataset", "original (%)"]
    headers += [f"pool {size} (%)" for size in pool_sizes]
    headers += ["paper original", "paper 64"]
    result = ExperimentResult(
        experiment_id="table4",
        title="Accuracy vs. weight pool size (no activation quantization)",
        headers=headers,
        scale=scale.name,
    )

    for paper_name, dataset in networks:
        pretrained = pretrained_model(paper_name, dataset, scale, seed)
        row = [paper_name, dataset, pretrained.accuracy * 100.0]
        for pool_size in pool_sizes:
            _, accuracy = compress_and_finetune(pretrained, scale, pool_size=pool_size, seed=seed)
            row.append(accuracy * 100.0)
        paper = PAPER_RESULTS.get(paper_name)
        row.append(paper[0] if paper else None)
        row.append(paper[2] if paper else None)
        result.add_row(*row)

    result.add_note(
        "synthetic dataset substitutes; compare the accuracy gap to each row's own "
        "'original' column against the paper's gaps"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run_cli(run, __doc__)
