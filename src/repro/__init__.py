"""Bit-serial Weight Pools — MLSys 2022 reproduction.

This package implements the full framework described in "Bit-serial Weight
Pools: Compression and Arbitrary Precision Execution of Neural Networks on
Resource Constrained Processors" (Li & Gupta, MLSys 2022):

* :mod:`repro.nn` — a from-scratch NumPy deep-learning substrate used for
  training, fine-tuning and functional inference.
* :mod:`repro.datasets` — synthetic stand-ins for CIFAR-10 and Quickdraw-100.
* :mod:`repro.models` — the paper's model zoo (TinyConv, ResNet-s/10/14,
  MobileNet-v2) plus scaled-down variants.
* :mod:`repro.quantization` — uniform quantizers and range calibration.
* :mod:`repro.core` — the paper's primary contribution: weight-pool
  compression and the bit-serial lookup-table execution engine.
* :mod:`repro.mcu` — a Cortex-M3 cycle-cost simulator standing in for the
  STM32 Nucleo boards used in the paper's runtime evaluation.
* :mod:`repro.serve` — a model server for compiled network programs:
  versioned on-disk repository, async dynamic micro-batching, thread/process
  worker pools, and a stdlib HTTP front end (see ``docs/SERVING.md``).
* :mod:`repro.baselines` — CMSIS-NN-style int8 baseline and binarized
  networks.
* :mod:`repro.analysis` / :mod:`repro.experiments` — evaluation utilities and
  one runner per paper table/figure.
"""

from repro._version import __version__

__all__ = ["__version__"]
