"""Shared utilities: RNG handling, bit manipulation, tabulation, sizes."""

from repro.utils.rng import new_rng, spawn_rngs, temp_seed
from repro.utils.bits import (
    bits_to_int,
    int_to_bits,
    pack_sub_byte,
    unpack_sub_byte,
    required_bits,
)
from repro.utils.tabulate import format_table
from repro.utils.units import KiB, MiB, bits_to_bytes, bytes_to_kib, human_bytes

__all__ = [
    "new_rng",
    "spawn_rngs",
    "temp_seed",
    "bits_to_int",
    "int_to_bits",
    "pack_sub_byte",
    "unpack_sub_byte",
    "required_bits",
    "format_table",
    "KiB",
    "MiB",
    "bits_to_bytes",
    "bytes_to_kib",
    "human_bytes",
]
