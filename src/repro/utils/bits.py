"""Bit-level helpers used by the bit-serial engine and storage accounting."""

from __future__ import annotations

import math

import numpy as np


def required_bits(n_values: int) -> int:
    """Minimum number of bits needed to index ``n_values`` distinct values.

    This is the ``log2(S)`` term of Eq. 4 in the paper (index bitwidth for a
    weight pool of size ``S``).  ``n_values`` must be at least 1; a single
    value still requires one bit of storage in any practical encoding.
    """
    if n_values < 1:
        raise ValueError(f"n_values must be >= 1, got {n_values}")
    if n_values == 1:
        return 1
    return int(math.ceil(math.log2(n_values)))


def min_uint_dtype(max_value: int) -> np.dtype:
    """Smallest unsigned NumPy dtype that can hold ``max_value``.

    Used by the bit-serial kernels to store LUT addresses compactly: a group
    size of 8 yields addresses below 256, so ``uint8`` suffices and the
    address tensors shrink 8x versus the historical ``int64`` layout.
    """
    if max_value < 0:
        raise ValueError(f"max_value must be non-negative, got {max_value}")
    for dtype in (np.uint8, np.uint16, np.uint32, np.uint64):
        if max_value <= np.iinfo(dtype).max:
            return np.dtype(dtype)
    raise ValueError(f"max_value {max_value} does not fit in any unsigned dtype")


def int_to_bits(values: np.ndarray, bitwidth: int, msb_first: bool = True) -> np.ndarray:
    """Decompose non-negative integers into their binary digits.

    Parameters
    ----------
    values:
        Array of non-negative integers, each representable in ``bitwidth`` bits.
    bitwidth:
        Number of bits to extract.
    msb_first:
        If True (default, matching the paper's MSB-to-LSB bit-serial order) the
        first entry of the last axis is the most significant bit.

    Returns
    -------
    Array of shape ``values.shape + (bitwidth,)`` with entries in {0, 1}.
    """
    if bitwidth < 1:
        raise ValueError(f"bitwidth must be >= 1, got {bitwidth}")
    values = np.asarray(values)
    if np.any(values < 0):
        raise ValueError("int_to_bits expects non-negative integers")
    if np.any(values >= (1 << bitwidth)):
        raise ValueError(
            f"values do not fit in {bitwidth} bits (max={int(values.max())})"
        )
    shifts = np.arange(bitwidth - 1, -1, -1) if msb_first else np.arange(bitwidth)
    bits = (values[..., None] >> shifts) & 1
    return bits.astype(np.uint8)


def bits_to_int(bits: np.ndarray, msb_first: bool = True) -> np.ndarray:
    """Inverse of :func:`int_to_bits` along the last axis."""
    bits = np.asarray(bits)
    if bits.size and not np.isin(bits, (0, 1)).all():
        raise ValueError("bits_to_int expects an array of 0/1 values")
    bitwidth = bits.shape[-1]
    shifts = np.arange(bitwidth - 1, -1, -1) if msb_first else np.arange(bitwidth)
    weights = (1 << shifts).astype(np.int64)
    return np.tensordot(bits.astype(np.int64), weights, axes=([-1], [0]))


def pack_sub_byte(values: np.ndarray, bitwidth: int) -> np.ndarray:
    """Pack sub-byte unsigned integers densely into a uint8 byte stream.

    Models the flash layout an MCU implementation would use for weight indices
    or sub-byte activations.  Values are packed little-endian within the bit
    stream (first value occupies the least-significant bits of the stream).
    """
    if not 1 <= bitwidth <= 8:
        raise ValueError(f"bitwidth must be in [1, 8], got {bitwidth}")
    values = np.asarray(values).ravel()
    if np.any(values < 0) or np.any(values >= (1 << bitwidth)):
        raise ValueError(f"values do not fit in {bitwidth} bits")
    bits = int_to_bits(values.astype(np.int64), bitwidth, msb_first=False)
    flat = bits.reshape(-1)
    pad = (-flat.size) % 8
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, dtype=np.uint8)])
    flat = flat.reshape(-1, 8)
    byte_weights = (1 << np.arange(8)).astype(np.uint16)
    return (flat * byte_weights).sum(axis=1).astype(np.uint8)


def unpack_sub_byte(packed: np.ndarray, bitwidth: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_sub_byte`; recovers ``count`` values."""
    if not 1 <= bitwidth <= 8:
        raise ValueError(f"bitwidth must be in [1, 8], got {bitwidth}")
    packed = np.asarray(packed, dtype=np.uint8).ravel()
    bits = ((packed[:, None] >> np.arange(8)) & 1).reshape(-1)
    needed = count * bitwidth
    if needed > bits.size:
        raise ValueError(
            f"packed stream too short: need {needed} bits, have {bits.size}"
        )
    bits = bits[:needed].reshape(count, bitwidth)
    return bits_to_int(bits, msb_first=False).astype(np.int64)
