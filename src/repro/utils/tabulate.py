"""Minimal plain-text table formatting for experiment reports.

The benchmark harness prints the same rows the paper reports; this module
renders them without any third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _render_cell(value: object, float_fmt: str) -> str:
    if value is None:
        return "/"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    rows: Iterable[Sequence[object]],
    headers: Optional[Sequence[str]] = None,
    float_fmt: str = ".2f",
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned plain-text table.

    ``None`` cells render as ``/`` to mirror the paper's "does not fit" marker
    in Table 7.
    """
    str_rows: List[List[str]] = [
        [_render_cell(cell, float_fmt) for cell in row] for row in rows
    ]
    if headers is not None:
        all_rows = [list(map(str, headers))] + str_rows
    else:
        all_rows = str_rows
    if not all_rows:
        return title + "\n" if title else ""
    n_cols = max(len(r) for r in all_rows)
    for row in all_rows:
        row.extend([""] * (n_cols - len(row)))
    widths = [max(len(row[c]) for row in all_rows) for c in range(n_cols)]

    def fmt_row(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    if headers is not None:
        lines.append(fmt_row(all_rows[0]))
        lines.append("  ".join("-" * w for w in widths))
        body = all_rows[1:]
    else:
        body = all_rows
    lines.extend(fmt_row(row) for row in body)
    return "\n".join(lines)
