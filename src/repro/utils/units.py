"""Storage-size units and conversions used by the storage/MCU models."""

from __future__ import annotations

KiB = 1024
MiB = 1024 * 1024


def bits_to_bytes(bits: float) -> float:
    """Convert a bit count to bytes (fractional bytes allowed for accounting)."""
    if bits < 0:
        raise ValueError(f"bits must be non-negative, got {bits}")
    return bits / 8.0


def bytes_to_kib(n_bytes: float) -> float:
    """Convert bytes to binary kilobytes."""
    if n_bytes < 0:
        raise ValueError(f"n_bytes must be non-negative, got {n_bytes}")
    return n_bytes / KiB


def human_bytes(n_bytes: float) -> str:
    """Render a byte count as a short human-readable string."""
    if n_bytes < 0:
        raise ValueError(f"n_bytes must be non-negative, got {n_bytes}")
    if n_bytes < KiB:
        return f"{n_bytes:.0f} B"
    if n_bytes < MiB:
        return f"{n_bytes / KiB:.1f} KiB"
    return f"{n_bytes / MiB:.2f} MiB"
