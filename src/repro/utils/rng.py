"""Random-number-generator helpers.

Everything in the library that needs randomness takes either a seed or a
:class:`numpy.random.Generator`.  These helpers normalise between the two and
make it easy to derive independent child generators for sub-tasks so that
experiments are reproducible regardless of execution order.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or generator.

    Passing an existing generator returns it unchanged so callers can thread a
    single stream through a pipeline.  Passing ``None`` creates a fresh,
    OS-seeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning so the children do not
    overlap even when the parent stream is also used.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh seeds from the parent stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


@contextlib.contextmanager
def temp_seed(seed: Optional[int]) -> Iterator[None]:
    """Temporarily seed the *legacy* global NumPy RNG inside a ``with`` block.

    Only used by tests that want deterministic behaviour from third-party code
    relying on the global state; library code uses explicit generators.
    """
    if seed is None:
        yield
        return
    state = np.random.get_state()
    np.random.seed(seed)
    try:
        yield
    finally:
        np.random.set_state(state)
