"""Synthetic stand-ins for the paper's datasets.

The paper evaluates on CIFAR-10 and Quickdraw-100.  Neither dataset can be
downloaded in the offline reproduction environment, so this package provides
procedurally generated classification tasks with the same input geometry:

* :class:`SyntheticCIFAR10` — 3x32x32 colour images, 10 classes.
* :class:`SyntheticQuickDraw` — 1x28x28 sketch-like images, up to 100 classes.

Both are built on :class:`PatternLibrary`, which creates one smooth random
"prototype" per class and draws samples as noisy, shifted variations of it.
This keeps the tasks learnable by small CNNs (so accuracy-degradation trends
from compression/quantization are measurable) while remaining fully
reproducible from a seed.  See DESIGN.md §2 for the substitution rationale.
"""

from repro.datasets.patterns import PatternLibrary, PatternStream
from repro.datasets.synthetic import (
    SyntheticCIFAR10,
    SyntheticQuickDraw,
    SyntheticImageClassification,
    make_classification_split,
)

__all__ = [
    "PatternLibrary",
    "PatternStream",
    "SyntheticImageClassification",
    "SyntheticCIFAR10",
    "SyntheticQuickDraw",
    "make_classification_split",
]
