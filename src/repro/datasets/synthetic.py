"""Synthetic image-classification datasets (CIFAR-10 / Quickdraw-100 substitutes)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.datasets.patterns import PatternLibrary
from repro.nn.data.dataset import ArrayDataset
from repro.utils.rng import SeedLike, new_rng, spawn_rngs


class SyntheticImageClassification(ArrayDataset):
    """Materialised synthetic dataset with balanced classes.

    Parameters
    ----------
    num_classes, channels, image_size:
        Task geometry.
    samples_per_class:
        Number of images generated per class.
    normalize:
        If True (default), images are standardised to zero mean / unit variance
        using statistics of this dataset instance — mirroring the per-dataset
        normalisation used when training CIFAR models.
    """

    def __init__(
        self,
        num_classes: int,
        channels: int,
        image_size: int,
        samples_per_class: int,
        sketch: bool = False,
        noise_std: float = 0.25,
        instance_strength: float = 0.45,
        normalize: bool = True,
        seed: SeedLike = 0,
        library: Optional[PatternLibrary] = None,
    ):
        if samples_per_class < 1:
            raise ValueError(
                f"samples_per_class must be >= 1, got {samples_per_class}"
            )
        proto_rng, sample_rng, shuffle_rng = spawn_rngs(seed, 3)
        self.library = library or PatternLibrary(
            num_classes=num_classes,
            channels=channels,
            image_size=image_size,
            sketch=sketch,
            noise_std=noise_std,
            instance_strength=instance_strength,
            seed=proto_rng,
        )
        labels = np.repeat(np.arange(num_classes), samples_per_class)
        images, labels = self.library.sample_batch(labels, sample_rng)
        order = shuffle_rng.permutation(len(labels))
        images, labels = images[order], labels[order]

        self.normalized = normalize
        if normalize:
            mean = images.mean()
            std = images.std()
            images = (images - mean) / max(std, 1e-8)
            self.normalization = (float(mean), float(std))
        else:
            self.normalization = (0.0, 1.0)

        super().__init__(images.astype(np.float64), labels)
        self.num_classes = num_classes
        self.channels = channels
        self.image_size = image_size

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        """``(C, H, W)`` of one sample."""
        return (self.channels, self.image_size, self.image_size)


class SyntheticCIFAR10(SyntheticImageClassification):
    """3x32x32, 10-class synthetic substitute for CIFAR-10."""

    def __init__(
        self,
        samples_per_class: int = 100,
        image_size: int = 32,
        num_classes: int = 10,
        seed: SeedLike = 0,
        **kwargs,
    ):
        super().__init__(
            num_classes=num_classes,
            channels=3,
            image_size=image_size,
            samples_per_class=samples_per_class,
            sketch=False,
            seed=seed,
            **kwargs,
        )


class SyntheticQuickDraw(SyntheticImageClassification):
    """1x28x28 sketch-like substitute for Quickdraw-100.

    The paper uses 100 classes; the default here is also 100 but experiments at
    reduced scale may pass a smaller ``num_classes``.
    """

    def __init__(
        self,
        samples_per_class: int = 20,
        num_classes: int = 100,
        image_size: int = 28,
        seed: SeedLike = 0,
        **kwargs,
    ):
        super().__init__(
            num_classes=num_classes,
            channels=1,
            image_size=image_size,
            samples_per_class=samples_per_class,
            sketch=True,
            seed=seed,
            **kwargs,
        )


def make_classification_split(
    dataset_cls,
    train_per_class: int,
    test_per_class: int,
    seed: SeedLike = 0,
    **kwargs,
) -> Tuple[SyntheticImageClassification, SyntheticImageClassification]:
    """Create train/test datasets drawn from the *same* class prototypes.

    Both splits share one :class:`PatternLibrary` (i.e. the same underlying
    classes) but use independent sample noise, matching the usual train/test
    protocol.
    """
    rng = new_rng(seed)
    proto_seed = int(rng.integers(0, 2**31 - 1))
    train_seed = int(rng.integers(0, 2**31 - 1))
    test_seed = int(rng.integers(0, 2**31 - 1))

    train = dataset_cls(samples_per_class=train_per_class, seed=proto_seed, **kwargs)
    # Re-use the prototypes from the train split; only the sampling noise differs.
    test = dataset_cls(
        samples_per_class=test_per_class,
        seed=test_seed,
        library=train.library,
        **kwargs,
    )
    # Re-seed the train split sampling independently of the prototype seed so the
    # two splits are not correlated sample-by-sample.
    _ = train_seed
    return train, test
