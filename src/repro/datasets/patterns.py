"""Procedural class-prototype generation for the synthetic datasets."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def _upsample_bilinear(field: np.ndarray, size: int) -> np.ndarray:
    """Bilinearly upsample a small 2D field to ``size``×``size``.

    Implemented with separable 1D interpolation so it only depends on NumPy.
    """
    small = field.shape[0]
    src = np.linspace(0.0, small - 1.0, small)
    dst = np.linspace(0.0, small - 1.0, size)
    # Interpolate rows, then columns.
    rows = np.empty((small, size))
    for i in range(small):
        rows[i] = np.interp(dst, src, field[i])
    out = np.empty((size, size))
    for j in range(size):
        out[:, j] = np.interp(dst, src, rows[:, j])
    return out


class PatternLibrary:
    """Per-class prototypes made of smooth low-frequency random fields.

    Each class ``k`` owns ``channels`` low-frequency prototype fields.  A
    sample is drawn as::

        image = class_prototype + instance_strength * random_field + noise

    followed by a small random circular shift.  ``sketch=True`` additionally
    applies a soft threshold that produces thin, stroke-like contours (used by
    the Quickdraw substitute).
    """

    def __init__(
        self,
        num_classes: int,
        channels: int,
        image_size: int,
        base_resolution: int = 5,
        class_strength: float = 1.0,
        instance_strength: float = 0.45,
        noise_std: float = 0.25,
        max_shift: int = 2,
        sketch: bool = False,
        seed: SeedLike = 0,
    ):
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        if channels < 1:
            raise ValueError(f"channels must be >= 1, got {channels}")
        if image_size < base_resolution:
            raise ValueError("image_size must be >= base_resolution")
        self.num_classes = num_classes
        self.channels = channels
        self.image_size = image_size
        self.base_resolution = base_resolution
        self.class_strength = class_strength
        self.instance_strength = instance_strength
        self.noise_std = noise_std
        self.max_shift = max_shift
        self.sketch = sketch

        rng = new_rng(seed)
        # Prototype coefficients on the coarse grid, one per class and channel.
        coarse = rng.normal(
            size=(num_classes, channels, base_resolution, base_resolution)
        )
        self.prototypes = np.empty((num_classes, channels, image_size, image_size))
        for k in range(num_classes):
            for c in range(channels):
                self.prototypes[k, c] = _upsample_bilinear(coarse[k, c], image_size)
        # Normalise prototypes to unit RMS so class_strength is meaningful.
        rms = np.sqrt((self.prototypes**2).mean(axis=(2, 3), keepdims=True))
        self.prototypes /= np.maximum(rms, 1e-8)

    def sample(self, class_index: int, rng: SeedLike = None) -> np.ndarray:
        """Draw one ``(channels, H, W)`` sample of the given class."""
        if not 0 <= class_index < self.num_classes:
            raise ValueError(
                f"class_index must be in [0, {self.num_classes}), got {class_index}"
            )
        rng = new_rng(rng)
        image = self.class_strength * self.prototypes[class_index].copy()

        # Instance-specific smooth variation shared across channels.
        coarse = rng.normal(size=(self.base_resolution, self.base_resolution))
        variation = _upsample_bilinear(coarse, self.image_size)
        variation /= max(np.sqrt((variation**2).mean()), 1e-8)
        image += self.instance_strength * variation[None, :, :]

        # Pixel noise.
        image += rng.normal(0.0, self.noise_std, size=image.shape)

        # Small random circular shift (translation jitter).
        if self.max_shift:
            dy, dx = rng.integers(-self.max_shift, self.max_shift + 1, size=2)
            image = np.roll(image, (int(dy), int(dx)), axis=(1, 2))

        if self.sketch:
            # Soft contour: emphasise the zero-crossing band of the field so the
            # result resembles thin pen strokes on an empty background.
            image = np.exp(-((image / 0.35) ** 2)) * 2.0 - 0.5
        return image

    def sample_batch(
        self, labels: np.ndarray, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw one sample per label; returns ``(images, labels)``."""
        rng = new_rng(rng)
        labels = np.asarray(labels, dtype=np.int64)
        images = np.stack([self.sample(int(label), rng) for label in labels])
        return images, labels
