"""Procedural class-prototype generation for the synthetic datasets."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def _upsample_bilinear(field: np.ndarray, size: int) -> np.ndarray:
    """Bilinearly upsample a small 2D field to ``size``×``size``.

    Implemented with separable 1D interpolation so it only depends on NumPy.
    """
    small = field.shape[0]
    src = np.linspace(0.0, small - 1.0, small)
    dst = np.linspace(0.0, small - 1.0, size)
    # Interpolate rows, then columns.
    rows = np.empty((small, size))
    for i in range(small):
        rows[i] = np.interp(dst, src, field[i])
    out = np.empty((size, size))
    for j in range(size):
        out[:, j] = np.interp(dst, src, rows[:, j])
    return out


class PatternLibrary:
    """Per-class prototypes made of smooth low-frequency random fields.

    Each class ``k`` owns ``channels`` low-frequency prototype fields.  A
    sample is drawn as::

        image = class_prototype + instance_strength * random_field + noise

    followed by a small random circular shift.  ``sketch=True`` additionally
    applies a soft threshold that produces thin, stroke-like contours (used by
    the Quickdraw substitute).
    """

    def __init__(
        self,
        num_classes: int,
        channels: int,
        image_size: int,
        base_resolution: int = 5,
        class_strength: float = 1.0,
        instance_strength: float = 0.45,
        noise_std: float = 0.25,
        max_shift: int = 2,
        sketch: bool = False,
        seed: SeedLike = 0,
    ):
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        if channels < 1:
            raise ValueError(f"channels must be >= 1, got {channels}")
        if image_size < base_resolution:
            raise ValueError("image_size must be >= base_resolution")
        self.num_classes = num_classes
        self.channels = channels
        self.image_size = image_size
        self.base_resolution = base_resolution
        self.class_strength = class_strength
        self.instance_strength = instance_strength
        self.noise_std = noise_std
        self.max_shift = max_shift
        self.sketch = sketch

        rng = new_rng(seed)
        # Prototype coefficients on the coarse grid, one per class and channel.
        coarse = rng.normal(
            size=(num_classes, channels, base_resolution, base_resolution)
        )
        self.prototypes = np.empty((num_classes, channels, image_size, image_size))
        for k in range(num_classes):
            for c in range(channels):
                self.prototypes[k, c] = _upsample_bilinear(coarse[k, c], image_size)
        # Normalise prototypes to unit RMS so class_strength is meaningful.
        rms = np.sqrt((self.prototypes**2).mean(axis=(2, 3), keepdims=True))
        self.prototypes /= np.maximum(rms, 1e-8)

    def sample(self, class_index: int, rng: SeedLike = None) -> np.ndarray:
        """Draw one ``(channels, H, W)`` sample of the given class."""
        if not 0 <= class_index < self.num_classes:
            raise ValueError(
                f"class_index must be in [0, {self.num_classes}), got {class_index}"
            )
        rng = new_rng(rng)
        image = self.class_strength * self.prototypes[class_index].copy()

        # Instance-specific smooth variation shared across channels.
        coarse = rng.normal(size=(self.base_resolution, self.base_resolution))
        variation = _upsample_bilinear(coarse, self.image_size)
        variation /= max(np.sqrt((variation**2).mean()), 1e-8)
        image += self.instance_strength * variation[None, :, :]

        # Pixel noise.
        image += rng.normal(0.0, self.noise_std, size=image.shape)

        # Small random circular shift (translation jitter).
        if self.max_shift:
            dy, dx = rng.integers(-self.max_shift, self.max_shift + 1, size=2)
            image = np.roll(image, (int(dy), int(dx)), axis=(1, 2))

        if self.sketch:
            # Soft contour: emphasise the zero-crossing band of the field so the
            # result resembles thin pen strokes on an empty background.
            image = np.exp(-((image / 0.35) ** 2)) * 2.0 - 0.5
        return image

    def sample_batch(
        self, labels: np.ndarray, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw one sample per label; returns ``(images, labels)``."""
        rng = new_rng(rng)
        labels = np.asarray(labels, dtype=np.int64)
        images = np.stack([self.sample(int(label), rng) for label in labels])
        return images, labels

    def stream(
        self,
        class_index: int,
        change_fraction: float = 0.1,
        drift: float = 0.25,
        rng: SeedLike = None,
    ) -> "PatternStream":
        """A temporal frame stream of this class (see :class:`PatternStream`)."""
        return PatternStream(
            self, class_index,
            change_fraction=change_fraction, drift=drift, rng=rng,
        )


class PatternStream:
    """A smoothly drifting temporal stream of one class's pattern.

    Models a video-like workload for the streaming executor: each frame is
    the previous frame with **one localized patch** re-rendered — the patch
    covers ``change_fraction`` of the image area, blends toward a slowly
    drifting target field, and performs a random walk across the image, so
    consecutive frames differ only inside a compact moving region (the
    temporal redundancy the dirty-tile executor exploits).

    ``change_fraction=0`` produces a perfectly static stream (every frame
    identical — the cached fast path); ``change_fraction=1`` re-renders the
    whole frame (no redundancy — the crossover fallback regime).  Frames are
    deterministic given the seed.
    """

    def __init__(
        self,
        library: PatternLibrary,
        class_index: int,
        change_fraction: float = 0.1,
        drift: float = 0.25,
        rng: SeedLike = None,
    ):
        if not 0.0 <= change_fraction <= 1.0:
            raise ValueError(
                f"change_fraction must be in [0, 1], got {change_fraction}"
            )
        if not 0.0 <= drift <= 1.0:
            raise ValueError(f"drift must be in [0, 1], got {drift}")
        self.library = library
        self.class_index = class_index
        self.change_fraction = float(change_fraction)
        self.drift = float(drift)
        self._rng = new_rng(rng)
        size = library.image_size
        # Patch geometry: a square region of ~change_fraction of the area.
        self.patch = int(np.clip(round(size * np.sqrt(change_fraction)), 0, size))
        self._frame = library.sample(class_index, self._rng)
        # The slowly drifting target the patch blends toward.
        self._target = library.sample(class_index, self._rng)
        self._pos = (
            int(self._rng.integers(0, max(1, size - self.patch + 1))),
            int(self._rng.integers(0, max(1, size - self.patch + 1))),
        )
        self.frames = 0

    @property
    def frame(self) -> np.ndarray:
        """The current ``(channels, H, W)`` frame (a copy)."""
        return self._frame.copy()

    def next(self) -> np.ndarray:
        """Advance the stream one step and return the new frame (a copy)."""
        self.frames += 1
        if self.patch == 0:
            return self._frame.copy()
        rng = self._rng
        size = self.library.image_size
        p = self.patch
        # Random-walk the patch position (stays in bounds).
        y, x = self._pos
        span = max(1, p // 2)
        y = int(np.clip(y + rng.integers(-span, span + 1), 0, size - p))
        x = int(np.clip(x + rng.integers(-span, span + 1), 0, size - p))
        self._pos = (y, x)
        # Occasionally refresh the drift target so the stream never settles.
        if rng.random() < 0.05:
            self._target = self.library.sample(self.class_index, rng)
        region = (slice(None), slice(y, y + p), slice(x, x + p))
        patch = self._frame[region]
        target = self._target[region]
        noise = rng.normal(0.0, 0.05, size=patch.shape)
        self._frame[region] = (1.0 - self.drift) * patch + self.drift * target + noise
        return self._frame.copy()

    def take(self, n: int) -> np.ndarray:
        """The next ``n`` frames, stacked ``(n, channels, H, W)``."""
        return np.stack([self.next() for _ in range(n)])
