"""Reusable building blocks: Conv-BN-ReLU, residual BasicBlock, InvertedResidual."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import BatchNorm2d, Conv2d, Identity, Module, ReLU, ReLU6, Sequential
from repro.utils.rng import SeedLike, new_rng, spawn_rngs


class ConvBNReLU(Module):
    """Convolution → batch norm → ReLU (or ReLU6)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: Optional[int] = None,
        groups: int = 1,
        relu6: bool = False,
        rng: SeedLike = None,
    ):
        super().__init__()
        if padding is None:
            padding = kernel_size // 2
        self.conv = Conv2d(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            groups=groups,
            bias=False,
            rng=rng,
        )
        self.bn = BatchNorm2d(out_channels)
        self.act = ReLU6() if relu6 else ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.act(self.bn(self.conv(x)))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.conv.backward(self.bn.backward(self.act.backward(grad_output)))

    def lower_into(self, builder, x: int) -> int:
        x = builder.lower(self.conv, x, "conv")
        x = builder.lower(self.bn, x, "bn")
        return builder.lower(self.act, x, "act")


class BasicBlock(Module):
    """ResNet basic block: two 3x3 convolutions with an identity/projection shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: SeedLike = None,
    ):
        super().__init__()
        rngs = spawn_rngs(new_rng(rng), 3)
        self.conv1 = Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rngs[0]
        )
        self.bn1 = BatchNorm2d(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(
            out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rngs[1]
        )
        self.bn2 = BatchNorm2d(out_channels)
        self.relu2 = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(
                    in_channels,
                    out_channels,
                    1,
                    stride=stride,
                    padding=0,
                    bias=False,
                    rng=rngs[2],
                ),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = self.bn2(self.conv2(self.relu1(self.bn1(self.conv1(x)))))
        residual = self.shortcut(x)
        return self.relu2(main + residual)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_sum = self.relu2.backward(grad_output)
        grad_main = self.conv1.backward(
            self.bn1.backward(
                self.relu1.backward(self.conv2.backward(self.bn2.backward(grad_sum)))
            )
        )
        grad_residual = self.shortcut.backward(grad_sum)
        return grad_main + grad_residual

    def lower_into(self, builder, x: int) -> int:
        main = builder.lower(self.conv1, x, "conv1")
        main = builder.lower(self.bn1, main, "bn1")
        main = builder.lower(self.relu1, main, "relu1")
        main = builder.lower(self.conv2, main, "conv2")
        main = builder.lower(self.bn2, main, "bn2")
        residual = builder.lower(self.shortcut, x, "shortcut")
        out = builder.add("add", main, residual)
        return builder.lower(self.relu2, out, "relu2")


class InvertedResidual(Module):
    """MobileNet-v2 inverted residual block.

    Expansion 1x1 (pointwise) → depthwise 3x3 → projection 1x1.  Only the
    pointwise convolutions are eligible for weight-pool compression; the paper
    keeps the depthwise layers uncompressed (§5.1).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        expand_ratio: int = 6,
        rng: SeedLike = None,
    ):
        super().__init__()
        if stride not in (1, 2):
            raise ValueError(f"stride must be 1 or 2, got {stride}")
        rngs = spawn_rngs(new_rng(rng), 3)
        hidden = in_channels * expand_ratio
        self.use_residual = stride == 1 and in_channels == out_channels
        self.expand_ratio = expand_ratio

        if expand_ratio != 1:
            self.expand = ConvBNReLU(in_channels, hidden, 1, relu6=True, rng=rngs[0])
        else:
            self.expand = Identity()
            hidden = in_channels
        self.depthwise = ConvBNReLU(
            hidden, hidden, 3, stride=stride, groups=hidden, relu6=True, rng=rngs[1]
        )
        self.project_conv = Conv2d(hidden, out_channels, 1, bias=False, rng=rngs[2])
        self.project_bn = BatchNorm2d(out_channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.project_bn(self.project_conv(self.depthwise(self.expand(x))))
        if self.use_residual:
            out = out + x
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.expand.backward(
            self.depthwise.backward(
                self.project_conv.backward(self.project_bn.backward(grad_output))
            )
        )
        if self.use_residual:
            grad = grad + grad_output
        return grad

    def lower_into(self, builder, x: int) -> int:
        out = builder.lower(self.expand, x, "expand")
        out = builder.lower(self.depthwise, out, "depthwise")
        out = builder.lower(self.project_conv, out, "project_conv")
        out = builder.lower(self.project_bn, out, "project_bn")
        if self.use_residual:
            out = builder.add("add", out, x)
        return out
