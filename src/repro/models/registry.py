"""Model registry mapping names to factory functions.

Names ending in ``_tiny`` are width/depth-scaled variants used by the fast
experiment presets; the un-suffixed names match the paper's five networks.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.models.mobilenetv2 import TINY_SETTINGS, MobileNetV2
from repro.models.resnet import resnet10, resnet14, resnet18, resnet_s
from repro.models.tinyconv import TinyConv
from repro.nn import Module
from repro.utils.rng import SeedLike

ModelFactory = Callable[..., Module]

MODEL_REGISTRY: Dict[str, ModelFactory] = {}


def register_model(name: str):
    """Decorator registering a model factory under ``name``."""

    def decorator(factory: ModelFactory) -> ModelFactory:
        if name in MODEL_REGISTRY:
            raise ValueError(f"model '{name}' is already registered")
        MODEL_REGISTRY[name] = factory
        return factory

    return decorator


def available_models() -> List[str]:
    """Sorted list of registered model names."""
    return sorted(MODEL_REGISTRY)


def create_model(
    name: str,
    num_classes: int = 10,
    in_channels: int = 3,
    rng: SeedLike = None,
    **kwargs,
) -> Module:
    """Instantiate a registered model by name."""
    if name not in MODEL_REGISTRY:
        raise KeyError(
            f"unknown model '{name}'; available: {', '.join(available_models())}"
        )
    return MODEL_REGISTRY[name](
        num_classes=num_classes, in_channels=in_channels, rng=rng, **kwargs
    )


# --- paper networks ---------------------------------------------------------
@register_model("tinyconv")
def _tinyconv(num_classes=10, in_channels=3, rng=None, **kwargs) -> Module:
    return TinyConv(num_classes=num_classes, in_channels=in_channels, rng=rng, **kwargs)


@register_model("resnet_s")
def _resnet_s(num_classes=10, in_channels=3, rng=None, **kwargs) -> Module:
    return resnet_s(num_classes=num_classes, in_channels=in_channels, rng=rng, **kwargs)


@register_model("resnet10")
def _resnet10(num_classes=10, in_channels=3, rng=None, **kwargs) -> Module:
    return resnet10(num_classes=num_classes, in_channels=in_channels, rng=rng, **kwargs)


@register_model("resnet14")
def _resnet14(num_classes=10, in_channels=3, rng=None, **kwargs) -> Module:
    return resnet14(num_classes=num_classes, in_channels=in_channels, rng=rng, **kwargs)


@register_model("resnet18")
def _resnet18(num_classes=10, in_channels=3, rng=None, **kwargs) -> Module:
    return resnet18(num_classes=num_classes, in_channels=in_channels, rng=rng, **kwargs)


@register_model("mobilenetv2")
def _mobilenetv2(num_classes=100, in_channels=3, rng=None, **kwargs) -> Module:
    return MobileNetV2(num_classes=num_classes, in_channels=in_channels, rng=rng, **kwargs)


# --- fast variants for the tiny/small experiment scales ----------------------
@register_model("tinyconv_tiny")
def _tinyconv_tiny(num_classes=10, in_channels=3, rng=None, **kwargs) -> Module:
    kwargs.setdefault("width_mult", 0.25)
    return TinyConv(num_classes=num_classes, in_channels=in_channels, rng=rng, **kwargs)


@register_model("resnet_s_tiny")
def _resnet_s_tiny(num_classes=10, in_channels=3, rng=None, **kwargs) -> Module:
    kwargs.setdefault("width_mult", 0.5)
    return resnet_s(num_classes=num_classes, in_channels=in_channels, rng=rng, **kwargs)


@register_model("resnet10_tiny")
def _resnet10_tiny(num_classes=10, in_channels=3, rng=None, **kwargs) -> Module:
    kwargs.setdefault("width_mult", 0.25)
    return resnet10(num_classes=num_classes, in_channels=in_channels, rng=rng, **kwargs)


@register_model("resnet14_tiny")
def _resnet14_tiny(num_classes=10, in_channels=3, rng=None, **kwargs) -> Module:
    kwargs.setdefault("width_mult", 0.25)
    return resnet14(num_classes=num_classes, in_channels=in_channels, rng=rng, **kwargs)


@register_model("mobilenetv2_tiny")
def _mobilenetv2_tiny(num_classes=10, in_channels=3, rng=None, **kwargs) -> Module:
    kwargs.setdefault("width_mult", 0.5)
    kwargs.setdefault("inverted_residual_settings", TINY_SETTINGS)
    kwargs.setdefault("last_channels", 256)
    return MobileNetV2(num_classes=num_classes, in_channels=in_channels, rng=rng, **kwargs)
