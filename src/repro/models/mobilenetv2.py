"""MobileNet-v2 adapted to CIFAR/Quickdraw-scale inputs.

Follows Sandler et al. (2018) with the stride schedule reduced for 32x32
inputs (the first two downsampling strides are removed, as is standard for
CIFAR adaptations).  Only the 1x1 pointwise convolutions are eligible for
weight-pool compression; depthwise layers stay uncompressed (paper §5.1).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.models.blocks import ConvBNReLU, InvertedResidual
from repro.nn import GlobalAvgPool2d, Linear, Module, Sequential
from repro.utils.rng import SeedLike, new_rng, spawn_rngs

# (expansion t, output channels c, repeats n, stride s) per stage, from the
# MobileNet-v2 paper, with strides adapted for 32x32 inputs.
_CIFAR_SETTINGS: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 1),   # stride 2 -> 1 for CIFAR
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _scale_channels(channels: int, width_mult: float) -> int:
    return max(4, int(round(channels * width_mult)))


class MobileNetV2(Module):
    """MobileNet-v2 backbone + linear classifier.

    ``inverted_residual_settings`` may be overridden (the tiny experiment
    presets use a truncated stage list).
    """

    def __init__(
        self,
        num_classes: int = 100,
        in_channels: int = 3,
        width_mult: float = 1.0,
        inverted_residual_settings: Sequence[Tuple[int, int, int, int]] = _CIFAR_SETTINGS,
        last_channels: int = 1280,
        rng: SeedLike = None,
    ):
        super().__init__()
        rng = new_rng(rng)
        total_blocks = sum(n for _, _, n, _ in inverted_residual_settings)
        rngs = spawn_rngs(rng, total_blocks + 3)

        self.num_classes = num_classes
        self.in_channels = in_channels

        stem_width = _scale_channels(32, width_mult)
        self.stem = ConvBNReLU(in_channels, stem_width, 3, stride=1, relu6=True, rng=rngs[0])

        blocks: List[Module] = []
        prev = stem_width
        rng_idx = 1
        for t, c, n, s in inverted_residual_settings:
            out_ch = _scale_channels(c, width_mult)
            for block_idx in range(n):
                stride = s if block_idx == 0 else 1
                blocks.append(
                    InvertedResidual(prev, out_ch, stride=stride, expand_ratio=t, rng=rngs[rng_idx])
                )
                prev = out_ch
                rng_idx += 1
        self.blocks = Sequential(*blocks)

        head_width = _scale_channels(last_channels, width_mult) if width_mult < 1.0 else last_channels
        self.head = ConvBNReLU(prev, head_width, 1, relu6=True, rng=rngs[rng_idx])
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(head_width, num_classes, rng=rngs[rng_idx + 1])

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        x = self.blocks(x)
        x = self.head(x)
        x = self.pool(x)
        return self.classifier(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_output)
        grad = self.pool.backward(grad)
        grad = self.head.backward(grad)
        grad = self.blocks.backward(grad)
        return self.stem.backward(grad)

    def lower_into(self, builder, x: int) -> int:
        x = builder.lower(self.stem, x, "stem")
        x = builder.lower(self.blocks, x, "blocks")
        x = builder.lower(self.head, x, "head")
        x = builder.lower(self.pool, x, "pool")
        return builder.lower(self.classifier, x, "classifier")


# Truncated settings for the fast experiment presets: three stages only.
TINY_SETTINGS: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 2, 2),
)
