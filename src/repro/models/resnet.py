"""CIFAR-style ResNets: ResNet-s, ResNet-10, ResNet-14, ResNet-18.

The paper derives its ResNet variants from ResNet-18 adapted to CIFAR-10:

* **ResNet-18** — 4 stages of 2 basic blocks, widths (64, 128, 256, 512).
* **ResNet-14** — ResNet-18 with the *last block* (stage) truncated.
* **ResNet-10** — ResNet-18 with the last *two* stages truncated.
* **ResNet-s** — the scaled-down ResNet used by MLPerf Tiny (Banbury et al.,
  2021): 3 stages of a single block with widths (16, 32, 64).

A ``width_mult`` argument produces the fast variants used by the tiny-scale
experiment presets.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.models.blocks import BasicBlock, ConvBNReLU
from repro.nn import GlobalAvgPool2d, Linear, Module, Sequential
from repro.utils.rng import SeedLike, new_rng, spawn_rngs


class ResNet(Module):
    """Generic CIFAR-style ResNet made of :class:`BasicBlock` stages."""

    def __init__(
        self,
        stage_widths: Sequence[int],
        blocks_per_stage: Sequence[int],
        num_classes: int = 10,
        in_channels: int = 3,
        stem_width: int | None = None,
        width_mult: float = 1.0,
        rng: SeedLike = None,
    ):
        super().__init__()
        if len(stage_widths) != len(blocks_per_stage):
            raise ValueError("stage_widths and blocks_per_stage length mismatch")
        widths = [max(4, int(round(w * width_mult))) for w in stage_widths]
        stem_width = (
            max(4, int(round((stem_width or stage_widths[0]) * width_mult)))
            if stem_width is not None
            else widths[0]
        )
        rng = new_rng(rng)
        rngs = spawn_rngs(rng, 2 + sum(blocks_per_stage))

        self.num_classes = num_classes
        self.in_channels = in_channels
        self.stage_widths = widths

        self.stem = ConvBNReLU(in_channels, stem_width, 3, stride=1, rng=rngs[0])
        blocks = []
        rng_idx = 1
        prev = stem_width
        for stage_idx, (width, num_blocks) in enumerate(zip(widths, blocks_per_stage)):
            for block_idx in range(num_blocks):
                # First block of every stage except the first downsamples.
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                blocks.append(BasicBlock(prev, width, stride=stride, rng=rngs[rng_idx]))
                prev = width
                rng_idx += 1
        self.blocks = Sequential(*blocks)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(prev, num_classes, rng=rngs[rng_idx])

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        x = self.blocks(x)
        x = self.pool(x)
        return self.classifier(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_output)
        grad = self.pool.backward(grad)
        grad = self.blocks.backward(grad)
        return self.stem.backward(grad)

    def lower_into(self, builder, x: int) -> int:
        x = builder.lower(self.stem, x, "stem")
        x = builder.lower(self.blocks, x, "blocks")
        x = builder.lower(self.pool, x, "pool")
        return builder.lower(self.classifier, x, "classifier")


def resnet18(num_classes: int = 10, in_channels: int = 3, width_mult: float = 1.0,
             rng: SeedLike = None) -> ResNet:
    """Full CIFAR ResNet-18 (4 stages × 2 blocks, widths 64..512)."""
    return ResNet(
        (64, 128, 256, 512), (2, 2, 2, 2), num_classes, in_channels,
        width_mult=width_mult, rng=rng,
    )


def resnet14(num_classes: int = 10, in_channels: int = 3, width_mult: float = 1.0,
             rng: SeedLike = None) -> ResNet:
    """ResNet-18 with the last stage truncated (the paper's ResNet-14)."""
    return ResNet(
        (64, 128, 256), (2, 2, 2), num_classes, in_channels,
        width_mult=width_mult, rng=rng,
    )


def resnet10(num_classes: int = 10, in_channels: int = 3, width_mult: float = 1.0,
             rng: SeedLike = None) -> ResNet:
    """ResNet-18 with the last two stages truncated (the paper's ResNet-10)."""
    return ResNet(
        (64, 128), (2, 2), num_classes, in_channels, width_mult=width_mult, rng=rng,
    )


def resnet_s(num_classes: int = 10, in_channels: int = 3, width_mult: float = 1.0,
             rng: SeedLike = None) -> ResNet:
    """Scaled-down ResNet-18 (the paper's ResNet-s): 3 stages, widths 16/32/64.

    With two blocks per stage this lands at ~175k parameters, matching the
    ~171k the paper reports for ResNet-s in Table 3.
    """
    return ResNet(
        (16, 32, 64), (2, 2, 2), num_classes, in_channels,
        width_mult=width_mult, rng=rng,
    )
