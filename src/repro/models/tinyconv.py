"""TinyConv: the CMSIS-NN CIFAR-10 example network used by the paper (Lai et al. 2018)."""

from __future__ import annotations

import numpy as np

from repro.nn import (
    AvgPool2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from repro.utils.rng import SeedLike, new_rng, spawn_rngs


class TinyConv(Module):
    """Three 5x5 convolutions with pooling, followed by one fully-connected layer.

    Structure (following the CMSIS-NN CIFAR-10 example the paper cites):

    ``conv5x5(C→32) → maxpool2 → relu → conv5x5(32→32) → relu → avgpool2 →
    conv5x5(32→64) → relu → avgpool2 → fc → logits``

    ``width_mult`` scales all channel counts for the fast "tiny" variants.
    """

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        width_mult: float = 1.0,
        rng: SeedLike = None,
    ):
        super().__init__()
        if image_size % 8 != 0:
            raise ValueError(f"image_size must be divisible by 8, got {image_size}")
        rngs = spawn_rngs(new_rng(rng), 4)
        c1 = max(4, int(round(32 * width_mult)))
        c2 = max(4, int(round(32 * width_mult)))
        c3 = max(8, int(round(64 * width_mult)))
        self.image_size = image_size
        self.num_classes = num_classes
        self.in_channels = in_channels

        # Three pooling stages of factor 2 reduce the input by 8x; CIFAR's 32 -> 4.
        final_spatial = image_size // 8
        self.features = Sequential(
            Conv2d(in_channels, c1, 5, stride=1, padding=2, rng=rngs[0]),
            MaxPool2d(2),
            ReLU(),
            Conv2d(c1, c2, 5, stride=1, padding=2, rng=rngs[1]),
            ReLU(),
            AvgPool2d(2),
            Conv2d(c2, c3, 5, stride=1, padding=2, rng=rngs[2]),
            ReLU(),
            AvgPool2d(2),
            Flatten(),
        )
        self.classifier = Linear(c3 * final_spatial * final_spatial, num_classes, rng=rngs[3])

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.classifier(self.features(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.features.backward(self.classifier.backward(grad_output))

    def lower_into(self, builder, x: int) -> int:
        x = builder.lower(self.features, x, "features")
        return builder.lower(self.classifier, x, "classifier")
