"""Model zoo: the paper's five networks plus scaled-down fast variants.

All models are built on :mod:`repro.nn` and follow the paper's setup
(Section 5.1): CIFAR-scale inputs, 3x3-dominated convolutions, batch norm, and
a final fully-connected classifier.
"""

from repro.models.blocks import ConvBNReLU, BasicBlock, InvertedResidual
from repro.models.tinyconv import TinyConv
from repro.models.resnet import ResNet, resnet_s, resnet10, resnet14, resnet18
from repro.models.mobilenetv2 import MobileNetV2
from repro.models.registry import (
    MODEL_REGISTRY,
    available_models,
    create_model,
    register_model,
)

__all__ = [
    "ConvBNReLU",
    "BasicBlock",
    "InvertedResidual",
    "TinyConv",
    "ResNet",
    "resnet_s",
    "resnet10",
    "resnet14",
    "resnet18",
    "MobileNetV2",
    "MODEL_REGISTRY",
    "available_models",
    "create_model",
    "register_model",
]
