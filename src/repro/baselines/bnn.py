"""Binarized neural networks (the §5.5 comparison point).

The paper compares weight-pool networks against binarized networks
(3PXNet-style), noting a similar theoretical compression ratio but a large
accuracy gap (66.9 % vs 81.2 % for TinyConv on CIFAR-10).  This module
provides a standard BNN training setup on the NumPy substrate:

* :class:`BinaryConv2d` / :class:`BinaryLinear` — weights binarized to
  ``sign(w) * mean(|w|)`` (per-filter scaling), trained with a
  straight-through estimator on the latent full-precision weights.
* :class:`BinaryActivation` — sign activation with the clipped
  straight-through estimator.
* :func:`binarize_model` — replace layers of an existing model (keeping the
  first and last layer full precision, the usual BNN practice).
"""

from __future__ import annotations

import copy
from typing import Tuple

import numpy as np

from repro.core.tracing import trace_model
from repro.nn import Conv2d, Linear, Module
from repro.nn import functional as F


def binarize_weights(weight: np.ndarray) -> np.ndarray:
    """Per-filter binarization: ``sign(w) * mean(|w|)`` over each output filter."""
    flat = weight.reshape(weight.shape[0], -1)
    alpha = np.abs(flat).mean(axis=1)
    signs = np.where(weight >= 0, 1.0, -1.0)
    return signs * alpha.reshape((-1,) + (1,) * (weight.ndim - 1))


class BinaryConv2d(Conv2d):
    """Convolution with binarized weights and an STE backward pass."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.last_input_shape = x.shape
        weight = binarize_weights(self.weight.data)
        bias = self.bias.data if self.bias is not None else None
        out, cols = F.conv2d_forward(x, weight, bias, self.stride, self.padding, self.groups)
        self._cache = (x.shape, cols, weight)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        x_shape, cols, weight = self._cache
        grad_x, grad_w, grad_b = F.conv2d_backward(
            grad_output, cols, x_shape, weight, self.stride, self.padding, self.groups,
            has_bias=self.bias is not None,
        )
        # Straight-through with clipping: no gradient where |w| > 1.
        ste_mask = (np.abs(self.weight.data) <= 1.0).astype(np.float64)
        self.weight.accumulate_grad(grad_w * ste_mask)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_b)
        return grad_x

    @classmethod
    def from_conv(cls, conv: Conv2d) -> "BinaryConv2d":
        layer = cls(
            conv.in_channels, conv.out_channels, conv.kernel_size,
            stride=conv.stride, padding=conv.padding, groups=conv.groups,
            bias=conv.bias is not None,
        )
        layer.weight.copy_(conv.weight.data)
        if conv.bias is not None:
            layer.bias.copy_(conv.bias.data)
        return layer


class BinaryLinear(Linear):
    """Fully-connected layer with binarized weights and an STE backward pass."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.last_input_shape = x.shape
        weight = binarize_weights(self.weight.data)
        self._cache = (x, weight)
        out = x @ weight.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        x, weight = self._cache
        ste_mask = (np.abs(self.weight.data) <= 1.0).astype(np.float64)
        self.weight.accumulate_grad((grad_output.T @ x) * ste_mask)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_output.sum(axis=0))
        return grad_output @ weight

    @classmethod
    def from_linear(cls, linear: Linear) -> "BinaryLinear":
        layer = cls(linear.in_features, linear.out_features, bias=linear.bias is not None)
        layer.weight.copy_(linear.weight.data)
        if linear.bias is not None:
            layer.bias.copy_(linear.bias.data)
        return layer


class BinaryActivation(Module):
    """Sign activation (±1) with the clipped straight-through estimator."""

    def __init__(self) -> None:
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = (np.abs(x) <= 1.0).astype(np.float64)
        return np.where(x >= 0, 1.0, -1.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() called before forward()")
        return grad_output * self._mask


def binarize_model(
    model: Module,
    input_shape: Tuple[int, int, int],
    keep_first_last_full_precision: bool = True,
    inplace: bool = False,
) -> Module:
    """Replace conv/linear layers with binarized versions (weights only).

    Activation binarization is left to the model definition (insert
    :class:`BinaryActivation` where desired); for the §5.5 comparison, weight
    binarization plus the standard first/last-layer exception is sufficient to
    reproduce the large accuracy gap against weight pools.
    """
    if not inplace:
        model = copy.deepcopy(model)
    traces = trace_model(model, input_shape)
    if not traces:
        raise ValueError("model has no conv/linear layers to binarize")
    last_name = traces[-1].name
    for trace in traces:
        module = trace.module
        if keep_first_last_full_precision and (trace.is_first or trace.name == last_name):
            continue
        if isinstance(module, (BinaryConv2d, BinaryLinear)):
            continue
        if trace.kind == "conv" and isinstance(module, Conv2d):
            replacement: Module = BinaryConv2d.from_conv(module)
        elif trace.kind == "linear" and isinstance(module, Linear):
            replacement = BinaryLinear.from_linear(module)
        else:  # pragma: no cover - defensive
            continue
        _replace_child(model, trace.name, replacement)
    return model


def binary_network_storage_bits(model: Module, input_shape: Tuple[int, int, int]) -> float:
    """Storage of a binarized deployment: 1 bit per binarized weight, 8 bits otherwise."""
    traces = trace_model(model, input_shape)
    total = 0.0
    for trace in traces:
        bits_per_weight = 1 if isinstance(trace.module, (BinaryConv2d, BinaryLinear)) else 8
        total += trace.weight_params * bits_per_weight + trace.bias_params * 8
    return total


def _replace_child(model: Module, qualified_name: str, new_module: Module) -> None:
    parts = qualified_name.split(".")
    parent = model
    for part in parts[:-1]:
        parent = parent._modules[part]
    setattr(parent, parts[-1], new_module)
