"""Baselines the paper compares against.

* :mod:`repro.baselines.cmsis` — a CMSIS-NN-style 8-bit (q7) inference
  pipeline: per-tensor symmetric weight quantization plus per-layer activation
  quantization.  Its runtime cost model lives in :mod:`repro.mcu.kernels.cmsis`.
* :mod:`repro.baselines.bnn` — binarized networks (weights and activations
  constrained to ±1, trained with a straight-through estimator), used for the
  §5.5 accuracy comparison.
"""

from repro.baselines.cmsis import Int8Conv2d, Int8Linear, quantize_model_int8
from repro.baselines.bnn import (
    BinaryActivation,
    BinaryConv2d,
    BinaryLinear,
    binarize_model,
    binary_network_storage_bits,
)

__all__ = [
    "Int8Conv2d",
    "Int8Linear",
    "quantize_model_int8",
    "BinaryActivation",
    "BinaryConv2d",
    "BinaryLinear",
    "binarize_model",
    "binary_network_storage_bits",
]
