"""CMSIS-NN-style int8 (q7) inference simulation.

The paper's runtime baseline is ARM's CMSIS-NN library executing 8-bit
networks.  For accuracy purposes this module provides the equivalent
*functional* pipeline: each convolution / fully-connected layer quantizes its
weights per-tensor (symmetric, 8-bit) and its input activations per-layer
(affine, 8-bit, calibrated on sample data), then computes in the quantized
domain.  The corresponding cycle-cost model lives in
:mod:`repro.mcu.kernels.cmsis`.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.tracing import trace_model
from repro.nn import Conv2d, DataLoader, Linear, Module
from repro.nn import functional as F
from repro.quantization.activation import ActivationQuantizer
from repro.quantization.calibration import CalibrationMethod
from repro.quantization.quantizer import fake_quantize
from repro.quantization.weights import quantize_weight_tensor
from repro.quantization.quantizer import dequantize


class Int8Conv2d(Conv2d):
    """Convolution executing with fake-quantized int8 weights and activations."""

    def __init__(self, conv: Conv2d, activation_bitwidth: int = 8,
                 calibration: CalibrationMethod = CalibrationMethod.MINMAX):
        super().__init__(
            conv.in_channels,
            conv.out_channels,
            conv.kernel_size,
            stride=conv.stride,
            padding=conv.padding,
            groups=conv.groups,
            bias=conv.bias is not None,
        )
        self.weight.copy_(conv.weight.data)
        if conv.bias is not None:
            self.bias.copy_(conv.bias.data)
        q_weight, params = quantize_weight_tensor(conv.weight.data, bitwidth=8)
        self._quantized_weight = dequantize(q_weight, params)
        self.input_quantizer = ActivationQuantizer(
            bitwidth=activation_bitwidth, method=calibration
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.last_input_shape = x.shape
        x_q = self.input_quantizer(x)
        bias = self.bias.data if self.bias is not None else None
        out, _ = F.conv2d_forward(
            x_q, self._quantized_weight, bias, self.stride, self.padding, self.groups
        )
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError("the int8 baseline is an inference-only pipeline")


class Int8Linear(Linear):
    """Fully-connected layer executing with fake-quantized int8 weights/activations."""

    def __init__(self, linear: Linear, activation_bitwidth: int = 8,
                 calibration: CalibrationMethod = CalibrationMethod.MINMAX):
        super().__init__(linear.in_features, linear.out_features, bias=linear.bias is not None)
        self.weight.copy_(linear.weight.data)
        if linear.bias is not None:
            self.bias.copy_(linear.bias.data)
        q_weight, params = quantize_weight_tensor(linear.weight.data, bitwidth=8)
        self._quantized_weight = dequantize(q_weight, params)
        self.input_quantizer = ActivationQuantizer(
            bitwidth=activation_bitwidth, method=calibration
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.last_input_shape = x.shape
        x_q = self.input_quantizer(x)
        out = x_q @ self._quantized_weight.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError("the int8 baseline is an inference-only pipeline")


def quantize_model_int8(
    model: Module,
    input_shape: Tuple[int, int, int],
    calibration_loader: DataLoader,
    calibration_batches: int = 4,
    activation_bitwidth: int = 8,
    calibration: CalibrationMethod = CalibrationMethod.MINMAX,
    inplace: bool = False,
) -> Module:
    """Convert a float model into the CMSIS-style int8 simulation.

    Every convolution and fully-connected layer is replaced by its int8
    counterpart; activation ranges are then calibrated on a few batches and
    frozen.  Returns the quantized model (a deep copy unless ``inplace``).
    """
    if not inplace:
        model = copy.deepcopy(model)
    traces = trace_model(model, input_shape)
    for trace in traces:
        module = trace.module
        if isinstance(module, (Int8Conv2d, Int8Linear)):
            continue
        if trace.kind == "conv" and isinstance(module, Conv2d):
            replacement: Module = Int8Conv2d(module, activation_bitwidth, calibration)
        elif trace.kind == "linear" and isinstance(module, Linear):
            replacement = Int8Linear(module, activation_bitwidth, calibration)
        else:  # pragma: no cover - defensive
            continue
        _replace_child(model, trace.name, replacement)

    # Calibration pass: observers record ranges, layers compute in float.
    model.eval()
    for batch_index, (inputs, _) in enumerate(calibration_loader):
        if batch_index >= calibration_batches:
            break
        model(inputs)
    for module in model.modules():
        if isinstance(module, (Int8Conv2d, Int8Linear)):
            module.input_quantizer.freeze()
    return model


def _replace_child(model: Module, qualified_name: str, new_module: Module) -> None:
    parts = qualified_name.split(".")
    parent = model
    for part in parts[:-1]:
        parent = parent._modules[part]
    setattr(parent, parts[-1], new_module)
