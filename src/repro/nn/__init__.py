"""A from-scratch NumPy deep-learning substrate.

The paper trains and fine-tunes its networks in PyTorch; this package provides
the equivalent substrate without external deep-learning dependencies.  It is a
layer-oriented framework: every :class:`Module` implements an explicit
``forward`` and ``backward`` so the whole library remains easy to read and to
verify with finite-difference gradient checks (see :mod:`repro.nn.gradcheck`).

Design notes
------------
* Tensors are plain ``numpy.ndarray`` in NCHW layout.
* Modules cache whatever ``backward`` needs during ``forward``; calling
  ``backward`` before ``forward`` is an error.
* Parameters accumulate gradients in ``Parameter.grad``; optimizers read and
  update ``Parameter.data`` in place.
"""

from repro.nn.parameter import Parameter
from repro.nn.module import Module
from repro.nn.layers.container import Sequential
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.batchnorm import BatchNorm2d
from repro.nn.layers.activations import ReLU, ReLU6, Identity
from repro.nn.layers.pooling import AvgPool2d, MaxPool2d, GlobalAvgPool2d
from repro.nn.layers.shape import Flatten
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim.sgd import SGD
from repro.nn.optim.scheduler import StepLR, MultiStepLR, CosineAnnealingLR
from repro.nn.data.dataset import ArrayDataset, Dataset, Subset
from repro.nn.data.dataloader import DataLoader
from repro.nn.training.trainer import Trainer, TrainConfig
from repro.nn.training.metrics import accuracy, top_k_accuracy

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "Identity",
    "AvgPool2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "CrossEntropyLoss",
    "SGD",
    "StepLR",
    "MultiStepLR",
    "CosineAnnealingLR",
    "Dataset",
    "ArrayDataset",
    "Subset",
    "DataLoader",
    "Trainer",
    "TrainConfig",
    "accuracy",
    "top_k_accuracy",
]
