"""Epoch-based training loop used for pretraining and weight-pool fine-tuning."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.nn.data.dataloader import DataLoader
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim.sgd import SGD
from repro.nn.training.metrics import accuracy


@dataclass
class TrainConfig:
    """Hyper-parameters for :class:`Trainer.fit`."""

    epochs: int = 10
    log_every: int = 0  # 0 disables intra-epoch logging
    clip_grad_norm: Optional[float] = None


@dataclass
class EpochStats:
    """Per-epoch statistics recorded in the training history."""

    epoch: int
    train_loss: float
    train_accuracy: float
    val_accuracy: Optional[float] = None
    lr: Optional[float] = None


class Trainer:
    """Runs SGD training of a :class:`Module` with an explicit backward pass.

    The trainer also supports an ``after_forward`` hook used by the weight-pool
    fine-tuning pipeline (the paper reassigns indices to the nearest pool vector
    during the forward pass and updates the latent weights in the backward pass).
    """

    def __init__(
        self,
        model: Module,
        optimizer: SGD,
        loss_fn: Optional[CrossEntropyLoss] = None,
        scheduler=None,
        after_forward: Optional[Callable[[Module], None]] = None,
        after_step: Optional[Callable[[Module], None]] = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn or CrossEntropyLoss()
        self.scheduler = scheduler
        self.after_forward = after_forward
        self.after_step = after_step
        self.history: List[EpochStats] = []

    # -- single steps -------------------------------------------------------
    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> Dict[str, float]:
        """One optimization step; returns loss and batch accuracy."""
        self.model.train()
        self.optimizer.zero_grad()
        logits = self.model(inputs)
        if self.after_forward is not None:
            self.after_forward(self.model)
        loss = self.loss_fn(logits, targets)
        grad = self.loss_fn.backward()
        self.model.backward(grad)
        self._clip_gradients()
        self.optimizer.step()
        if self.after_step is not None:
            self.after_step(self.model)
        return {"loss": loss, "accuracy": accuracy(logits, targets)}

    def _clip_gradients(self) -> None:
        max_norm = getattr(self, "_clip_grad_norm", None)
        if not max_norm:
            return
        total = np.sqrt(sum(float((p.grad**2).sum()) for p in self.optimizer.parameters))
        if total > max_norm and total > 0:
            scale = max_norm / total
            for p in self.optimizer.parameters:
                p.grad *= scale

    # -- full loops ----------------------------------------------------------
    def fit(
        self,
        train_loader: DataLoader,
        config: Optional[TrainConfig] = None,
        val_loader: Optional[DataLoader] = None,
    ) -> List[EpochStats]:
        """Train for ``config.epochs`` epochs; returns the per-epoch history."""
        config = config or TrainConfig()
        self._clip_grad_norm = config.clip_grad_norm
        for epoch in range(1, config.epochs + 1):
            losses, accs = [], []
            for inputs, targets in train_loader:
                stats = self.train_step(inputs, targets)
                losses.append(stats["loss"])
                accs.append(stats["accuracy"])
            val_acc = self.evaluate(val_loader) if val_loader is not None else None
            lr = self.optimizer.lr
            if self.scheduler is not None:
                lr = self.scheduler.step()
            self.history.append(
                EpochStats(
                    epoch=epoch,
                    train_loss=float(np.mean(losses)) if losses else float("nan"),
                    train_accuracy=float(np.mean(accs)) if accs else float("nan"),
                    val_accuracy=val_acc,
                    lr=lr,
                )
            )
        return self.history

    def evaluate(self, loader: DataLoader) -> float:
        """Top-1 accuracy of the model over a loader, in eval mode."""
        self.model.eval()
        correct = 0
        total = 0
        for inputs, targets in loader:
            logits = self.model(inputs)
            correct += int((logits.argmax(axis=1) == targets).sum())
            total += len(targets)
        if total == 0:
            raise ValueError("evaluation loader produced no samples")
        return correct / total


def evaluate_model(model: Module, loader: DataLoader) -> float:
    """Convenience wrapper: accuracy of ``model`` over ``loader`` in eval mode."""
    model.eval()
    correct = 0
    total = 0
    for inputs, targets in loader:
        logits = model(inputs)
        correct += int((logits.argmax(axis=1) == targets).sum())
        total += len(targets)
    if total == 0:
        raise ValueError("evaluation loader produced no samples")
    return correct / total
