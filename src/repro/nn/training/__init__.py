"""Training loop and metrics."""

from repro.nn.training.trainer import Trainer, TrainConfig
from repro.nn.training.metrics import accuracy, top_k_accuracy

__all__ = ["Trainer", "TrainConfig", "accuracy", "top_k_accuracy"]
