"""Classification metrics."""

from __future__ import annotations

import numpy as np


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy given logits (or probabilities) and integer targets."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError(f"expected 2D logits, got shape {logits.shape}")
    if len(logits) != len(targets):
        raise ValueError("logits and targets length mismatch")
    if len(targets) == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    predictions = logits.argmax(axis=1)
    return float((predictions == targets).mean())


def top_k_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if k < 1 or k > logits.shape[1]:
        raise ValueError(f"k must be in [1, num_classes], got {k}")
    top_k = np.argsort(-logits, axis=1)[:, :k]
    hits = (top_k == targets[:, None]).any(axis=1)
    return float(hits.mean())
