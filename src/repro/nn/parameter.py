"""Trainable parameter container."""

from __future__ import annotations

from typing import Optional

import numpy as np


class Parameter:
    """A named, trainable tensor with an accumulated gradient.

    Parameters are always stored as ``float64`` to keep finite-difference
    gradient checks well conditioned; inference-oriented code quantizes copies
    rather than mutating parameters in place.
    """

    def __init__(self, data: np.ndarray, trainable: bool = True, name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray = np.zeros_like(self.data)
        self.trainable = trainable
        self.name = name

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad[...] = 0.0

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the accumulated gradient (shape-checked)."""
        grad = np.asarray(grad)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter shape "
                f"{self.data.shape} for parameter '{self.name}'"
            )
        self.grad += grad

    def copy_(self, values: np.ndarray) -> None:
        """Overwrite the parameter values in place (shape-checked)."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self.data.shape:
            raise ValueError(
                f"values shape {values.shape} does not match parameter shape "
                f"{self.data.shape} for parameter '{self.name}'"
            )
        self.data[...] = values

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        label: Optional[str] = self.name or None
        return f"Parameter(name={label!r}, shape={self.data.shape}, trainable={self.trainable})"
