"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import SeedLike


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` over 2D ``(N, in_features)`` inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: SeedLike = None,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.has_bias = bias
        self.weight = Parameter(
            init.xavier_uniform((out_features, in_features), rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"Linear expects 2D input, got shape {x.shape}")
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expects {self.in_features} input features, got {x.shape[1]}"
            )
        # Recorded for tracing utilities (storage accounting, MCU cost model).
        self.last_input_shape = x.shape
        self._cache = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        x = self._cache
        self.weight.accumulate_grad(grad_output.T @ x)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_output.sum(axis=0))
        return grad_output @ self.weight.data

    def lower_into(self, builder, x: int) -> int:
        return builder.add("linear", x, module=self)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Linear({self.in_features}, {self.out_features}, bias={self.has_bias})"
