"""Batch normalisation over NCHW feature maps."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class BatchNorm2d(Module):
    """Per-channel batch normalisation with running statistics.

    In training mode, batch statistics are used and running statistics are
    updated with exponential averaging; in eval mode, running statistics are
    used (the mode the quantized / weight-pool inference paths rely on, since
    BN folding assumes frozen statistics).
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init.ones((num_features,)), name="gamma")
        self.beta = Parameter(init.zeros((num_features,)), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))
        self._cache = None

    @property
    def running_mean(self) -> np.ndarray:
        return self.get_buffer("running_mean")

    @property
    def running_var(self) -> np.ndarray:
        return self.get_buffer("running_var")

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d expects (N, {self.num_features}, H, W) input, got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            m = self.momentum
            self.set_buffer("running_mean", (1 - m) * self.running_mean + m * mean)
            # Unbiased variance for the running estimate, matching common practice.
            n = x.shape[0] * x.shape[2] * x.shape[3]
            unbiased = var * n / max(n - 1, 1)
            self.set_buffer("running_var", (1 - m) * self.running_var + m * unbiased)
        else:
            mean = self.running_mean
            var = self.running_var

        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(1, -1, 1, 1)) * inv_std.reshape(1, -1, 1, 1)
        out = self.gamma.data.reshape(1, -1, 1, 1) * x_hat + self.beta.data.reshape(
            1, -1, 1, 1
        )
        self._cache = (x_hat, inv_std, self.training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        x_hat, inv_std, was_training = self._cache
        n = grad_output.shape[0] * grad_output.shape[2] * grad_output.shape[3]

        self.gamma.accumulate_grad((grad_output * x_hat).sum(axis=(0, 2, 3)))
        self.beta.accumulate_grad(grad_output.sum(axis=(0, 2, 3)))

        gamma = self.gamma.data.reshape(1, -1, 1, 1)
        g = grad_output * gamma
        if not was_training:
            # Eval mode treats mean/var as constants.
            return g * inv_std.reshape(1, -1, 1, 1)

        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_g_xhat = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_x = (
            inv_std.reshape(1, -1, 1, 1)
            * (g - sum_g / n - x_hat * sum_g_xhat / n)
        )
        return grad_x

    def lower_into(self, builder, x: int) -> int:
        return builder.add("batchnorm", x, module=self)

    def fold_into_conv_scale_shift(self):
        """Return per-channel ``(scale, shift)`` equivalent to this BN in eval mode.

        ``y = scale * x + shift`` with ``scale = gamma / sqrt(var + eps)`` and
        ``shift = beta - mean * scale``.  Used by the deployment pipeline to
        fold BN into the preceding convolution before quantization, as any MCU
        deployment flow (including CMSIS-NN's) would do.
        """
        scale = self.gamma.data / np.sqrt(self.running_var + self.eps)
        shift = self.beta.data - self.running_mean * scale
        return scale, shift
