"""Layer modules for the NumPy substrate."""

from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.batchnorm import BatchNorm2d
from repro.nn.layers.activations import ReLU, ReLU6, Identity
from repro.nn.layers.pooling import AvgPool2d, MaxPool2d, GlobalAvgPool2d
from repro.nn.layers.shape import Flatten
from repro.nn.layers.container import Sequential

__all__ = [
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "Identity",
    "AvgPool2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Sequential",
]
