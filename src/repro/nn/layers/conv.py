"""2D convolution layer (supports grouped / depthwise convolution)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import SeedLike


class Conv2d(Module):
    """Grouped 2D convolution over NCHW inputs.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.  ``groups=in_channels`` with
        ``out_channels=in_channels`` gives a depthwise convolution (used by
        MobileNet-v2, which the paper keeps uncompressed).
    kernel_size:
        Square kernel size.
    stride, padding:
        Standard convolution geometry (symmetric padding).
    bias:
        Whether to learn an additive per-filter bias.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        rng: SeedLike = None,
    ):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"in_channels ({in_channels}) and out_channels ({out_channels}) "
                f"must be divisible by groups ({groups})"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.has_bias = bias

        weight_shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(weight_shape, rng), name="weight")
        if bias:
            self.bias = Parameter(init.zeros((out_channels,)), name="bias")
        else:
            self.bias = None

        self._cache = None

    @property
    def is_depthwise(self) -> bool:
        """True when this layer is a depthwise convolution (groups == channels)."""
        return self.groups == self.in_channels and self.groups > 1

    @property
    def is_pointwise(self) -> bool:
        """True for 1x1 convolutions (the only layers pooled in MobileNet-v2)."""
        return self.kernel_size == 1 and self.groups == 1

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Recorded so tracing utilities (storage accounting, MCU cost model)
        # can recover per-layer input geometry after a single dummy forward.
        self.last_input_shape = x.shape
        bias = self.bias.data if self.bias is not None else None
        out, cols = F.conv2d_forward(
            x, self.weight.data, bias, self.stride, self.padding, self.groups
        )
        self._cache = (x.shape, cols)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        x_shape, cols = self._cache
        grad_x, grad_w, grad_b = F.conv2d_backward(
            grad_output,
            cols,
            x_shape,
            self.weight.data,
            self.stride,
            self.padding,
            self.groups,
            has_bias=self.bias is not None,
        )
        self.weight.accumulate_grad(grad_w)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_b)
        return grad_x

    def lower_into(self, builder, x: int) -> int:
        return builder.add("conv", x, module=self)

    def output_shape(self, input_hw: tuple) -> tuple:
        """Spatial output shape for an ``(H, W)`` input."""
        h, w = input_hw
        oh = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        ow = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return oh, ow

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, groups={self.groups}, bias={self.has_bias})"
        )
