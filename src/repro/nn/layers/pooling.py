"""Pooling layers (non-overlapping windows) and global average pooling."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


def _check_divisible(x: np.ndarray, kernel: int) -> None:
    if x.shape[2] % kernel or x.shape[3] % kernel:
        raise ValueError(
            f"pooling kernel {kernel} must divide spatial dims {x.shape[2:]}"
        )


class MaxPool2d(Module):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        _check_divisible(x, self.kernel_size)
        k = self.kernel_size
        n, c, h, w = x.shape
        reshaped = x.reshape(n, c, h // k, k, w // k, k)
        windows = reshaped.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h // k, w // k, k * k)
        argmax = windows.argmax(axis=-1)
        out = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]
        self._cache = (x.shape, argmax)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        x_shape, argmax = self._cache
        k = self.kernel_size
        n, c, h, w = x_shape
        grad_windows = np.zeros((n, c, h // k, w // k, k * k), dtype=np.float64)
        np.put_along_axis(grad_windows, argmax[..., None], grad_output[..., None], axis=-1)
        grad_x = (
            grad_windows.reshape(n, c, h // k, w // k, k, k)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, h, w)
        )
        return grad_x

    def lower_into(self, builder, x: int) -> int:
        return builder.add("pool", x, module=self, pool="max", kernel=self.kernel_size)


class AvgPool2d(Module):
    """Non-overlapping average pooling (kernel == stride)."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size
        self._x_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        _check_divisible(x, self.kernel_size)
        k = self.kernel_size
        n, c, h, w = x.shape
        self._x_shape = x.shape
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward() called before forward()")
        k = self.kernel_size
        n, c, h, w = self._x_shape
        grad = np.repeat(np.repeat(grad_output, k, axis=2), k, axis=3)
        return grad / (k * k)

    def lower_into(self, builder, x: int) -> int:
        return builder.add("pool", x, module=self, pool="avg", kernel=self.kernel_size)


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, producing ``(N, C)`` features."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward() called before forward()")
        n, c, h, w = self._x_shape
        grad = grad_output.reshape(n, c, 1, 1) / (h * w)
        return np.broadcast_to(grad, self._x_shape).copy()

    def lower_into(self, builder, x: int) -> int:
        return builder.add("pool", x, module=self, pool="global_avg")
