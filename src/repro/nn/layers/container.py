"""Container modules."""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.nn.module import Module


class Sequential(Module):
    """Run child modules in order; backward runs them in reverse order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            name = str(i)
            self.add_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def __iter__(self) -> Iterator[Module]:
        for name in self._order:
            yield self._modules[name]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self:
            x = module(x)
        return x

    def lower_into(self, builder, x: int) -> int:
        for name in self._order:
            x = builder.lower(self._modules[name], x, name)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for module in reversed(list(self)):
            grad_output = module.backward(grad_output)
        return grad_output
