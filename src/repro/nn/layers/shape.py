"""Shape-manipulation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward() called before forward()")
        return grad_output.reshape(self._x_shape)

    def lower_into(self, builder, x: int) -> int:
        return builder.add("flatten", x, module=self)
