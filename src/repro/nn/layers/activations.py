"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() called before forward()")
        return grad_output * self._mask

    def lower_into(self, builder, x: int) -> int:
        return builder.add("activation", x, module=self, fn="relu")


class ReLU6(Module):
    """ReLU clipped at 6, as used by MobileNet-v2.

    Clipped activations are also convenient for quantization because the
    activation range is known a priori.
    """

    def __init__(self) -> None:
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = (x > 0) & (x < 6.0)
        return np.clip(x, 0.0, 6.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() called before forward()")
        return grad_output * self._mask

    def lower_into(self, builder, x: int) -> int:
        return builder.add("activation", x, module=self, fn="relu6")


class Identity(Module):
    """No-op layer, useful as a placeholder (e.g. an absent shortcut projection)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output

    def lower_into(self, builder, x: int) -> int:
        return x  # no-op: pass the input buffer through
