"""Optimizers and learning-rate schedulers."""

from repro.nn.optim.sgd import SGD
from repro.nn.optim.scheduler import StepLR, MultiStepLR, CosineAnnealingLR

__all__ = ["SGD", "StepLR", "MultiStepLR", "CosineAnnealingLR"]
