"""Stochastic gradient descent with momentum and weight decay.

The paper trains and retrains its networks with SGD plus a learning-rate
schedule (Section 5.1); this is the equivalent optimizer for the NumPy
substrate.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.parameter import Parameter


class SGD:
    """SGD with classical or Nesterov momentum and decoupled L2 weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients accumulated on the parameters."""
        for param, velocity in zip(self.parameters, self._velocity):
            if not param.trainable:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            param.data -= self.lr * update

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "nesterov": self.nesterov,
            "velocity": [v.copy() for v in self._velocity],
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self.nesterov = state["nesterov"]
        velocity = state["velocity"]
        if len(velocity) != len(self._velocity):
            raise ValueError("velocity list length mismatch")
        self._velocity = [np.array(v, copy=True) for v in velocity]
