"""Learning-rate schedulers operating on :class:`repro.nn.optim.sgd.SGD`."""

from __future__ import annotations

import math
from typing import Sequence


class _Scheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and set the optimizer learning rate."""
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        self.optimizer.lr = lr
        return lr


class StepLR(_Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class MultiStepLR(_Scheduler):
    """Multiply the learning rate by ``gamma`` at each listed milestone epoch."""

    def __init__(self, optimizer, milestones: Sequence[int], gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * (self.gamma**passed)


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base learning rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self, epoch: int) -> float:
        t = min(epoch, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1 + math.cos(math.pi * t / self.t_max)
        )
