"""Dataset and data-loading utilities."""

from repro.nn.data.dataset import ArrayDataset, Dataset, Subset
from repro.nn.data.dataloader import DataLoader

__all__ = ["Dataset", "ArrayDataset", "Subset", "DataLoader"]
