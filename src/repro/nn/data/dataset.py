"""Dataset abstractions."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


class Dataset:
    """Minimal map-style dataset interface."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialise the full dataset as ``(inputs, targets)`` arrays."""
        xs, ys = zip(*(self[i] for i in range(len(self))))
        return np.stack(xs), np.asarray(ys, dtype=np.int64)


class ArrayDataset(Dataset):
    """Dataset backed by in-memory arrays."""

    def __init__(self, inputs: np.ndarray, targets: np.ndarray):
        inputs = np.asarray(inputs)
        targets = np.asarray(targets, dtype=np.int64)
        if len(inputs) != len(targets):
            raise ValueError(
                f"inputs and targets length mismatch: {len(inputs)} vs {len(targets)}"
            )
        self.inputs = inputs
        self.targets = targets

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.inputs[index], int(self.targets[index])

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs, self.targets


class Subset(Dataset):
    """View onto a subset of another dataset."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]):
        self.dataset = dataset
        self.indices = list(indices)
        n = len(dataset)
        for idx in self.indices:
            if not 0 <= idx < n:
                raise IndexError(f"index {idx} out of range for dataset of size {n}")

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.dataset[self.indices[index]]
