"""Mini-batch iteration over datasets."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.nn.data.dataset import Dataset
from repro.utils.rng import SeedLike, new_rng


class DataLoader:
    """Batches a dataset, optionally shuffling each epoch with its own RNG."""

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: SeedLike = None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = new_rng(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self.rng.shuffle(order)
        # Fast path for array-backed datasets: slice directly instead of
        # touching items one by one.
        inputs = getattr(self.dataset, "inputs", None)
        targets = getattr(self.dataset, "targets", None)
        use_fast_path = inputs is not None and targets is not None

        for start in range(0, n, self.batch_size):
            batch_idx = order[start : start + self.batch_size]
            if self.drop_last and len(batch_idx) < self.batch_size:
                break
            if use_fast_path:
                yield inputs[batch_idx], targets[batch_idx]
            else:
                items = [self.dataset[int(i)] for i in batch_idx]
                xs, ys = zip(*items)
                yield np.stack(xs), np.asarray(ys, dtype=np.int64)
