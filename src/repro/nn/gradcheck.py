"""Finite-difference gradient checking used by the test suite.

The guides recommend keeping an easy-to-debug reference implementation next to
the optimized one; numerical gradients are that reference for every layer's
backward pass.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.nn.module import Module


def numerical_gradient(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of a scalar function with respect to ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        f_plus = fn(x)
        x[idx] = original - eps
        f_minus = fn(x)
        x[idx] = original
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_module_gradients(
    module: Module,
    x: np.ndarray,
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
    rng: np.random.Generator = None,
) -> Tuple[float, float]:
    """Compare analytic and numerical gradients for a module.

    Uses a random linear functional of the output as the scalar objective so
    every output element influences the check.  Returns the maximum absolute
    error over (input gradient, parameter gradients) and raises ``AssertionError``
    when outside tolerance.
    """
    rng = rng or np.random.default_rng(0)
    x = np.asarray(x, dtype=np.float64)
    out = module(x)
    weights = rng.normal(size=out.shape)

    def objective_wrt_input(x_val: np.ndarray) -> float:
        return float((module(x_val) * weights).sum())

    # Analytic gradients.
    module.zero_grad()
    module(x)
    grad_x = module.backward(weights)

    num_grad_x = numerical_gradient(objective_wrt_input, x.copy(), eps)
    max_err_input = float(np.max(np.abs(grad_x - num_grad_x))) if x.size else 0.0
    np.testing.assert_allclose(grad_x, num_grad_x, atol=atol, rtol=rtol)

    max_err_param = 0.0
    for name, param in module.named_parameters():
        if not param.trainable:
            continue
        analytic = param.grad.copy()

        def objective_wrt_param(values: np.ndarray, _param=param) -> float:
            backup = _param.data.copy()
            _param.data[...] = values
            result = float((module(x) * weights).sum())
            _param.data[...] = backup
            return result

        numeric = numerical_gradient(objective_wrt_param, param.data.copy(), eps)
        max_err_param = max(max_err_param, float(np.max(np.abs(analytic - numeric))))
        np.testing.assert_allclose(
            analytic, numeric, atol=atol, rtol=rtol, err_msg=f"parameter {name}"
        )
    return max_err_input, max_err_param
