"""Base class for all neural-network modules."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.parameter import Parameter


class Module:
    """Base class providing parameter/submodule registration and mode flags.

    Subclasses implement ``forward`` (and ``backward`` when they participate in
    training).  Assigning a :class:`Parameter` or :class:`Module` to an
    attribute registers it automatically, mirroring the ergonomics of the
    framework the paper used.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- registration ------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            if not value.name:
                value.name = name
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        """Explicitly register a parameter under ``name``."""
        setattr(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module under ``name``."""
        setattr(self, name, module)

    # -- traversal ----------------------------------------------------------
    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        return iter(self._modules.items())

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(
            p.size for p in self.parameters() if (p.trainable or not trainable_only)
        )

    # -- modes / grads ------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- state dict ---------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat name → array copy of all parameters and buffers."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for mod_name, module in self.named_modules():
            for buf_name, buf in getattr(module, "_buffers", {}).items():
                key = f"{mod_name}.{buf_name}" if mod_name else buf_name
                state[key] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters and buffers from :meth:`state_dict` output."""
        params = dict(self.named_parameters())
        consumed = set()
        for name, param in params.items():
            if name not in state:
                raise KeyError(f"missing parameter '{name}' in state dict")
            param.copy_(state[name])
            consumed.add(name)
        for mod_name, module in self.named_modules():
            buffers = getattr(module, "_buffers", None)
            if not buffers:
                continue
            for buf_name in list(buffers):
                key = f"{mod_name}.{buf_name}" if mod_name else buf_name
                if key not in state:
                    raise KeyError(f"missing buffer '{key}' in state dict")
                buffers[buf_name] = np.array(state[key], copy=True)
                consumed.add(key)
        unexpected = set(state) - consumed
        if unexpected:
            raise KeyError(f"unexpected keys in state dict: {sorted(unexpected)}")

    # -- buffers ------------------------------------------------------------
    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array saved in the state dict (e.g. BN stats)."""
        if not hasattr(self, "_buffers"):
            object.__setattr__(self, "_buffers", OrderedDict())
        self._buffers[name] = np.asarray(value, dtype=np.float64)

    def get_buffer(self, name: str) -> np.ndarray:
        return self._buffers[name]

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in getattr(self, "_buffers", {}):
            raise KeyError(f"no buffer named '{name}'")
        self._buffers[name] = np.asarray(value, dtype=np.float64)

    # -- lowering ------------------------------------------------------------
    def lower_into(self, builder, x: int) -> int:
        """Emit this module's ops into a network graph builder.

        ``builder`` is a :class:`repro.core.graph.GraphBuilder` (duck-typed so
        ``repro.nn`` stays independent of ``repro.core``); ``x`` is the buffer
        id holding this module's input.  Implementations call ``builder.add``
        for primitive ops and ``builder.lower`` for children, and return the
        buffer id of their output.  Modules without a hook cannot take part in
        whole-network compilation (callers fall back to eager execution).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement lower_into(); "
            "the model cannot be compiled to a network program"
        )

    # -- forward / backward -------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError(
            f"{type(self).__name__} does not implement forward()"
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError(
            f"{type(self).__name__} does not implement backward()"
        )

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        child_names = ", ".join(self._modules)
        return f"{type(self).__name__}({child_names})"
