"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer class targets.

    ``forward(logits, targets)`` returns the mean loss; ``backward()`` returns
    the gradient with respect to the logits (no upstream gradient argument,
    since the loss is the root of the backward pass).
    """

    def __init__(self, label_smoothing: float = 0.0):
        super().__init__()
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = label_smoothing
        self._cache = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"expected (N, num_classes) logits, got {logits.shape}")
        targets = np.asarray(targets, dtype=np.int64)
        if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
            raise ValueError(
                f"targets shape {targets.shape} incompatible with logits {logits.shape}"
            )
        n, num_classes = logits.shape
        if np.any(targets < 0) or np.any(targets >= num_classes):
            raise ValueError("targets out of range")

        log_probs = F.log_softmax(logits, axis=1)
        one_hot = np.zeros_like(log_probs)
        one_hot[np.arange(n), targets] = 1.0
        if self.label_smoothing:
            smooth = self.label_smoothing
            soft_targets = one_hot * (1 - smooth) + smooth / num_classes
        else:
            soft_targets = one_hot
        loss = -(soft_targets * log_probs).sum(axis=1).mean()

        self._cache = (F.softmax(logits, axis=1), soft_targets, n)
        return float(loss)

    def backward(self) -> np.ndarray:  # type: ignore[override]
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        probs, soft_targets, n = self._cache
        return (probs - soft_targets) / n
