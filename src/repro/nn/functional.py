"""Vectorised functional primitives (im2col convolution, softmax, ...).

Every hot operation is expressed with NumPy array primitives rather than
Python loops, following the scikit-learn performance guidance.  The pure,
loop-based reference implementations live in the test suite and are used to
validate these vectorised versions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


# ---------------------------------------------------------------------------
# im2col / col2im
# ---------------------------------------------------------------------------
def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"invalid convolution geometry: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def im2col_patches(
    x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int
) -> np.ndarray:
    """Zero-copy sliding-window view of image patches.

    Returns a read-only strided *view* of shape ``(N, C, KH, KW, OH, OW)``.
    Callers that need a different memory layout should materialise it with a
    single explicit copy (``np.ascontiguousarray`` after a transpose) instead
    of reshaping this view — a reshape silently copies, and doing so before a
    transpose used to copy the full int64 patch tensor twice on the
    bit-serial path.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    if padding:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    sn, sc, sh, sw = x.strides
    shape = (n, c, kh, kw, oh, ow)
    strides = (sn, sc, sh, sw, sh * stride, sw * stride)
    return np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides, writeable=False)


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int
) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        ``(KH, KW)`` kernel size.

    Returns
    -------
    Array of shape ``(N, C * KH * KW, OH * OW)`` (one materialising copy of
    the :func:`im2col_patches` view).
    """
    n, c, _, _ = x.shape
    kh, kw = kernel
    patches = im2col_patches(x, kernel, stride, padding)
    oh, ow = patches.shape[4], patches.shape[5]
    return patches.reshape(n, c * kh * kw, oh * ow)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter-add columns back to image space (adjoint of :func:`im2col`)."""
    n, c, h, w = x_shape
    kh, kw = kernel
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    h_pad, w_pad = h + 2 * padding, w + 2 * padding
    out = np.zeros((n, c, h_pad, w_pad), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            out[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if padding:
        return out[:, :, padding:-padding, padding:-padding]
    return out


# ---------------------------------------------------------------------------
# Convolution (grouped)
# ---------------------------------------------------------------------------
def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    stride: int,
    padding: int,
    groups: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Grouped 2D convolution.

    Parameters
    ----------
    x:
        ``(N, C, H, W)`` input.
    weight:
        ``(F, C // groups, KH, KW)`` filters.
    bias:
        ``(F,)`` bias or ``None``.

    Returns
    -------
    ``(output, cols)`` where ``cols`` is the im2col buffer cached for backward;
    for grouped convolutions ``cols`` has shape
    ``(groups, N, (C//groups)*KH*KW, OH*OW)``.
    """
    n, c, h, w = x.shape
    f, c_per_group, kh, kw = weight.shape
    if c % groups or f % groups:
        raise ValueError(
            f"channels ({c}) and filters ({f}) must both be divisible by groups ({groups})"
        )
    if c_per_group != c // groups:
        raise ValueError(
            f"weight expects {c_per_group} channels per group but input provides {c // groups}"
        )
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    f_per_group = f // groups

    if groups == 1:
        cols = im2col(x, (kh, kw), stride, padding)
        out = np.einsum("fk,nkp->nfp", weight.reshape(f, -1), cols, optimize=True)
        out = out.reshape(n, f, oh, ow)
        cols = cols[None]  # unify shape with the grouped path
    else:
        cols_list = []
        out = np.empty((n, f, oh, ow), dtype=np.result_type(x, weight))
        for g in range(groups):
            xg = x[:, g * c_per_group : (g + 1) * c_per_group]
            wg = weight[g * f_per_group : (g + 1) * f_per_group]
            cols_g = im2col(xg, (kh, kw), stride, padding)
            out_g = np.einsum(
                "fk,nkp->nfp", wg.reshape(f_per_group, -1), cols_g, optimize=True
            )
            out[:, g * f_per_group : (g + 1) * f_per_group] = out_g.reshape(
                n, f_per_group, oh, ow
            )
            cols_list.append(cols_g)
        cols = np.stack(cols_list, axis=0)

    if bias is not None:
        out = out + bias.reshape(1, f, 1, 1)
    return out, cols


def conv2d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    weight: np.ndarray,
    stride: int,
    padding: int,
    groups: int = 1,
    has_bias: bool = True,
):
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_x, grad_weight, grad_bias)``; ``grad_bias`` is ``None``
    when ``has_bias`` is False.
    """
    n, c, h, w = x_shape
    f, c_per_group, kh, kw = weight.shape
    f_per_group = f // groups
    oh, ow = grad_out.shape[2], grad_out.shape[3]

    grad_bias = grad_out.sum(axis=(0, 2, 3)) if has_bias else None
    grad_weight = np.zeros_like(weight)
    grad_x = np.zeros(x_shape, dtype=np.float64)

    for g in range(groups):
        go_g = grad_out[:, g * f_per_group : (g + 1) * f_per_group].reshape(
            n, f_per_group, oh * ow
        )
        cols_g = cols[g] if groups > 1 or cols.ndim == 4 else cols
        # grad wrt weights: sum over batch of (grad_out @ cols^T)
        gw = np.einsum("nfp,nkp->fk", go_g, cols_g, optimize=True)
        grad_weight[g * f_per_group : (g + 1) * f_per_group] = gw.reshape(
            f_per_group, c_per_group, kh, kw
        )
        # grad wrt input columns, then scatter back to image space
        wg = weight[g * f_per_group : (g + 1) * f_per_group].reshape(f_per_group, -1)
        grad_cols = np.einsum("fk,nfp->nkp", wg, go_g, optimize=True)
        gx_g = col2im(
            grad_cols,
            (n, c_per_group, h, w),
            (kh, kw),
            stride,
            padding,
        )
        grad_x[:, g * c_per_group : (g + 1) * c_per_group] = gx_g

    return grad_x, grad_weight, grad_bias


# ---------------------------------------------------------------------------
# Softmax / log-softmax
# ---------------------------------------------------------------------------
def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
