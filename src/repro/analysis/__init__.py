"""Evaluation utilities: accuracy, BN recalibration, bitwidth search."""

from repro.analysis.accuracy import evaluate_accuracy, accuracy_drop
from repro.analysis.batchnorm import recalibrate_batchnorm
from repro.analysis.bitwidth_search import find_min_activation_bitwidth, BitwidthSearchResult

__all__ = [
    "evaluate_accuracy",
    "accuracy_drop",
    "recalibrate_batchnorm",
    "find_min_activation_bitwidth",
    "BitwidthSearchResult",
]
