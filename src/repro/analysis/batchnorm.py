"""Batch-norm statistics recalibration.

Replacing a trained network's weights with their weight-pool reconstruction
shifts every convolution's output distribution, so the BatchNorm running
statistics recorded during pretraining no longer match.  Fine-tuning fixes
this implicitly (training mode refreshes the running statistics); for
projection-only evaluations (e.g. the Figure 4 comparison, or a quick look at
a pool before committing to fine-tuning) the statistics must be refreshed
explicitly.  This is standard practice for any post-training weight
transformation and does not touch the weights themselves.
"""

from __future__ import annotations

import numpy as np

from repro.nn import BatchNorm2d, DataLoader, Module


def recalibrate_batchnorm(
    model: Module,
    loader: DataLoader,
    num_batches: int = 4,
    reset: bool = True,
) -> int:
    """Refresh BatchNorm running statistics by streaming a few batches.

    Only the running mean/variance buffers are updated; no parameter receives
    a gradient.  Returns the number of BatchNorm layers refreshed.  The model
    is left in eval mode.
    """
    bn_layers = [m for m in model.modules() if isinstance(m, BatchNorm2d)]
    if not bn_layers:
        model.eval()
        return 0
    if num_batches < 1:
        raise ValueError(f"num_batches must be >= 1, got {num_batches}")

    original_momentum = [bn.momentum for bn in bn_layers]
    if reset:
        for bn in bn_layers:
            bn.set_buffer("running_mean", np.zeros(bn.num_features))
            bn.set_buffer("running_var", np.ones(bn.num_features))

    model.train()
    try:
        for batch_index, (inputs, _) in enumerate(loader):
            if batch_index >= num_batches:
                break
            # Cumulative averaging over the calibration batches.
            for bn in bn_layers:
                bn.momentum = 1.0 / (batch_index + 1)
            model(inputs)
    finally:
        for bn, momentum in zip(bn_layers, original_momentum):
            bn.momentum = momentum
        model.eval()
    return len(bn_layers)
