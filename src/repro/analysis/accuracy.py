"""Accuracy evaluation helpers."""

from __future__ import annotations

from typing import Union

from repro.nn import DataLoader, Module
from repro.nn.data.dataset import Dataset
from repro.nn.training.trainer import evaluate_model


def evaluate_accuracy(
    model: Module,
    data: Union[DataLoader, Dataset],
    batch_size: int = 64,
) -> float:
    """Top-1 accuracy of ``model`` on a dataset or loader (eval mode)."""
    loader = data if isinstance(data, DataLoader) else DataLoader(data, batch_size=batch_size)
    return evaluate_model(model, loader)


def accuracy_drop(reference: float, value: float) -> float:
    """Accuracy drop in percentage points (positive = worse than the reference).

    Both arguments are accuracies expressed as fractions in [0, 1].
    """
    for name, acc in (("reference", reference), ("value", value)):
        if not 0.0 <= acc <= 1.0:
            raise ValueError(f"{name} accuracy must be a fraction in [0, 1], got {acc}")
    return (reference - value) * 100.0
