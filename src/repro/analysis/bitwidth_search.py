"""Minimum activation bitwidth search (Table 6's last column).

The paper reports, per network, the minimum activation bitwidth whose accuracy
drop against the floating-point weight-pool network stays below 1 %.  This
module walks bitwidths from high to low on a calibrated
:class:`~repro.core.engine.BitSerialInferenceEngine` and returns the smallest
bitwidth that still satisfies the constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.core.engine import BitSerialInferenceEngine
from repro.nn import DataLoader


@dataclass
class BitwidthSearchResult:
    """Outcome of the minimum-bitwidth search."""

    reference_accuracy: float
    max_drop: float
    accuracies: Dict[int, float] = field(default_factory=dict)
    min_bitwidth: Optional[int] = None

    def drop(self, bitwidth: int) -> float:
        """Accuracy drop (fraction) at a given bitwidth."""
        return self.reference_accuracy - self.accuracies[bitwidth]


def find_min_activation_bitwidth(
    engine: BitSerialInferenceEngine,
    loader: DataLoader,
    reference_accuracy: float,
    max_drop: float = 0.01,
    bitwidths: Iterable[int] = range(8, 0, -1),
) -> BitwidthSearchResult:
    """Find the smallest activation bitwidth with accuracy drop below ``max_drop``.

    Bitwidths are evaluated from largest to smallest; the search records every
    evaluated accuracy and stops at the first bitwidth that violates the
    constraint (accuracy is monotone enough in practice that continuing would
    only waste work — exactly the protocol behind Table 6).
    """
    bitwidths = sorted(set(int(b) for b in bitwidths), reverse=True)
    if not bitwidths:
        raise ValueError("bitwidths must be a non-empty iterable")
    if not 0.0 <= max_drop < 1.0:
        raise ValueError(f"max_drop must be a fraction in [0, 1), got {max_drop}")
    result = BitwidthSearchResult(reference_accuracy=reference_accuracy, max_drop=max_drop)
    for bitwidth in bitwidths:
        engine.set_activation_bitwidth(bitwidth)
        accuracy = engine.evaluate(loader)
        result.accuracies[bitwidth] = accuracy
        if reference_accuracy - accuracy <= max_drop:
            result.min_bitwidth = bitwidth
        else:
            break
    return result
