"""Admission control, retries, and circuit breaking for the serving stack.

Three cooperating mechanisms turn overload and worker failure from collapse
modes into bounded, observable behaviour:

* :class:`AdmissionController` — the gatekeeper *in front of* the batcher
  queue.  It sheds excess load (queue depth, concurrency budget, priority
  class) with a structured :class:`AdmissionRejected` **before** the request
  ever occupies a queue slot, so saturation shows up as a flat goodput
  plateau plus an explicit shed rate instead of unbounded latency.
* :class:`CircuitBreaker` — a per-model state machine (``closed`` → ``open``
  on repeated worker crashes → ``half_open`` probe → ``closed``) that stops
  traffic from hammering a pool whose workers keep dying (e.g. a poisoned
  artifact), and lets a single probe batch discover recovery.
* :class:`ResilientDispatcher` — wraps a worker pool's ``submit`` with
  bounded retries (exponential backoff + seeded jitter) for transient
  infrastructure failures (:class:`~repro.serve.workers.WorkerCrashed`,
  :class:`~repro.serve.workers.NoLiveWorkers`).  In-batch *application*
  errors are never retried — a batch that deterministically raises would
  fail again, and retrying it would just double the damage.

All three are clock-injectable (``clock=``/``timer=``) so the chaos suite
drives them deterministically with a fake clock; all counters they produce
flow into :class:`~repro.serve.stats.ModelStats`.
"""

from __future__ import annotations

import dataclasses
import random
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

from repro.serve.workers import NoLiveWorkers, WorkerCrashed

# Failures the dispatcher may retry: the worker infrastructure broke, not
# the batch.  Everything else propagates on the first attempt.
RETRIABLE_ERRORS = (WorkerCrashed, NoLiveWorkers)


class AdmissionRejected(RuntimeError):
    """The request was shed before queueing.

    Attributes
    ----------
    reason:
        ``"queue_depth"`` / ``"concurrency"`` / ``"priority"`` /
        ``"circuit_open"`` / ``"model_budget"`` — the shed counter it
        increments.
    retry_after_s:
        Client backoff hint (the HTTP front end renders it as a
        ``Retry-After`` header).
    http_status:
        Status the HTTP front end should use: 429 for priority-class sheds
        (client should slow down), 503 for hard saturation and open
        breakers (server cannot take the work right now).
    """

    def __init__(self, message: str, reason: str, retry_after_s: float = 1.0,
                 http_status: int = 503):
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = retry_after_s
        self.http_status = http_status


class CircuitOpen(AdmissionRejected):
    """Shed because the model's circuit breaker is open."""

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message, reason="circuit_open",
                         retry_after_s=retry_after_s, http_status=503)


# ---------------------------------------------------------------------------
# Admission policy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AdmissionPolicy:
    """Per-model load-shedding policy, applied before the batcher queue.

    Attributes
    ----------
    max_queue_depth:
        Shed once this many requests wait in the batcher queue.  ``None``
        leaves backpressure to ``BatchPolicy.max_queue`` alone (which
        raises :class:`~repro.serve.batcher.QueueFull` *after* occupying
        the submit path; this bound sheds *before*).
    max_concurrency:
        Budget of admitted-but-unfinished requests; ``None`` = unlimited.
    priority_thresholds:
        Optional priority classes: maps class name → the fraction of
        ``max_queue_depth`` that class may fill.  A request of class ``c``
        is shed (HTTP 429) once ``queue_depth >= max_queue_depth *
        thresholds[c]`` — lower fractions shed earlier, so background
        traffic yields queue room to interactive traffic under load.
        Unknown/absent classes use 1.0 (shed only at the hard bound).
    default_priority:
        Class assigned to requests that do not name one.
    retry_after_s:
        Backoff hint attached to sheds.
    """

    max_queue_depth: Optional[int] = None
    max_concurrency: Optional[int] = None
    priority_thresholds: Mapping[str, float] = field(default_factory=dict)
    default_priority: str = "default"
    retry_after_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {self.max_concurrency}")
        for name, fraction in self.priority_thresholds.items():
            if not 0.0 < fraction <= 1.0:
                raise ValueError(
                    f"priority threshold for {name!r} must be in (0, 1], got {fraction}"
                )


class AdmissionController:
    """Applies an :class:`AdmissionPolicy` in front of one pipeline.

    ``admit(priority, count)`` either reserves ``count`` slots of the
    concurrency budget and returns, or raises :class:`AdmissionRejected`
    (recording the shed).  Every admitted request must eventually
    :meth:`release` its slot — the server wires that into the request
    future's done-callback, so crashes and deadline failures release too.
    """

    def __init__(
        self,
        policy: Optional[AdmissionPolicy],
        queue_depth_fn: Callable[[], int],
        stats=None,
        breaker: Optional["CircuitBreaker"] = None,
    ):
        self.policy = policy or AdmissionPolicy()
        self.queue_depth_fn = queue_depth_fn
        self.stats = stats
        self.breaker = breaker
        self._lock = threading.Lock()
        self.inflight = 0

    def _shed(self, message: str, reason: str, http_status: int = 503) -> None:
        if self.stats is not None:
            self.stats.record_shed(reason)
        raise AdmissionRejected(
            message, reason=reason,
            retry_after_s=self.policy.retry_after_s, http_status=http_status,
        )

    def admit(self, priority: Optional[str] = None, count: int = 1) -> None:
        """Admit ``count`` requests or raise :class:`AdmissionRejected`."""
        breaker = self.breaker
        if breaker is not None and not breaker.allow_request():
            if self.stats is not None:
                self.stats.record_shed("circuit_open")
            raise CircuitOpen(
                f"circuit breaker is open (worker pool failing): {breaker.last_failure}",
                retry_after_s=breaker.time_to_probe(),
            )
        policy = self.policy
        with self._lock:
            if policy.max_concurrency is not None and (
                self.inflight + count > policy.max_concurrency
            ):
                self._shed(
                    f"concurrency budget exhausted ({self.inflight} in flight, "
                    f"budget {policy.max_concurrency})",
                    reason="concurrency",
                )
            if policy.max_queue_depth is not None:
                depth = self.queue_depth_fn()
                if depth >= policy.max_queue_depth:
                    self._shed(
                        f"queue depth {depth} at admission bound "
                        f"{policy.max_queue_depth}",
                        reason="queue_depth",
                    )
                cls = priority or policy.default_priority
                fraction = policy.priority_thresholds.get(cls, 1.0)
                bound = policy.max_queue_depth * fraction
                if fraction < 1.0 and depth >= bound:
                    self._shed(
                        f"priority class {cls!r} sheds at queue depth {depth} "
                        f"(its bound is {bound:.0f} of {policy.max_queue_depth})",
                        reason="priority",
                        http_status=429,
                    )
            self.inflight += count
        if self.stats is not None:
            self.stats.record_admitted(count)

    def release(self, count: int = 1) -> None:
        with self._lock:
            self.inflight = max(0, self.inflight - count)

    def set_queue_bound(self, max_queue_depth: Optional[int]) -> None:
        """Retarget the queue-depth shed bound (autoscaler resizes call this
        so admission depth tracks the pool's current capacity, and
        ``/healthz`` judges saturation against the *post-scale* bound)."""
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        with self._lock:
            self.policy = dataclasses.replace(
                self.policy, max_queue_depth=max_queue_depth
            )

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "inflight": self.inflight,
                "max_concurrency": self.policy.max_concurrency,
                "max_queue_depth": self.policy.max_queue_depth,
            }


# ---------------------------------------------------------------------------
# Per-model concurrency budgets (server-wide)
# ---------------------------------------------------------------------------
class ConcurrencyBudget:
    """Server-wide per-model in-flight budgets: isolation between models.

    One instance sits in front of *every* pipeline of a server, where the
    per-pipeline :class:`AdmissionController` cannot see cross-model
    pressure: a hot model that saturates its own pipeline still consumes
    HTTP handler threads, batcher slots, and CPU that starve its neighbours.
    Capping each model's admitted-but-unfinished requests bounds that
    spillover — one hot model sheds (HTTP 429, reason ``"model_budget"``)
    while the others keep serving.

    ``budgets`` maps model name → cap; ``default`` caps models not listed
    (``None`` = unlimited).  Budgets are keyed by model *name*, not
    (name, version): a canary rollout's two live versions share one budget,
    so shifting traffic cannot double a model's footprint.
    """

    def __init__(
        self,
        budgets: Optional[Mapping[str, int]] = None,
        default: Optional[int] = None,
        retry_after_s: float = 0.5,
    ):
        self.budgets = dict(budgets or {})
        for name, cap in self.budgets.items():
            if cap < 1:
                raise ValueError(f"budget for {name!r} must be >= 1, got {cap}")
        if default is not None and default < 1:
            raise ValueError(f"default budget must be >= 1, got {default}")
        self.default = default
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._inflight: Dict[str, int] = {}

    def limit(self, model: str) -> Optional[int]:
        return self.budgets.get(model, self.default)

    def acquire(self, model: str, count: int = 1, stats=None) -> None:
        """Reserve ``count`` slots of ``model``'s budget or raise
        :class:`AdmissionRejected` (reason ``"model_budget"``, HTTP 429)."""
        limit = self.limit(model)
        with self._lock:
            used = self._inflight.get(model, 0)
            if limit is not None and used + count > limit:
                if stats is not None:
                    stats.record_shed("model_budget")
                raise AdmissionRejected(
                    f"model {model!r} concurrency budget exhausted "
                    f"({used} in flight, budget {limit})",
                    reason="model_budget",
                    retry_after_s=self.retry_after_s,
                    http_status=429,
                )
            self._inflight[model] = used + count

    def release(self, model: str, count: int = 1) -> None:
        with self._lock:
            left = self._inflight.get(model, 0) - count
            if left > 0:
                self._inflight[model] = left
            else:
                self._inflight.pop(model, None)

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "budgets": dict(self.budgets),
                "default": self.default,
                "inflight": dict(self._inflight),
            }


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BreakerPolicy:
    """When to open, how long to stay open, and how to probe.

    Attributes
    ----------
    failure_threshold:
        Consecutive dispatch failures (worker crashes / pool exhaustion)
        that open the breaker.
    reset_timeout_s:
        How long an open breaker waits before allowing half-open probes.
    half_open_probes:
        Concurrent probe batches allowed in half-open state; the first
        success closes the breaker, any failure re-opens it.
    """

    failure_threshold: int = 5
    reset_timeout_s: float = 5.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {self.failure_threshold}")
        if self.reset_timeout_s < 0:
            raise ValueError(f"reset_timeout_s must be >= 0, got {self.reset_timeout_s}")
        if self.half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, got {self.half_open_probes}")


class CircuitBreaker:
    """closed → open → half_open → closed, driven by dispatch outcomes.

    * ``closed`` — traffic flows; ``failure_threshold`` *consecutive*
      failures transition to ``open`` (any success resets the count).
    * ``open`` — everything fails fast until ``reset_timeout_s`` elapses,
      then the next dispatch becomes a half-open probe.
    * ``half_open`` — up to ``half_open_probes`` batches may dispatch;
      the first success closes the breaker, any failure re-opens it (and
      restarts the reset clock).

    ``clock`` is injectable for deterministic tests; ``on_transition(old,
    new)`` feeds the stats counters.  All methods are thread-safe.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        self.policy = policy or BreakerPolicy()
        self.clock = clock
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        self.last_failure: Optional[str] = None

    def _transition(self, new: str) -> None:
        old, self._state = self._state, new
        if old != new and self.on_transition is not None:
            self.on_transition(old, new)

    def _maybe_half_open(self) -> None:
        """open → half_open once the reset timeout has elapsed (lock held)."""
        if self._state == self.OPEN and (
            self.clock() - self._opened_at >= self.policy.reset_timeout_s
        ):
            self._probes_inflight = 0
            self._transition(self.HALF_OPEN)

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def time_to_probe(self) -> float:
        """Seconds until an open breaker would admit a probe (0 if not open)."""
        with self._lock:
            if self._state != self.OPEN:
                return 0.0
            return max(
                0.0, self.policy.reset_timeout_s - (self.clock() - self._opened_at)
            )

    def allow_request(self) -> bool:
        """Admission-level gate: shed requests only while hard-open."""
        with self._lock:
            self._maybe_half_open()
            return self._state != self.OPEN

    def allow_dispatch(self) -> bool:
        """Dispatch-level gate; in half-open, grants probe slots."""
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN:
                if self._probes_inflight < self.policy.half_open_probes:
                    self._probes_inflight += 1
                    return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state == self.HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._transition(self.CLOSED)

    def record_failure(self, reason: Optional[str] = None) -> None:
        with self._lock:
            if reason:
                self.last_failure = reason
            if self._state == self.HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._opened_at = self.clock()
                self._transition(self.OPEN)
                return
            self._failures += 1
            if self._state == self.CLOSED and (
                self._failures >= self.policy.failure_threshold
            ):
                self._opened_at = self.clock()
                self._transition(self.OPEN)

    def snapshot(self) -> Dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "last_failure": self.last_failure,
            }


# ---------------------------------------------------------------------------
# Bounded retry dispatch
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter for crashed batches.

    ``delay(attempt)`` for attempt ``k`` (0-based retry index) is
    ``min(cap, base * multiplier**k)`` scaled by a jitter factor drawn
    uniformly from ``[1 - jitter, 1]`` — full delays bunch retries into
    thundering herds; jitter spreads them.  ``seed`` pins the jitter
    stream for deterministic tests (``None`` seeds from entropy).
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 2.0
    jitter: float = 0.5
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be >= 0")

    def budget_s(self) -> float:
        """Worst-case total backoff across all retries (no jitter)."""
        return sum(
            min(self.backoff_cap_s, self.backoff_base_s * self.backoff_multiplier ** k)
            for k in range(self.max_retries)
        )


class ResilientDispatcher:
    """``pool.submit`` with bounded retry behind an optional circuit breaker.

    Call it like the pool's ``submit``: ``dispatcher(batch) -> Future``.
    The returned future resolves to the batch output; on a retriable
    failure (:data:`RETRIABLE_ERRORS`) the batch is re-dispatched — to
    whichever workers survive, per the pool's own least-loaded routing —
    after an exponential-backoff delay, up to ``RetryPolicy.max_retries``
    times.  Each attempt's outcome feeds the breaker; an open breaker
    fails the batch fast with :class:`CircuitOpen` instead of dispatching.

    ``timer(delay, fn)`` schedules the delayed retry (a daemon
    :class:`threading.Timer` by default; tests inject an immediate or
    virtual-time runner).
    """

    def __init__(
        self,
        submit: Callable[..., Future],
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        stats=None,
        timer: Optional[Callable[[float, Callable[[], None]], None]] = None,
    ):
        self.submit = submit
        self.retry = retry or RetryPolicy(max_retries=0)
        self.breaker = breaker
        self.stats = stats
        self.timer = timer or self._default_timer
        self._rng = random.Random(self.retry.seed)
        self._rng_lock = threading.Lock()

    @staticmethod
    def _default_timer(delay: float, fn: Callable[[], None]) -> None:
        if delay <= 0:
            fn()
            return
        timer = threading.Timer(delay, fn)
        timer.daemon = True
        timer.start()

    def _delay(self, attempt: int) -> float:
        policy = self.retry
        delay = min(
            policy.backoff_cap_s,
            policy.backoff_base_s * policy.backoff_multiplier ** attempt,
        )
        if policy.jitter > 0 and delay > 0:
            with self._rng_lock:
                delay *= 1.0 - policy.jitter * self._rng.random()
        return delay

    def __call__(self, batch) -> Future:
        outer: Future = Future()
        self._attempt(batch, outer, attempt=0)
        return outer

    def _attempt(self, batch, outer: Future, attempt: int) -> None:
        if outer.cancelled():
            return
        breaker = self.breaker
        if breaker is not None and not breaker.allow_dispatch():
            self._resolve_error(
                outer,
                CircuitOpen(
                    "circuit breaker is open "
                    f"(last failure: {breaker.last_failure})",
                    retry_after_s=breaker.time_to_probe(),
                ),
            )
            return
        try:
            inner = self.submit(batch)
        except Exception as exc:
            self._on_failure(batch, outer, attempt, exc)
            return
        inner.add_done_callback(
            lambda f: self._on_done(batch, outer, attempt, f)
        )

    def _on_done(self, batch, outer: Future, attempt: int, inner: Future) -> None:
        exc = inner.exception()
        if exc is None:
            if self.breaker is not None:
                self.breaker.record_success()
            self._resolve_result(outer, inner.result())
            return
        self._on_failure(batch, outer, attempt, exc)

    def _on_failure(self, batch, outer: Future, attempt: int, exc: BaseException) -> None:
        retriable = isinstance(exc, RETRIABLE_ERRORS)
        if retriable and self.breaker is not None:
            self.breaker.record_failure(f"{type(exc).__name__}: {exc}")
        if retriable and attempt < self.retry.max_retries:
            if self.stats is not None:
                self.stats.record_retry()
            delay = self._delay(attempt)
            self.timer(delay, lambda: self._attempt(batch, outer, attempt + 1))
            return
        self._resolve_error(outer, exc)

    @staticmethod
    def _resolve_result(outer: Future, result) -> None:
        try:
            outer.set_result(result)
        except Exception:  # cancelled mid-flight
            pass

    @staticmethod
    def _resolve_error(outer: Future, exc: BaseException) -> None:
        try:
            outer.set_exception(exc)
        except Exception:  # cancelled mid-flight
            pass
