"""Executor worker pools: shard batches across threads or processes.

Two interchangeable pools sit behind the dynamic batcher; both expose
``submit(batch) -> Future`` and ``close()``:

* :class:`ThreadWorkerPool` — N threads.  With ``shared=True`` (what the
  server uses for planned executors) the factory builds **one**
  :class:`~repro.core.program.Executor` whose shard pool all worker threads
  share: each concurrently-submitted batch checks out whatever shard
  arenas are idle, so a single large batch can still fan out across cores
  while concurrent batches divide the pool between them.  Without sharing
  (the default, and the fallback for non-thread-safe executors) each worker
  owns its own executor built by the factory — buffer-pooled executors are
  single-threaded objects.  NumPy releases the GIL inside the hot kernels,
  so threads overlap real work either way.
* :class:`ProcessWorkerPool` — N OS processes, each loading the compiled
  program artifact from disk (:func:`repro.core.export.load_program`) and
  building its own executor with any registered backend.  Batches and
  results cross through per-worker :mod:`multiprocessing.shared_memory`
  rings — fixed slots the parent copies a batch into and the worker reads
  zero-copy (and symmetrically for results) — falling back to pickled
  queue payloads when a slot is unavailable or an array does not fit, so
  the ring is purely a fast path.  A dead worker is detected by its
  result-reader thread: every batch in flight on it fails with
  :class:`WorkerCrashed` (requests get an error, never a hung future) and,
  with ``respawn=True``, a replacement worker boots from the same artifact
  with fresh rings.

Batches are assigned to the least-loaded live worker, so a slow worker
backs up only its own queue.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
import time
import traceback
from concurrent.futures import Future
from multiprocessing import shared_memory
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np


class WorkerError(RuntimeError):
    """The pool cannot execute the batch (closed, or no live workers)."""


class WorkerCrashed(WorkerError):
    """A worker process died while (or before) executing this batch."""


class NoLiveWorkers(WorkerError):
    """Every worker in the pool is currently dead (respawn may be underway).

    Distinct from a closed pool: this is a *transient* infrastructure
    failure the resilience layer may retry (the respawn loop usually brings
    a replacement up within its backoff), whereas a closed pool is final.
    """


class _RemoteError(RuntimeError):
    """An exception raised inside a worker process, with its traceback."""


# One-shot stop sentinel for ThreadWorkerPool.resize() shrinks: whichever
# worker thread dequeues it exits (close() keeps using None per thread).
_STOP_ONE = object()


def artifact_slot_bytes(
    artifact_path: Union[str, Path], rows: int = 64,
    floor: int = 1 << 20, ceiling: int = 32 << 20,
) -> int:
    """Slot size for a program artifact: room for a ``rows``-row batch of
    the larger of the program's input/output (8 bytes per element), clamped
    to ``[floor, ceiling]``.

    This is the geometry both transports share: the shared-memory rings size
    their slots with it, and the cluster transport derives its per-frame
    payload bound from it — so a batch that fits a replica's ring also fits
    the wire frame that carries it there.  Falls back to ``floor`` when the
    header cannot be read (the caller's fallback path still works).
    """
    try:
        from repro.core.export import read_program_metadata

        meta = read_program_metadata(artifact_path)
        sample = max(
            int(np.prod(meta["input_shape"], dtype=np.int64)),
            int(np.prod(meta["output_shape"], dtype=np.int64)),
        )
        return int(np.clip(rows * sample * 8, floor, ceiling))
    except Exception:
        return floor


class ThreadWorkerPool:
    """N worker threads running batches on per-worker or one shared executor.

    By default ``executor_factory`` is called once per worker, inside the
    worker thread, so pool construction is cheap and per-worker state
    (compiled plans, buffer pools) is never shared.  With ``shared=True``
    the factory is called once, in the constructor, and every worker runs
    batches on the same executor — sound only for thread-safe executors
    (planned executors whose ``run`` checks shard arenas out of a pool); a
    shared executor without ``thread_safe=True`` is serialized behind a
    lock so misconfiguration degrades to correct-but-serial.
    """

    def __init__(self, executor_factory: Callable[[], object], num_workers: int = 1,
                 name: str = "worker", shared: bool = False, fault_plan=None):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.fault_plan = fault_plan
        self._scale_faults = None
        if fault_plan is not None:
            from repro.serve.faults import ScaleFaultSession

            self._scale_faults = ScaleFaultSession(fault_plan)
        # Crashes injected by during_scale faults: any worker thread failing
        # a batch decrements this (threads pull from one shared queue, so a
        # specific victim thread cannot be targeted the way a process can).
        self._scale_crash_pending = 0
        self._factory = executor_factory
        self._name = name
        self._tasks: "queue.Queue" = queue.Queue()
        self._closed = False
        # Orders submit() against close(): nothing can land behind the stop
        # sentinels, so every accepted task is drained before shutdown.
        self._submit_lock = threading.Lock()
        self.shared_executor = None
        self._shared_run_lock: Optional[threading.Lock] = None
        if shared:
            self.shared_executor = executor_factory()
            if not getattr(self.shared_executor, "thread_safe", False):
                self._shared_run_lock = threading.Lock()
        self._target_workers = num_workers
        self._next_index = num_workers
        self._threads = [
            threading.Thread(
                target=self._run, args=(executor_factory, i),
                name=f"{name}-{i}", daemon=True,
            )
            for i in range(num_workers)
        ]
        for thread in self._threads:
            thread.start()

    @property
    def num_workers(self) -> int:
        """The pool's target size (shrinks settle as queued work drains)."""
        return self._target_workers

    def resize(self, num_workers: int) -> int:
        """Grow or shrink the pool to ``num_workers`` threads.

        Growth starts new threads immediately.  Shrinking enqueues one-shot
        stop sentinels behind whatever work is already queued, so accepted
        batches drain before a thread retires — the target is reflected in
        :attr:`num_workers` at once, the thread count follows.  Returns the
        new target.
        """
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        with self._submit_lock:
            if self._closed:
                raise WorkerError("worker pool is closed")
            current = self._target_workers
            if num_workers > current:
                for _ in range(num_workers - current):
                    index = self._next_index
                    self._next_index += 1
                    thread = threading.Thread(
                        target=self._run, args=(self._factory, index),
                        name=f"{self._name}-{index}", daemon=True,
                    )
                    self._threads.append(thread)
                    thread.start()
            elif num_workers < current:
                for _ in range(current - num_workers):
                    self._tasks.put(_STOP_ONE)
            self._target_workers = num_workers
            if self._scale_faults is not None:
                # Injected mid-scale crashes: each fired spec fails one
                # subsequent batch with WorkerCrashed (see _run).
                self._scale_crash_pending += len(self._scale_faults.on_resize())
        return num_workers

    def submit(self, batch: np.ndarray) -> Future:
        """Run one batch on some worker; resolves to the stacked outputs."""
        future: Future = Future()
        with self._submit_lock:
            if self._closed:
                raise WorkerError("worker pool is closed")
            self._tasks.put((batch, future))
        return future

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Drain queued batches, then stop every worker thread."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            for _ in self._threads:
                self._tasks.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)
        if self.shared_executor is not None:
            close = getattr(self.shared_executor, "close", None)
            if close is not None:
                close()

    def _run(self, executor_factory, index: int = 0) -> None:
        build_error = None
        # Thread workers never respawn, so the fault session is always the
        # slot's first (and only) incarnation.
        faults = (
            self.fault_plan.session(worker=index, spawn=0)
            if self.fault_plan is not None
            else None
        )
        if self.shared_executor is not None:
            executor = self.shared_executor
        else:
            try:
                executor = executor_factory()
            except Exception as exc:  # surface the build failure on every task
                executor = None
                build_error = exc
        while True:
            task = self._tasks.get()
            if task is None:
                return
            if task is _STOP_ONE:
                # resize() shrink: this thread retires after the queue
                # drained up to the sentinel.
                with self._submit_lock:
                    try:
                        self._threads.remove(threading.current_thread())
                    except ValueError:
                        pass
                return
            batch, future = task
            if executor is None:
                future.set_exception(
                    WorkerError(f"executor construction failed: {build_error}")
                )
                continue
            try:
                if self._scale_crash_pending > 0:
                    with self._submit_lock:
                        fire = self._scale_crash_pending > 0
                        if fire:
                            self._scale_crash_pending -= 1
                    if fire:
                        raise WorkerCrashed(
                            f"injected crash during resize (worker {index})"
                        )
                if faults is not None:
                    for fault in faults.on_batch():
                        if fault.kind in ("slow", "stall"):
                            time.sleep(fault.delay_ms / 1e3)
                        elif fault.kind == "crash":
                            # A thread cannot die like a process; simulate the
                            # transient crash the batch would have observed.
                            raise WorkerCrashed(
                                f"injected crash on worker {index} "
                                f"(batch {faults.batches})"
                            )
                if self._shared_run_lock is not None:
                    with self._shared_run_lock:
                        result = executor.run(batch)
                else:
                    result = executor.run(batch)
                future.set_result(result)
            except Exception as exc:
                future.set_exception(exc)


# ---------------------------------------------------------------------------
# Process pool: shared-memory rings + worker process
# ---------------------------------------------------------------------------
class _ShmRing:
    """Fixed-size slots in one :class:`multiprocessing.shared_memory` segment.

    The ring itself is dumb storage — slot ownership is coordinated through
    the pool's existing task/result queues (the parent owns the free lists
    of its input rings; each worker owns the free list of its output ring),
    so no extra synchronisation primitives cross the process boundary.

    Every segment this process creates is tracked in :attr:`_live` until its
    ``unlink()`` runs — the faults suite asserts the set drains to empty
    after pool teardown, so a leaked ``/dev/shm`` segment (a worker dying
    between recycle and respawn used to strand one) fails a test instead of
    accumulating on the host.
    """

    _live: set = set()  # names of segments created (not yet unlinked) here
    _live_lock = threading.Lock()

    def __init__(self, shm: shared_memory.SharedMemory, slots: int, slot_bytes: int):
        self.shm = shm
        self.slots = slots
        self.slot_bytes = slot_bytes

    @classmethod
    def create(cls, slots: int, slot_bytes: int) -> "_ShmRing":
        shm = shared_memory.SharedMemory(create=True, size=slots * slot_bytes)
        with cls._live_lock:
            cls._live.add(shm.name)
        return cls(shm, slots, slot_bytes)

    @classmethod
    def live_segments(cls) -> set:
        """Names of segments created by this process and not yet unlinked."""
        with cls._live_lock:
            return set(cls._live)

    @classmethod
    def attach(cls, name: str, slots: int, slot_bytes: int) -> "_ShmRing":
        # Workers are multiprocessing children, so they inherit the parent's
        # resource tracker: attaching re-registers the same name in the same
        # tracker (a set — no-op) and the parent's unlink() deregisters it
        # exactly once.  No per-process unregister gymnastics needed.
        return cls(shared_memory.SharedMemory(name=name), slots, slot_bytes)

    def view(self, slot: int, shape: Tuple[int, ...], dtype_str: str) -> np.ndarray:
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape, dtype=np.int64))
        offset = slot * self.slot_bytes
        return np.frombuffer(
            self.shm.buf, dtype=dtype, count=count, offset=offset
        ).reshape(shape)

    def write(self, slot: int, array: np.ndarray) -> Tuple[int, Tuple[int, ...], str]:
        view = self.view(slot, array.shape, array.dtype.str)
        view[...] = array
        return slot, tuple(array.shape), array.dtype.str

    def close(self) -> None:
        try:
            self.shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass
        finally:
            with _ShmRing._live_lock:
                _ShmRing._live.discard(self.shm.name)


def _ring_payload(ring: Optional[_ShmRing], free: List[int], array: np.ndarray):
    """Encode ``array`` for the queue: a shm slot descriptor, or the array
    itself when the ring is absent/full/too small (the always-correct
    fallback path)."""
    if ring is not None and free and array.nbytes <= ring.slot_bytes:
        slot = free.pop()
        return ("shm", ring.write(slot, np.ascontiguousarray(array)))
    return ("raw", array)


def _process_worker_main(
    artifact_path, backend, active_bits, task_q, result_q, rings, fault_state=None
):
    """Worker process entry: load the artifact, serve batches until ``None``.

    Result tuples are ``("ready"|"ok"|"err"|"fatal", job_id, payload,
    freed_input_slot)``.  Batches and results ride the shared-memory rings
    when a slot is free (``payload = ("shm", (slot, shape, dtype))``), and
    fall back to pickled arrays otherwise.  Every exception is caught and
    shipped back as a string — a worker only dies on hard crashes (signal,
    OOM), which the parent's reader detects.

    ``fault_state`` is an optional ``(FaultPlan, worker_index, spawn)``
    triple (see :mod:`repro.serve.faults`): ``corrupt_artifact`` faults
    fire before the artifact read (→ the ``fatal`` startup path), ``crash``
    hard-exits the process mid-batch (→ the parent's crash detector), and
    ``slow``/``stall`` sleep deterministically.
    """
    faults = None
    if fault_state is not None:
        plan, worker_index, spawn = fault_state
        faults = plan.session(worker=worker_index, spawn=spawn)
    in_ring = out_ring = None
    try:
        if faults is not None:
            fault = faults.on_artifact_load()
            if fault is not None:
                from repro.serve.faults import InjectedFault

                raise InjectedFault(
                    f"injected corrupt artifact read: {artifact_path}"
                )
        if backend == "cost":
            import repro.mcu  # noqa: F401  (registers the cost backend)
        from repro.core.export import load_program
        from repro.core.program import Executor, auto_backend

        program = load_program(artifact_path)
        executor = Executor(
            program, backend=auto_backend(backend, program), active_bits=active_bits
        )
        if rings is not None:
            in_name, out_name, slots, slot_bytes = rings
            in_ring = _ShmRing.attach(in_name, slots, slot_bytes)
            out_ring = _ShmRing.attach(out_name, slots, slot_bytes)
    except BaseException:
        result_q.put(("fatal", None, traceback.format_exc(), None))
        return
    result_q.put(("ready", None, getattr(executor, "plan_info", None), None))
    free_out = list(range(out_ring.slots)) if out_ring is not None else []
    try:
        while True:
            message = task_q.get()
            if message is None:
                return
            if message[0] == "free":  # parent finished reading a result slot
                free_out.append(message[1])
                continue
            _, job_id, payload = message
            in_slot: Optional[int] = None
            try:
                if faults is not None:
                    for fault in faults.on_batch():
                        if fault.kind in ("slow", "stall"):
                            time.sleep(fault.delay_ms / 1e3)
                        elif fault.kind == "crash":
                            # A real death, not an exception: the parent must
                            # find out through its crash detector, exactly as
                            # it would for a SIGKILL or an OOM kill.
                            import os

                            os._exit(17)
                if payload[0] == "shm":
                    in_slot, shape, dtype_str = payload[1]
                    batch = in_ring.view(in_slot, shape, dtype_str)
                else:
                    batch = payload[1]
                result = executor.run(batch)
                out_payload = _ring_payload(out_ring, free_out, result)
                result_q.put(("ok", job_id, out_payload, in_slot))
            except Exception:
                result_q.put(("err", job_id, traceback.format_exc(), in_slot))
    finally:
        if in_ring is not None:
            in_ring.close()
        if out_ring is not None:
            out_ring.close()


class _ProcessWorker:
    """One worker process plus its queues, rings, reader and in-flight jobs."""

    def __init__(self, pool: "ProcessWorkerPool", index: int, spawn: int = 0):
        self.pool = pool
        self.index = index
        self.spawn = spawn  # incarnation of this slot (respawns increment)
        ctx = pool._ctx
        self.task_q = ctx.Queue()
        self.result_q = ctx.Queue()
        self.inflight: Dict[int, Future] = {}
        self.dead = False
        self.ready = False  # saw the worker's "ready" handshake
        # Set by resize() before a graceful tail-shrink stop: the death
        # handler must not respawn a worker the pool retired on purpose.
        self.retiring = False
        # Shared-memory rings: parent copies batches into in_ring slots the
        # worker reads zero-copy; results come back through out_ring.  The
        # parent owns in_free (under the pool lock); freed result slots are
        # returned to the worker via ("free", slot) task messages.
        self.in_ring: Optional[_ShmRing] = None
        self.out_ring: Optional[_ShmRing] = None
        self.in_free: List[int] = []
        rings_desc = None
        try:
            if pool.shm_slot_bytes:
                try:
                    self.in_ring = _ShmRing.create(pool.shm_slots, pool.shm_slot_bytes)
                    self.out_ring = _ShmRing.create(pool.shm_slots, pool.shm_slot_bytes)
                    self.in_free = list(range(pool.shm_slots))
                    rings_desc = (
                        self.in_ring.shm.name,
                        self.out_ring.shm.name,
                        pool.shm_slots,
                        pool.shm_slot_bytes,
                    )
                    pool._register_rings(self.in_ring, self.out_ring)
                except OSError:
                    # No usable /dev/shm: run on pickled queue payloads alone.
                    self._destroy_rings()
            fault_state = (
                (pool.fault_plan, index, spawn) if pool.fault_plan is not None else None
            )
            self.process = ctx.Process(
                target=_process_worker_main,
                args=(
                    str(pool.artifact_path),
                    pool.backend,
                    pool.active_bits,
                    self.task_q,
                    self.result_q,
                    rings_desc,
                    fault_state,
                ),
                daemon=True,
            )
            self.process.start()
            self.reader = threading.Thread(
                target=self._read_results, name=f"serve-worker-{index}-reader", daemon=True
            )
            self.reader.start()
        except BaseException:
            # Failed mid-construction (process start / fd limits): without
            # this, the freshly created rings have no owner to tear them
            # down and the segments outlive the interpreter.
            self._destroy_rings()
            raise

    def _destroy_rings(self) -> None:
        rings, self.in_ring, self.out_ring = (self.in_ring, self.out_ring), None, None
        self.in_free = []
        for ring in rings:
            if ring is not None:
                try:
                    ring.close()
                finally:
                    ring.unlink()
                self.pool._forget_ring(ring)

    def _decode_result(self, payload) -> np.ndarray:
        if payload[0] == "shm":
            slot, shape, dtype_str = payload[1]
            result = np.array(self.out_ring.view(slot, shape, dtype_str))
            try:
                self.task_q.put(("free", slot))
            except (ValueError, OSError):
                pass  # worker going down; slot accounting dies with it
            return result
        return payload[1]

    def _read_results(self) -> None:
        while True:
            try:
                status, job_id, payload, in_slot = self.result_q.get(timeout=0.2)
            except queue.Empty:
                if not self.process.is_alive():
                    self._mark_dead("worker process exited unexpectedly")
                    return
                continue
            except (EOFError, OSError):
                self._mark_dead("worker result channel broke")
                return
            if status == "ready":
                self.ready = True
                if payload is not None:
                    self.pool.plan_info = payload
                continue
            if status == "fatal":
                self._mark_dead(f"worker failed to start:\n{payload}")
                return
            with self.pool._lock:
                future = self.inflight.pop(job_id, None)
                if in_slot is not None:
                    self.in_free.append(in_slot)
            if future is None:
                continue
            if status == "ok":
                try:
                    future.set_result(self._decode_result(payload))
                except Exception as exc:  # corrupt descriptor; fail the batch
                    future.set_exception(
                        _RemoteError(f"worker {self.index} returned an unreadable result: {exc}")
                    )
            else:
                future.set_exception(
                    _RemoteError(f"batch failed in worker {self.index}:\n{payload}")
                )

    def _mark_dead(self, reason: str) -> None:
        with self.pool._lock:
            self.dead = True
            doomed = list(self.inflight.values())
            self.inflight.clear()
        for future in doomed:
            future.set_exception(
                WorkerCrashed(f"worker {self.index} died with the batch in flight ({reason})")
            )
        self._destroy_rings()
        self.pool._on_worker_death(self, reason)

    def stop(self) -> None:
        try:
            try:
                self.task_q.put(None)
            except (ValueError, OSError):
                pass
            self.process.join(timeout=5.0)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=2.0)
        finally:
            # Unlink even when the join/terminate path blows up — a stop
            # that fails must not strand the segments.
            self._destroy_rings()


class ProcessWorkerPool:
    """N executor processes serving batches from a compiled program artifact.

    Parameters
    ----------
    artifact_path:
        A ``save_program`` archive; each worker loads it independently (the
        artifact is the single source of truth — exactly what a
        :class:`~repro.serve.repository.ModelRepository` stores).
    backend:
        Any registered executor backend (``plan`` / ``reference`` / ``cost``).
    mp_context:
        Multiprocessing start method; defaults to ``spawn``.  The parent is
        heavily multithreaded (batcher collectors, HTTP handlers, reader
        threads) and workers are also respawned *from* a reader thread, so
        ``fork`` would snapshot arbitrarily-held locks into the child — the
        classic fork-with-threads deadlock.  Pass ``"fork"`` explicitly only
        for single-threaded embedding where the faster start matters.
    respawn:
        Replace a crashed worker with a fresh one (in-flight batches on the
        dead worker still fail with :class:`WorkerCrashed`; only subsequent
        batches reach the replacement).
    use_shared_memory:
        Pass batches/results through per-worker shared-memory rings instead
        of pickling arrays over the queues (pickling remains the fallback
        for oversized arrays or a momentarily-full ring).  Slot geometry
        derives from the artifact's input/output shapes.
    """

    def __init__(
        self,
        artifact_path: Union[str, Path],
        backend: str = "plan",
        num_workers: int = 1,
        active_bits: Optional[int] = None,
        mp_context: Optional[str] = None,
        respawn: bool = True,
        use_shared_memory: bool = True,
        shm_slots: int = 4,
        shm_slot_bytes: Optional[int] = None,
        fault_plan=None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.artifact_path = Path(artifact_path)
        if not self.artifact_path.exists():
            raise FileNotFoundError(f"program artifact not found: {self.artifact_path}")
        self.backend = backend
        self.active_bits = active_bits
        self.respawn = respawn
        # Optional deterministic fault injection (repro.serve.faults); the
        # picklable plan ships to each worker with its (slot, spawn) identity.
        self.fault_plan = fault_plan
        self._scale_faults = None
        if fault_plan is not None:
            from repro.serve.faults import ScaleFaultSession

            self._scale_faults = ScaleFaultSession(fault_plan)
        # Planner counters reported by a worker's ready handshake (all
        # workers load the same artifact, so any worker's answer serves).
        self.plan_info: Optional[Dict] = None
        self.shm_slots = shm_slots
        self.shm_slot_bytes = 0
        if use_shared_memory:
            if shm_slot_bytes is not None:
                self.shm_slot_bytes = int(shm_slot_bytes)
            else:
                self.shm_slot_bytes = self._default_slot_bytes()
        self._ctx = multiprocessing.get_context(mp_context or "spawn")
        self._lock = threading.Lock()
        self._closed = False
        self._job_ids = itertools.count()
        self._last_death: Optional[str] = None
        # Consecutive replacements that died before their "ready" handshake.
        # A persistently unstartable worker (artifact deleted, bad backend)
        # must not become an unbounded process-spawn loop.
        self._start_failures = 0
        self._MAX_START_FAILURES = 3
        # Worker slots currently being respawned: exactly one thread owns a
        # slot's respawn at a time, so a replacement dying mid-respawn cannot
        # fork a second, concurrent respawn loop for the same slot.
        self._respawning: set = set()
        # Incarnation counter per slot: respawns increment it, and fault
        # plans target (slot, spawn) pairs so "crash once, then recover" is
        # expressible deterministically.
        self._spawn_counts: Dict[int, int] = {i: 0 for i in range(num_workers)}
        # Every ring any of this pool's workers ever created, until its
        # owner destroys it: close() sweeps the leftovers, so a worker that
        # died between recycle and respawn (its replacement's rings exist
        # but the replacement was never installed) cannot leak segments
        # past pool teardown.
        self._all_rings: Dict[str, _ShmRing] = {}
        self._workers: List[_ProcessWorker] = [
            _ProcessWorker(self, i) for i in range(num_workers)
        ]

    def _register_rings(self, *rings: _ShmRing) -> None:
        with self._lock:
            for ring in rings:
                self._all_rings[ring.shm.name] = ring

    def _forget_ring(self, ring: _ShmRing) -> None:
        with self._lock:
            self._all_rings.pop(ring.shm.name, None)

    def _default_slot_bytes(self) -> int:
        """Ring slot size from the artifact header (see
        :func:`artifact_slot_bytes` — shared with the cluster transport)."""
        return artifact_slot_bytes(self.artifact_path)

    def submit(self, batch: np.ndarray) -> Future:
        """Run one batch on the least-loaded live worker.

        The batch rides the worker's shared-memory ring when a slot is free
        and it fits; otherwise it is pickled through the task queue.
        """
        batch = np.asarray(batch)
        with self._lock:
            if self._closed:
                raise WorkerError("worker pool is closed")
            live = [w for w in self._workers if not w.dead]
            if not live:
                raise NoLiveWorkers(
                    "no live workers"
                    + (f" (last death: {self._last_death})" if self._last_death else "")
                )
            worker = min(live, key=lambda w: len(w.inflight))
            job_id = next(self._job_ids)
            future: Future = Future()
            worker.inflight[job_id] = future
            in_ring = worker.in_ring
            slot: Optional[int] = None
            if (
                in_ring is not None
                and worker.in_free
                and batch.nbytes <= in_ring.slot_bytes
            ):
                slot = worker.in_free.pop()
        payload = ("raw", batch)
        if slot is not None:
            try:
                payload = ("shm", in_ring.write(slot, np.ascontiguousarray(batch)))
            except Exception:
                # Ring torn down under us (worker died between the liveness
                # check and the write): return the slot and fall back to the
                # pickled path — the queue put below settles the future.
                with self._lock:
                    worker.in_free.append(slot)
        try:
            worker.task_q.put(("job", job_id, payload))
        except (ValueError, OSError) as exc:
            with self._lock:
                worker.inflight.pop(job_id, None)
                if payload[0] == "shm":
                    worker.in_free.append(slot)
            future.set_exception(WorkerCrashed(f"could not reach worker: {exc}"))
        return future

    def _on_worker_death(self, worker: _ProcessWorker, reason: str) -> None:
        if worker.retiring:
            return  # a resize() shrink, not a death: no respawn, no alarm
        with self._lock:
            self._last_death = reason
            if self._closed or not self.respawn:
                return
            if worker.ready:
                self._start_failures = 0
            else:
                self._start_failures += 1
                if self._start_failures >= self._MAX_START_FAILURES:
                    self._last_death = (
                        f"{reason} (respawn disabled after "
                        f"{self._start_failures} consecutive start failures)"
                    )
                    return
            try:
                index = self._workers.index(worker)
            except ValueError:
                # A replacement that died before being installed: the thread
                # that owns the slot's respawn retries (the failure was
                # counted above).
                return
            if index in self._respawning:
                return  # another thread already owns this slot's respawn
            self._respawning.add(index)
            backoff = 0.2 * self._start_failures
        try:
            self._respawn_slot(index, backoff)
        finally:
            with self._lock:
                self._respawning.discard(index)

    def _respawn_slot(self, index: int, backoff: float) -> None:
        """Spawn replacements into ``index`` until one survives startup or
        the start-failure cap / close() stops the loop."""
        while True:
            if backoff:
                time.sleep(backoff)
            with self._lock:
                self._spawn_counts[index] = self._spawn_counts.get(index, 0) + 1
                spawn = self._spawn_counts[index]
            try:
                replacement = _ProcessWorker(self, index, spawn=spawn)
            except Exception as exc:  # spawn itself failed (fd/memory limits)
                with self._lock:
                    self._start_failures += 1
                    self._last_death = f"respawn failed: {exc}"
                    if self._start_failures >= self._MAX_START_FAILURES or self._closed:
                        return
                    backoff = 0.2 * self._start_failures
                continue
            with self._lock:
                # The slot may have been shrunk away by a concurrent
                # resize(); a replacement for a retired slot is abandoned.
                if self._closed or index >= len(self._workers):
                    doomed = replacement
                else:
                    self._workers[index] = replacement
                    doomed = None
            if doomed is not None:
                doomed.stop()
                return
            if not replacement.dead:
                # Healthy so far.  If it dies from here on, its reader's
                # death handler finds the slot un-owned and respawns anew.
                return
            # Died between construction and installation (its death handler
            # saw it uninstalled, counted the failure, and left the slot to
            # us); check the cap and try again.
            with self._lock:
                if self._start_failures >= self._MAX_START_FAILURES or self._closed:
                    return
                backoff = 0.2 * max(self._start_failures, 1)

    @property
    def num_workers(self) -> int:
        """Current worker-slot count (the pool's size after any resize)."""
        with self._lock:
            return len(self._workers)

    def resize(self, num_workers: int) -> int:
        """Grow or shrink the pool to ``num_workers`` processes.

        Growth spawns fresh workers into new tail slots (each loads the
        artifact itself, exactly like startup).  Shrinking retires workers
        **from the tail** so surviving slot indices stay aligned with their
        fault-plan and spawn-count identities; a retiring worker drains its
        queued batches, exits gracefully, and is never respawned.  Returns
        the new slot count.
        """
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        victims: List[_ProcessWorker] = []
        to_stop: List[_ProcessWorker] = []
        grow_indices: List[Tuple[int, int]] = []
        with self._lock:
            if self._closed:
                raise WorkerError("worker pool is closed")
            if self._scale_faults is not None:
                # Injected mid-scale crashes: hard-terminate the victim's
                # process (a real death — the crash detector, in-flight
                # failure, and respawn paths all run), chosen before the
                # resize applies so the crash lands in the transition window.
                for spec in self._scale_faults.on_resize():
                    live = [
                        w for w in self._workers
                        if not w.dead and not w.retiring and w not in victims
                    ]
                    target = next(
                        (w for w in live
                         if spec.worker is None or w.index == spec.worker),
                        None,
                    )
                    if target is not None:
                        victims.append(target)
            current = len(self._workers)
            if num_workers < current:
                for worker in self._workers[num_workers:]:
                    worker.retiring = True
                    to_stop.append(worker)
                del self._workers[num_workers:]
            for index in range(current, num_workers):
                # Re-grown slots get a fresh incarnation number, exactly as
                # a respawn would — fault plans with spawn=0 keep targeting
                # only the original startup workers.
                if index in self._spawn_counts:
                    self._spawn_counts[index] += 1
                else:
                    self._spawn_counts[index] = 0
                grow_indices.append((index, self._spawn_counts[index]))
        for worker in victims:
            try:
                worker.process.terminate()
            except Exception:
                pass
        # Spawns and graceful stops happen outside the lock: both are slow
        # (process start / queue drain) and must not stall submit().
        grown: List[_ProcessWorker] = [
            _ProcessWorker(self, index, spawn=spawn) for index, spawn in grow_indices
        ]
        stranded: List[_ProcessWorker] = []
        with self._lock:
            if self._closed:
                stranded = grown
            else:
                self._workers.extend(grown)
        for worker in stranded:
            worker.stop()
        for worker in to_stop:
            worker.stop()
        with self._lock:
            return len(self._workers)

    def worker_pids(self) -> List[int]:
        """PIDs of the current worker processes (dead ones excluded)."""
        with self._lock:
            return [w.process.pid for w in self._workers if not w.dead]

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop every worker process (queued batches are drained first)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        try:
            for worker in workers:
                worker.stop()
        finally:
            # Defensive sweep: rings belonging to workers that were never
            # installed (died between recycle and respawn) or whose stop()
            # failed still get unlinked before the pool goes away.
            with self._lock:
                leftovers = list(self._all_rings.values())
                self._all_rings.clear()
            for ring in leftovers:
                try:
                    ring.close()
                finally:
                    ring.unlink()
