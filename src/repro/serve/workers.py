"""Executor worker pools: shard batches across threads or processes.

Two interchangeable pools sit behind the dynamic batcher; both expose
``submit(batch) -> Future`` and ``close()``:

* :class:`ThreadWorkerPool` — N threads, each owning its own
  :class:`~repro.core.program.Executor` built by a factory.  Executors are
  single-threaded objects (their buffer pools are not shared-safe), so
  one-executor-per-worker is what makes concurrent batches sound.  NumPy
  releases the GIL inside the hot kernels, so threads already overlap real
  work; this is the default and what in-process tests use.
* :class:`ProcessWorkerPool` — N OS processes, each loading the compiled
  program artifact from disk (:func:`repro.core.export.load_program`) and
  building its own executor with any registered backend.  Batches and
  results cross via queues.  A dead worker is detected by its result-reader
  thread: every batch in flight on it fails with :class:`WorkerCrashed`
  (requests get an error, never a hung future) and, with ``respawn=True``,
  a replacement worker boots from the same artifact.

Batches are assigned to the least-loaded live worker, so a slow worker
backs up only its own queue.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
import time
import traceback
from concurrent.futures import Future
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np


class WorkerError(RuntimeError):
    """The pool cannot execute the batch (closed, or no live workers)."""


class WorkerCrashed(WorkerError):
    """A worker process died while (or before) executing this batch."""


class _RemoteError(RuntimeError):
    """An exception raised inside a worker process, with its traceback."""


class ThreadWorkerPool:
    """N worker threads, each running batches on its own executor.

    ``executor_factory`` is called once per worker, inside the worker thread,
    so pool construction is cheap and per-worker state (compiled plans,
    buffer pools) is never shared.
    """

    def __init__(self, executor_factory: Callable[[], object], num_workers: int = 1,
                 name: str = "worker"):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self._tasks: "queue.Queue" = queue.Queue()
        self._closed = False
        # Orders submit() against close(): nothing can land behind the stop
        # sentinels, so every accepted task is drained before shutdown.
        self._submit_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._run, args=(executor_factory,),
                name=f"{name}-{i}", daemon=True,
            )
            for i in range(num_workers)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, batch: np.ndarray) -> Future:
        """Run one batch on some worker; resolves to the stacked outputs."""
        future: Future = Future()
        with self._submit_lock:
            if self._closed:
                raise WorkerError("worker pool is closed")
            self._tasks.put((batch, future))
        return future

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Drain queued batches, then stop every worker thread."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            for _ in self._threads:
                self._tasks.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)

    def _run(self, executor_factory) -> None:
        try:
            executor = executor_factory()
        except Exception as exc:  # surface the build failure on every task
            executor = None
            build_error = exc
        while True:
            task = self._tasks.get()
            if task is None:
                return
            batch, future = task
            if executor is None:
                future.set_exception(
                    WorkerError(f"executor construction failed: {build_error}")
                )
                continue
            try:
                future.set_result(executor.run(batch))
            except Exception as exc:
                future.set_exception(exc)


# ---------------------------------------------------------------------------
# Process pool
# ---------------------------------------------------------------------------
def _process_worker_main(artifact_path, backend, active_bits, task_q, result_q):
    """Worker process entry: load the artifact, serve batches until ``None``.

    Result tuples are ``("ready"|"ok"|"err"|"fatal", job_id, payload)``.
    Every exception is caught and shipped back as a string — a worker only
    dies on hard crashes (signal, OOM), which the parent's reader detects.
    """
    try:
        if backend == "cost":
            import repro.mcu  # noqa: F401  (registers the cost backend)
        from repro.core.export import load_program
        from repro.core.program import Executor

        program = load_program(artifact_path)
        executor = Executor(program, backend=backend, active_bits=active_bits)
    except BaseException:
        result_q.put(("fatal", None, traceback.format_exc()))
        return
    result_q.put(("ready", None, None))
    while True:
        job = task_q.get()
        if job is None:
            return
        job_id, batch = job
        try:
            result_q.put(("ok", job_id, executor.run(batch)))
        except Exception:
            result_q.put(("err", job_id, traceback.format_exc()))


class _ProcessWorker:
    """One worker process plus its queues, reader thread and in-flight jobs."""

    def __init__(self, pool: "ProcessWorkerPool", index: int):
        self.pool = pool
        self.index = index
        ctx = pool._ctx
        self.task_q = ctx.Queue()
        self.result_q = ctx.Queue()
        self.inflight: Dict[int, Future] = {}
        self.dead = False
        self.ready = False  # saw the worker's "ready" handshake
        self.process = ctx.Process(
            target=_process_worker_main,
            args=(
                str(pool.artifact_path),
                pool.backend,
                pool.active_bits,
                self.task_q,
                self.result_q,
            ),
            daemon=True,
        )
        self.process.start()
        self.reader = threading.Thread(
            target=self._read_results, name=f"serve-worker-{index}-reader", daemon=True
        )
        self.reader.start()

    def _read_results(self) -> None:
        while True:
            try:
                status, job_id, payload = self.result_q.get(timeout=0.2)
            except queue.Empty:
                if not self.process.is_alive():
                    self._mark_dead("worker process exited unexpectedly")
                    return
                continue
            except (EOFError, OSError):
                self._mark_dead("worker result channel broke")
                return
            if status == "ready":
                self.ready = True
                continue
            if status == "fatal":
                self._mark_dead(f"worker failed to start:\n{payload}")
                return
            with self.pool._lock:
                future = self.inflight.pop(job_id, None)
            if future is None:
                continue
            if status == "ok":
                future.set_result(payload)
            else:
                future.set_exception(
                    _RemoteError(f"batch failed in worker {self.index}:\n{payload}")
                )

    def _mark_dead(self, reason: str) -> None:
        with self.pool._lock:
            self.dead = True
            doomed = list(self.inflight.values())
            self.inflight.clear()
        for future in doomed:
            future.set_exception(
                WorkerCrashed(f"worker {self.index} died with the batch in flight ({reason})")
            )
        self.pool._on_worker_death(self, reason)

    def stop(self) -> None:
        try:
            self.task_q.put(None)
        except (ValueError, OSError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)


class ProcessWorkerPool:
    """N executor processes serving batches from a compiled program artifact.

    Parameters
    ----------
    artifact_path:
        A ``save_program`` archive; each worker loads it independently (the
        artifact is the single source of truth — exactly what a
        :class:`~repro.serve.repository.ModelRepository` stores).
    backend:
        Any registered executor backend (``plan`` / ``reference`` / ``cost``).
    mp_context:
        Multiprocessing start method; defaults to ``spawn``.  The parent is
        heavily multithreaded (batcher collectors, HTTP handlers, reader
        threads) and workers are also respawned *from* a reader thread, so
        ``fork`` would snapshot arbitrarily-held locks into the child — the
        classic fork-with-threads deadlock.  Pass ``"fork"`` explicitly only
        for single-threaded embedding where the faster start matters.
    respawn:
        Replace a crashed worker with a fresh one (in-flight batches on the
        dead worker still fail with :class:`WorkerCrashed`; only subsequent
        batches reach the replacement).
    """

    def __init__(
        self,
        artifact_path: Union[str, Path],
        backend: str = "plan",
        num_workers: int = 1,
        active_bits: Optional[int] = None,
        mp_context: Optional[str] = None,
        respawn: bool = True,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.artifact_path = Path(artifact_path)
        if not self.artifact_path.exists():
            raise FileNotFoundError(f"program artifact not found: {self.artifact_path}")
        self.backend = backend
        self.active_bits = active_bits
        self.respawn = respawn
        self._ctx = multiprocessing.get_context(mp_context or "spawn")
        self._lock = threading.Lock()
        self._closed = False
        self._job_ids = itertools.count()
        self._last_death: Optional[str] = None
        # Consecutive replacements that died before their "ready" handshake.
        # A persistently unstartable worker (artifact deleted, bad backend)
        # must not become an unbounded process-spawn loop.
        self._start_failures = 0
        self._MAX_START_FAILURES = 3
        # Worker slots currently being respawned: exactly one thread owns a
        # slot's respawn at a time, so a replacement dying mid-respawn cannot
        # fork a second, concurrent respawn loop for the same slot.
        self._respawning: set = set()
        self._workers: List[_ProcessWorker] = [
            _ProcessWorker(self, i) for i in range(num_workers)
        ]

    def submit(self, batch: np.ndarray) -> Future:
        """Run one batch on the least-loaded live worker."""
        with self._lock:
            if self._closed:
                raise WorkerError("worker pool is closed")
            live = [w for w in self._workers if not w.dead]
            if not live:
                raise WorkerError(
                    "no live workers"
                    + (f" (last death: {self._last_death})" if self._last_death else "")
                )
            worker = min(live, key=lambda w: len(w.inflight))
            job_id = next(self._job_ids)
            future: Future = Future()
            worker.inflight[job_id] = future
        try:
            worker.task_q.put((job_id, np.asarray(batch)))
        except (ValueError, OSError) as exc:
            with self._lock:
                worker.inflight.pop(job_id, None)
            future.set_exception(WorkerCrashed(f"could not reach worker: {exc}"))
        return future

    def _on_worker_death(self, worker: _ProcessWorker, reason: str) -> None:
        with self._lock:
            self._last_death = reason
            if self._closed or not self.respawn:
                return
            if worker.ready:
                self._start_failures = 0
            else:
                self._start_failures += 1
                if self._start_failures >= self._MAX_START_FAILURES:
                    self._last_death = (
                        f"{reason} (respawn disabled after "
                        f"{self._start_failures} consecutive start failures)"
                    )
                    return
            try:
                index = self._workers.index(worker)
            except ValueError:
                # A replacement that died before being installed: the thread
                # that owns the slot's respawn retries (the failure was
                # counted above).
                return
            if index in self._respawning:
                return  # another thread already owns this slot's respawn
            self._respawning.add(index)
            backoff = 0.2 * self._start_failures
        try:
            self._respawn_slot(index, backoff)
        finally:
            with self._lock:
                self._respawning.discard(index)

    def _respawn_slot(self, index: int, backoff: float) -> None:
        """Spawn replacements into ``index`` until one survives startup or
        the start-failure cap / close() stops the loop."""
        while True:
            if backoff:
                time.sleep(backoff)
            try:
                replacement = _ProcessWorker(self, index)
            except Exception as exc:  # spawn itself failed (fd/memory limits)
                with self._lock:
                    self._start_failures += 1
                    self._last_death = f"respawn failed: {exc}"
                    if self._start_failures >= self._MAX_START_FAILURES or self._closed:
                        return
                    backoff = 0.2 * self._start_failures
                continue
            with self._lock:
                if self._closed:
                    doomed = replacement
                else:
                    self._workers[index] = replacement
                    doomed = None
            if doomed is not None:
                doomed.stop()
                return
            if not replacement.dead:
                # Healthy so far.  If it dies from here on, its reader's
                # death handler finds the slot un-owned and respawns anew.
                return
            # Died between construction and installation (its death handler
            # saw it uninstalled, counted the failure, and left the slot to
            # us); check the cap and try again.
            with self._lock:
                if self._start_failures >= self._MAX_START_FAILURES or self._closed:
                    return
                backoff = 0.2 * max(self._start_failures, 1)

    def worker_pids(self) -> List[int]:
        """PIDs of the current worker processes (dead ones excluded)."""
        with self._lock:
            return [w.process.pid for w in self._workers if not w.dead]

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop every worker process (queued batches are drained first)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        for worker in workers:
            worker.stop()
