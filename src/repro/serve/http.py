"""Stdlib HTTP front end for :class:`~repro.serve.server.InferenceServer`.

A thin JSON-over-HTTP adapter (no third-party dependencies: plain
``http.server`` with a threading server, one thread per connection) exposing:

========  ==============================  =========================================
Method    Path                            Meaning
========  ==============================  =========================================
GET       ``/healthz``                    readiness probe (200 ok / 503 degraded)
GET       ``/stats``                      server-wide per-pipeline stats
GET       ``/v1/models``                  published models and versions
GET       ``/v1/models/<name>``           program metadata (``?version=N``)
GET       ``/v1/models/<name>/stats``     latency/throughput/queue stats
POST      ``/v1/models/<name>/predict``   run inference (``?version=N``)
POST      ``/v1/models/<name>/stream``    stateful streaming inference (chunked)
========  ==============================  =========================================

``predict`` accepts ``{"inputs": <nested list>}`` holding either one sample
(shape = the program's input shape) or a batch (one extra leading axis), plus
optional ``"timeout_ms"`` (request deadline; expiry → 504) and ``"priority"``
(admission class; ``X-Timeout-Ms`` / ``X-Request-Priority`` headers work too).
Batch rows are submitted to the dynamic batcher individually, so concurrent
HTTP clients coalesce into shared executor batches exactly like programmatic
ones.

``stream`` accepts ``{"frames": <one frame or a stack>}`` plus an optional
``"session"`` id (the affinity token a previous response returned in its
``X-Stream-Session`` header — omit it to open a fresh session),
``"threshold"`` (per-session diff threshold; 0 = bit-exact) and
``"close_session"`` (drop the session after the last frame).  The response
is a *chunked* ``application/x-ndjson`` body: one JSON line per frame,
written as soon as that frame's outputs exist, each carrying the execution
mode (``full``/``incremental``/``cached``) and dirty-tile accounting.
Artifacts published before the streaming metadata schema (program schema
v3), or with non-streamable graphs, are rejected with a 400 and reason
``stream_unsupported``.

Overload and failure status codes: 429 = priority-class load shed or a
per-model concurrency budget exceeded (slow down), 503 = hard saturation /
open circuit breaker / worker crash / shutdown (retriable; carries
``Retry-After``), 504 = deadline exceeded.  See ``docs/SERVING.md`` for the
full contract and a curl-able quickstart.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.core.stream_plan import StreamUnsupported
from repro.serve.admission import AdmissionRejected
from repro.serve.batcher import DeadlineExceeded, QueueFull
from repro.serve.cluster.router import NoReplicas
from repro.serve.repository import ModelNotFound
from repro.serve.server import InferenceServer, ServerClosed
from repro.serve.streaming import UnknownSession
from repro.serve.workers import WorkerError

# Backoff hint attached to 503s that do not carry their own (QueueFull,
# worker crashes, shutdown): long enough to matter, short enough that a
# retrying client rediscovers a recovered server quickly.
DEFAULT_RETRY_AFTER_S = 1.0


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # The inference server is attached to the HTTP server object.
    @property
    def inference(self) -> InferenceServer:
        return self.server.inference  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep pytest/CI output clean; stats cover observability

    # -- plumbing ----------------------------------------------------------------
    def _send_json(self, payload, status: int = 200,
                   retry_after_s: Optional[float] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            # Retry-After is integer seconds; always advise at least 1 so
            # clients do not hot-loop on a momentary rejection.
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after_s))))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str,
               retry_after_s: Optional[float] = None,
               reason: Optional[str] = None) -> None:
        payload = {"error": message}
        if reason is not None:
            payload["reason"] = reason
        self._send_json(payload, status=status, retry_after_s=retry_after_s)

    def _route(self) -> Tuple[list, Optional[int]]:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = parse_qs(parsed.query)
        version = None
        if "version" in query:
            try:
                version = int(query["version"][0])
            except ValueError:
                raise ValueError(f"version must be an integer, got {query['version'][0]!r}")
        return parts, version

    # -- handlers ----------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            parts, version = self._route()
        except ValueError as exc:
            return self._error(400, str(exc))
        try:
            if parts == ["healthz"]:
                # Readiness-aware: open breakers and saturated queues report
                # degraded with a 503 so load balancers rotate away; the
                # payload names the unhealthy models and why.
                health = self.inference.health()
                if health["status"] == "ok":
                    return self._send_json(health)
                return self._send_json(
                    health, status=503, retry_after_s=DEFAULT_RETRY_AFTER_S
                )
            if parts == ["stats"]:
                # Server-wide stats: every live pipeline's snapshot, plus
                # the control plane (autoscaler decisions, rollout stages,
                # budgets) under the reserved "control_plane" key.
                snapshot = self.inference.snapshot()
                control = self.inference.control_plane()
                if control:
                    snapshot["control_plane"] = control
                return self._send_json(snapshot)
            if parts == ["v1", "models"]:
                return self._send_json({"models": self.inference.models()})
            if len(parts) == 3 and parts[:2] == ["v1", "models"]:
                return self._send_json(self.inference.metadata(parts[2], version))
            if len(parts) == 4 and parts[:2] == ["v1", "models"] and parts[3] == "stats":
                return self._send_json(self.inference.stats(parts[2], version))
        except ModelNotFound as exc:
            return self._error(404, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            return self._error(500, f"{type(exc).__name__}: {exc}")
        self._error(404, f"no route for GET {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        # Drain the body unconditionally and first: on a keep-alive
        # connection, replying without reading Content-Length bytes leaves
        # them in rfile to be misparsed as the next request line.
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = self.rfile.read(length)
        except ValueError:
            self.close_connection = True  # unknown body length; cannot reuse
            return self._error(400, "Content-Length must be an integer")
        try:
            parts, version = self._route()
        except ValueError as exc:
            return self._error(400, str(exc))
        if not (
            len(parts) == 4
            and parts[:2] == ["v1", "models"]
            and parts[3] in ("predict", "stream")
        ):
            return self._error(404, f"no route for POST {self.path}")
        name = parts[2]
        if parts[3] == "stream":
            return self._post_stream(name, version, body)
        try:
            payload = json.loads(body or b"{}")
            if not isinstance(payload, dict):
                raise ValueError(f"expected a JSON object, got {type(payload).__name__}")
            inputs = np.asarray(payload["inputs"], dtype=np.float64)
            if "version" in payload and version is None:
                version = int(payload["version"])
            # Deadline: body "timeout_ms" wins over the X-Timeout-Ms header;
            # priority class: body "priority" over X-Request-Priority.
            timeout_ms = payload.get("timeout_ms", self.headers.get("X-Timeout-Ms"))
            if timeout_ms is not None:
                timeout_ms = float(timeout_ms)
                if timeout_ms <= 0:
                    raise ValueError(f"timeout_ms must be > 0, got {timeout_ms}")
            priority = payload.get("priority", self.headers.get("X-Request-Priority"))
            if priority is not None and not isinstance(priority, str):
                raise ValueError(f"priority must be a string, got {priority!r}")
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            return self._error(
                400, f"body must be a JSON object with an 'inputs' array: {exc}"
            )
        try:
            # One pipeline resolution serves the whole request (single
            # sample, or batch rows coalescing in the dynamic-batching
            # window) and names the version that actually served it.
            served_version, outputs, batched = self.inference.predict_request(
                name, inputs, version, priority=priority, timeout_ms=timeout_ms
            )
        except ModelNotFound as exc:
            return self._error(404, str(exc))
        except AdmissionRejected as exc:
            # Load shed before queueing: 429 for priority-class sheds (the
            # client should slow down), 503 for hard saturation and open
            # breakers — both with a Retry-After backoff hint.
            return self._error(
                exc.http_status, str(exc),
                retry_after_s=exc.retry_after_s, reason=exc.reason,
            )
        except QueueFull as exc:
            return self._error(
                503, str(exc),
                retry_after_s=DEFAULT_RETRY_AFTER_S, reason="queue_full",
            )
        except DeadlineExceeded as exc:
            return self._error(504, str(exc), reason="deadline_exceeded")
        except ServerClosed as exc:
            return self._error(
                503, str(exc),
                retry_after_s=DEFAULT_RETRY_AFTER_S, reason="server_closed",
            )
        except NoReplicas as exc:
            # Cluster mode: every replica is currently dead.  Retriable —
            # heartbeats keep probing and a restarted replica rejoins, so
            # clients should back off and try again (NoReplicas subclasses
            # NoLiveWorkers, so this arm must come before WorkerError).
            return self._error(
                503, str(exc),
                retry_after_s=DEFAULT_RETRY_AFTER_S, reason="no_replicas",
            )
        except WorkerError as exc:
            # Worker crashes and pool exhaustion are retriable server-side
            # failures, not generic 500s: clients should back off and retry
            # (the pool respawns workers; the breaker guards the meantime).
            return self._error(
                503, f"{type(exc).__name__}: {exc}",
                retry_after_s=DEFAULT_RETRY_AFTER_S, reason="worker_failure",
            )
        except ValueError as exc:
            return self._error(400, str(exc))
        except Exception as exc:
            return self._error(500, f"{type(exc).__name__}: {exc}")
        self._send_json(
            {
                "model": name,
                "version": served_version,
                "batched": batched,
                "outputs": outputs.tolist(),
            }
        )

    # -- streaming ---------------------------------------------------------------
    def _write_chunk(self, data: bytes) -> None:
        """One HTTP/1.1 chunk (hand-framed: BaseHTTPRequestHandler offers no
        chunked writer).  An empty payload writes the terminal chunk."""
        if data:
            self.wfile.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
        else:
            self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()

    def _post_stream(self, name: str, version: Optional[int], body: bytes) -> None:
        """POST /v1/models/<name>/stream — chunked newline-delimited JSON.

        Each frame's result is written as its own chunk the moment it
        computes, so a client sees frame 1's outputs while frame 2 still
        executes.  Session errors *before* the first chunk map to status
        codes (400 ``stream_unsupported``, 404 ``unknown_session``, …); a
        failure mid-stream can only be reported in-band — a final JSON line
        with an ``"error"`` key — because the 200 header is already gone.
        """
        try:
            payload = json.loads(body or b"{}")
            if not isinstance(payload, dict):
                raise ValueError(f"expected a JSON object, got {type(payload).__name__}")
            frames = np.asarray(payload["frames"], dtype=np.float64)
            if "version" in payload and version is None:
                version = int(payload["version"])
            session = payload.get("session")
            if session is not None and not isinstance(session, str):
                raise ValueError(f"session must be a string, got {session!r}")
            threshold = payload.get("threshold")
            if threshold is not None:
                threshold = float(threshold)
            close_session = bool(payload.get("close_session", False))
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            return self._error(
                400, f"body must be a JSON object with a 'frames' array: {exc}"
            )
        try:
            served_version, sid, results = self.inference.stream_request(
                name, frames, version, session=session,
                threshold=threshold, close_session=close_session,
            )
        except ModelNotFound as exc:
            return self._error(404, str(exc))
        except StreamUnsupported as exc:
            # The capability gate: pre-schema artifacts and non-streamable
            # graphs are a client-fixable condition, not a server fault.
            return self._error(400, str(exc), reason=exc.reason)
        except UnknownSession as exc:
            return self._error(404, str(exc), reason="unknown_session")
        except ServerClosed as exc:
            return self._error(
                503, str(exc),
                retry_after_s=DEFAULT_RETRY_AFTER_S, reason="server_closed",
            )
        except WorkerError as exc:
            return self._error(
                503, f"{type(exc).__name__}: {exc}",
                retry_after_s=DEFAULT_RETRY_AFTER_S, reason="worker_failure",
            )
        except ValueError as exc:
            return self._error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            return self._error(500, f"{type(exc).__name__}: {exc}")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("X-Stream-Session", sid)
        self.send_header("X-Model-Version", str(served_version))
        self.end_headers()
        try:
            for index, result in enumerate(results):
                line = dict(result, frame=index, outputs=result["outputs"].tolist())
                self._write_chunk((json.dumps(line) + "\n").encode())
        except Exception as exc:
            # Mid-stream failure: the fault path already reset/evicted the
            # session; report in-band and drop the (now ambiguous) connection.
            self.close_connection = True
            try:
                line = {
                    "error": f"{type(exc).__name__}: {exc}",
                    "reason": "stream_failed",
                    "session": sid,
                }
                self._write_chunk((json.dumps(line) + "\n").encode())
            except OSError:  # pragma: no cover - client already gone
                return
        self._write_chunk(b"")


class HttpFrontEnd:
    """A running HTTP front end; ``close()`` (or the context manager) stops it."""

    def __init__(self, inference: InferenceServer, host: str = "127.0.0.1", port: int = 0):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.inference = inference  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) actually bound (port 0 picks an ephemeral one)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "HttpFrontEnd":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def serve_http(
    inference: InferenceServer, host: str = "127.0.0.1", port: int = 8080
) -> HttpFrontEnd:
    """Start the HTTP front end on (host, port); port 0 binds an ephemeral port.

    Returns the running :class:`HttpFrontEnd` (it serves from a daemon
    thread; call ``close()`` to stop).
    """
    return HttpFrontEnd(inference, host=host, port=port)
