"""The inference server: repository-backed, batched, multi-worker serving.

:class:`InferenceServer` composes the serve stack:

* a :class:`~repro.serve.repository.ModelRepository` supplies compiled
  :class:`~repro.core.program.NetworkProgram` artifacts by name/version
  (latest version wins when none is requested — publishing a new version
  hot-swaps traffic on the next request);
* per served (name, version) a *pipeline* is built lazily: a worker pool
  (threads in-process, or OS processes loading the artifact themselves)
  behind a :class:`~repro.serve.batcher.DynamicBatcher`, plus
  :class:`~repro.serve.stats.ModelStats`;
* ``predict`` / ``predict_async`` submit single samples through the batcher;
  ``predict_batch`` sends a pre-formed batch straight to the worker pool
  (bulk clients should not pay the coalescing delay they do not need).

The programmatic API is thread-safe; the stdlib HTTP front end
(:func:`repro.serve.http.serve_http`) is a thin JSON adapter over it.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.program import Executor, NetworkProgram, auto_backend
from repro.core.stream_plan import StreamUnsupported
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    BreakerPolicy,
    CircuitBreaker,
    ConcurrencyBudget,
    ResilientDispatcher,
    RetryPolicy,
)
from repro.serve.autoscaler import Autoscaler, AutoscalePolicy, ScaleMetrics
from repro.serve.batcher import (
    BatcherClosed,
    BatchPolicy,
    DeadlineExceeded,
    DynamicBatcher,
)
from repro.serve.clock import SYSTEM_CLOCK, Clock
from repro.serve.cluster.router import ClusterRouter, RouterPool
from repro.serve.faults import FaultPlan
from repro.serve.repository import ModelRepository
from repro.serve.rollout import RolloutController, RolloutPolicy
from repro.serve.stats import ModelStats, ServerStats
from repro.serve.streaming import StreamManager, StreamPolicy
from repro.serve.workers import ProcessWorkerPool, ThreadWorkerPool


class ServerClosed(RuntimeError):
    """The request was (or would be) dropped because the server closed.

    Requests still queued in a pipeline's batcher when ``close()`` runs
    fail with this error — deterministically, before worker-pool teardown —
    instead of racing the teardown ordering.
    """


# Distinguishes "caller passed None to disable" from "caller said nothing"
# for the resilience policies that default to enabled.
_DEFAULT = object()


class _Pipeline:
    """The serving machinery of one (name, version): pool + batcher + stats.

    Thread mode holds the deserialized program (each worker thread builds its
    own executor from it); process mode holds only the artifact path — the
    worker processes load the program themselves, so the parent never pays
    (or duplicates) the deserialization.
    """

    def __init__(
        self,
        server: "InferenceServer",
        name: str,
        version: int,
        path: Path,
        input_shape: Tuple[int, ...],
        program: Optional[NetworkProgram],
        pipeline_report: Optional[Dict] = None,
    ):
        self.server = server
        self.name = name
        self.version = version
        self.path = path
        self.input_shape = tuple(input_shape)
        self.program = program
        # The compile pipeline's report (level, per-pass counters) from the
        # artifact metadata; surfaced under the ``pipeline`` key of /stats.
        self.pipeline_report = pipeline_report
        # An explicitly requested (pinned) version is exempt from hot-swap
        # retirement; set by the server on pinned lookups.
        self.pinned = False
        self.stats = ModelStats(queue_depth_fn=lambda: self.batcher.queue_depth())
        # Per-model circuit breaker: opened by repeated worker crashes (fed
        # through the resilient dispatcher), surfaced in stats and /healthz.
        self.breaker: Optional[CircuitBreaker] = None
        if server.breaker_policy is not None:
            self.breaker = CircuitBreaker(
                server.breaker_policy,
                on_transition=self.stats.record_breaker_transition,
            )
            self.stats.breaker_fn = self.breaker.snapshot
        if server.worker_mode == "cluster":
            # The "pool" is a per-model view of the shared cluster router:
            # batches shard across remote replica nodes, failed shards
            # re-dispatch to survivors, and an empty membership raises
            # NoReplicas (a NoLiveWorkers) — so the resilient dispatcher,
            # breaker, and admission control below apply to the cluster
            # exactly as they do to local pools.
            self.pool = RouterPool(
                server.cluster, name, version, stats=self.stats
            )
        elif server.worker_mode == "process":
            self.pool = ProcessWorkerPool(
                path,
                backend=server.backend,
                num_workers=server.workers,
                mp_context=server.mp_context,
                fault_plan=server.fault_plan,
            )
        else:
            # One shared, internally-sharded executor when the program plans
            # ahead of time (its run() is thread-safe: worker threads check
            # shard arenas out of the executor's pool); otherwise each worker
            # thread builds its own executor — buffer-pooled executors are
            # single-threaded objects (plan caches, buffer pools).
            # O4 artifacts route to the native backend (rebuilt — or
            # cache-loaded — deterministically from the artifact's persisted
            # source); the executor downgrades to ``plan`` with a surfaced
            # fallback_reason when the host cannot build it.
            backend = auto_backend(server.backend, program)
            probe = Executor(program, backend=backend)
            if probe.thread_safe:
                self.pool = ThreadWorkerPool(
                    lambda: probe,
                    num_workers=server.workers,
                    name=f"serve-{name}-v{version}",
                    shared=True,
                    fault_plan=server.fault_plan,
                )
            else:
                # Per-worker executors; the probe is not wasted — the first
                # worker to ask adopts it instead of binding a second time.
                spare = [probe]

                def factory():
                    try:
                        return spare.pop()
                    except IndexError:
                        return Executor(program, backend=backend)

                self.pool = ThreadWorkerPool(
                    factory,
                    num_workers=server.workers,
                    name=f"serve-{name}-v{version}",
                    fault_plan=server.fault_plan,
                )
        # Batches reach the pool through the resilient dispatcher: bounded
        # retry on worker crashes, gated by the breaker.  With both disabled
        # the pool's submit is used directly (identical fast path).
        if server.retry_policy is not None or self.breaker is not None:
            self.dispatch = ResilientDispatcher(
                self.pool.submit,
                retry=server.retry_policy,
                breaker=self.breaker,
                stats=self.stats,
            )
        else:
            self.dispatch = self.pool.submit
        self.batcher = DynamicBatcher(
            self.dispatch,
            policy=server.policy,
            stats=self.stats,
            name=f"{name}-v{version}",
        )
        # Admission control sits in front of the batcher queue; the breaker
        # also sheds here (fail-fast while hard-open).  Depth is the
        # pipeline-wide backlog (queued + batching + in a worker): the
        # batcher queue itself drains into the pool near-instantly, so its
        # raw size would never reflect overload.
        self.admission = AdmissionController(
            server.admission_policy,
            queue_depth_fn=self.stats.backlog,
            stats=self.stats,
            breaker=self.breaker,
        )
        self.stats.queue_capacity = (
            self.admission.policy.max_queue_depth or server.policy.max_queue
        )
        self.stats.workers_fn = lambda: int(self.pool.num_workers)
        # Baseline for proportional queue-bound scaling: the startup bound
        # was calibrated for this many workers.
        self._base_capacity = self.stats.queue_capacity
        self._base_workers = max(1, server.workers)
        # Streaming sessions (built lazily by the first stream request —
        # compiling a stream plan costs a few full-frame runs, which batch
        # traffic must not pay).
        self.stream_manager: Optional[StreamManager] = None
        self._stream_lock = threading.Lock()

    # -- streaming ---------------------------------------------------------------
    def streaming(self) -> StreamManager:
        """The pipeline's stream manager, building it on first use.

        Capability-gated on the *artifact metadata* before anything is
        built: the ``stream`` block only exists in schema ≥ 3 headers, so a
        pre-schema artifact — or one whose graph has no streaming rules —
        is rejected with :class:`StreamUnsupported` (HTTP 400,
        ``stream_unsupported``) instead of a KeyError deep in the stack.
        """
        with self._stream_lock:
            if self.stream_manager is not None:
                return self.stream_manager
            meta = self.server.repository.metadata(self.name, self.version)
            stream_meta = meta.get("stream")
            if stream_meta is None:
                raise StreamUnsupported(
                    f"artifact {self.name!r} v{self.version} predates the "
                    f"streaming metadata schema (program schema >= 3); "
                    f"re-export and republish it to stream"
                )
            if not stream_meta.get("supported"):
                raise StreamUnsupported(
                    f"model {self.name!r} v{self.version} cannot stream: "
                    f"its program has ops without streaming rules"
                )
            program = self.program
            if program is None:
                # Process/cluster pipelines hold only the artifact path; the
                # stream plan runs in this process, so load (LRU-cached).
                program = self.server.repository.get(self.name, self.version).program
            self.stream_manager = StreamManager(
                program,
                policy=self.server.stream_policy,
                clock=self.server.clock,
                name=f"{self.name}-v{self.version}",
            )
            return self.stream_manager

    # -- autoscaler target adapter ----------------------------------------------
    def metrics(self) -> ScaleMetrics:
        """One control-loop sample (the autoscaler's view of this pipeline)."""
        return ScaleMetrics(
            backlog=self.stats.backlog(),
            workers=int(self.pool.num_workers),
            submitted=self.stats.submitted,
            queue_wait_p95_ms=self.stats.queue_wait_p95_ms(),
        )

    def resize(self, workers: int) -> int:
        """Resize the worker pool; the admission queue bound (and the
        capacity ``/healthz`` judges saturation against) scales with it."""
        actual = int(self.pool.resize(workers))
        policy = self.server.autoscale_policy
        if policy is not None and policy.scale_queue_bound and self._base_capacity:
            bound = max(
                1, math.ceil(self._base_capacity * actual / self._base_workers)
            )
            if self.admission.policy.max_queue_depth is not None:
                self.admission.set_queue_bound(bound)
            self.stats.queue_capacity = bound
        return actual

    def plan_info(self) -> Optional[Dict]:
        """Planner/runtime counters of this pipeline's executor(s), if any.

        Thread mode reads the shared executor directly; process mode reports
        what a worker sent back in its ready handshake (``None`` until one
        has).  The same counters appear in
        :meth:`repro.core.program.NetworkProgram.metadata`, so bench records
        and the ``/stats`` endpoint agree.
        """
        executor = getattr(self.pool, "shared_executor", None)
        if executor is not None and getattr(executor, "plan_info", None):
            info = dict(executor.plan_info)
            info["max_shards_used"] = int(getattr(executor, "max_shards_used", 0))
            info["workers"] = len(getattr(self.pool, "_threads", ())) or 1
            return info
        info = getattr(self.pool, "plan_info", None)
        if info:
            info = dict(info)
            info["workers"] = len(getattr(self.pool, "_workers", ())) or 1
            return info
        return None

    def close(self, drain: bool = True, error: Optional[BaseException] = None) -> None:
        """Stop the pipeline.  ``drain=True`` flushes queued requests
        through the pool first (hot-swap retirement); ``drain=False`` fails
        them immediately with ``error`` (server shutdown)."""
        self.batcher.close(drain=drain, error=error)
        self.pool.close()
        with self._stream_lock:
            if self.stream_manager is not None:
                self.stream_manager.close()


class InferenceServer:
    """Serve compiled network programs with dynamic batching.

    Parameters
    ----------
    repository:
        A :class:`ModelRepository` (or a path, which constructs one).
    policy:
        Dynamic batching policy shared by every served model.
    workers:
        Worker count per served model version.
    worker_mode:
        ``"thread"`` (default; in-process executors), ``"process"`` (each
        worker is an OS process loading the artifact itself), or
        ``"cluster"`` (batches shard across remote replica nodes through
        the :class:`~repro.serve.cluster.router.ClusterRouter` passed as
        ``cluster=``; see docs/CLUSTER.md).
    backend:
        Executor backend for every pipeline (``plan`` / ``reference`` /
        ``cost`` — any registered name).
    mp_context:
        Start method for process workers (``fork``/``spawn``), ``None`` for
        the platform default.
    admission:
        Per-model :class:`~repro.serve.admission.AdmissionPolicy` (queue
        depth / concurrency budget / priority classes); the default policy
        sheds only while a circuit breaker is hard-open.
    retry:
        :class:`~repro.serve.admission.RetryPolicy` for batches that fail
        with a worker crash — bounded exponential backoff re-dispatch to
        surviving workers.  Enabled by default; pass ``None`` to disable.
    breaker:
        :class:`~repro.serve.admission.BreakerPolicy` for the per-model
        circuit breaker (closed → open on repeated crashes → half-open
        probe → closed).  Enabled by default; pass ``None`` to disable.
    default_deadline_ms:
        Deadline applied to requests that do not carry one; ``None`` (the
        default) leaves such requests unbounded.
    fault_plan:
        Optional :class:`~repro.serve.faults.FaultPlan` injected into every
        worker pool — deterministic chaos for tests; ``None`` (the
        default) injects nothing.
    autoscale:
        Optional :class:`~repro.serve.autoscaler.AutoscalePolicy`.  When
        set, every pipeline is watched by an :class:`Autoscaler` that
        grows/shrinks its worker pool with load (``workers`` is the
        *initial* size) and parks idle pipelines entirely (scale-to-zero:
        the compiled program stays warm in the repository cache, so the
        next request revives it with identical predictions).
    budget:
        Optional per-model concurrency budgets: a
        :class:`~repro.serve.admission.ConcurrencyBudget`, or a mapping of
        model name → cap (converted to one).  Enforced at admission across
        all pipelines, so one hot model cannot starve the rest.
    clock:
        Injectable :class:`~repro.serve.clock.Clock` driving the
        autoscaler's ticker (wall-clock by default; the deterministic test
        harness substitutes a virtual clock).
    cluster:
        The :class:`~repro.serve.cluster.router.ClusterRouter` serving
        ``worker_mode="cluster"``.  Owned by the caller: the server's
        ``close()`` leaves it (and its replica membership/heartbeats)
        running, so it can be shared or torn down independently.
    stream:
        :class:`~repro.serve.streaming.StreamPolicy` governing stateful
        stream sessions (TTL, capacity, tile size, diff threshold); the
        default policy applies when omitted.  Sessions are built lazily by
        the first ``stream_request`` against each pipeline.
    """

    def __init__(
        self,
        repository: Union[ModelRepository, str],
        policy: Optional[BatchPolicy] = None,
        workers: int = 1,
        worker_mode: str = "thread",
        backend: str = "plan",
        mp_context: Optional[str] = None,
        admission: Optional[AdmissionPolicy] = None,
        retry=_DEFAULT,
        breaker=_DEFAULT,
        default_deadline_ms: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        autoscale: Optional[AutoscalePolicy] = None,
        budget: Optional[Union[ConcurrencyBudget, Mapping[str, int]]] = None,
        clock: Clock = SYSTEM_CLOCK,
        cluster: Optional[ClusterRouter] = None,
        stream: Optional[StreamPolicy] = None,
    ):
        if worker_mode not in ("thread", "process", "cluster"):
            raise ValueError(
                f"worker_mode must be 'thread', 'process' or 'cluster', "
                f"got {worker_mode!r}"
            )
        if worker_mode == "cluster" and cluster is None:
            raise ValueError("worker_mode='cluster' needs a ClusterRouter (cluster=...)")
        self.repository = (
            repository if isinstance(repository, ModelRepository) else ModelRepository(repository)
        )
        self.policy = policy or BatchPolicy()
        self.workers = workers
        self.worker_mode = worker_mode
        self.backend = backend
        self.mp_context = mp_context
        self.admission_policy = admission or AdmissionPolicy()
        self.retry_policy: Optional[RetryPolicy] = (
            RetryPolicy() if retry is _DEFAULT else retry
        )
        self.breaker_policy: Optional[BreakerPolicy] = (
            BreakerPolicy() if breaker is _DEFAULT else breaker
        )
        self.default_deadline_ms = default_deadline_ms
        self.fault_plan = fault_plan
        # Cluster mode: the shared router every pipeline shards through.
        # The router's lifecycle belongs to whoever built it (tests reuse
        # one across servers), so close() leaves it running.
        self.cluster = cluster
        self.server_stats = ServerStats()
        self.clock = clock
        self.autoscale_policy = autoscale
        if budget is not None and not isinstance(budget, ConcurrencyBudget):
            budget = ConcurrencyBudget(budget)
        self.budget: Optional[ConcurrencyBudget] = budget
        # Streaming sessions: one policy shared by every pipeline's
        # StreamManager (built lazily on the first stream request).
        self.stream_policy: StreamPolicy = stream or StreamPolicy()
        self._lock = threading.Lock()
        self._pipelines: Dict[Tuple[str, int], _Pipeline] = {}
        self._rollouts: Dict[str, RolloutController] = {}
        # Keys ("name/version") the autoscaler parked (scale-to-zero); a
        # rebuild of such a key counts as a warm revival.
        self._parked: set = set()
        self._closed = False
        self.autoscaler: Optional[Autoscaler] = None
        if autoscale is not None:
            self.autoscaler = Autoscaler(
                autoscale, clock=clock, on_park=self._park
            ).start()

    # -- pipelines ---------------------------------------------------------------
    def _pipeline(self, name: str, version: Optional[int] = None) -> _Pipeline:
        """The pipeline for (name, version-or-latest), building it on demand.

        With ``version=None`` the latest published version is re-resolved on
        every call (a directory listing), which is what makes hot-swap work:
        publish version N+1 and the very next request builds its pipeline and
        drains the old one.  An explicitly pinned version is marked and never
        retired by hot-swap; its pipeline lives until ``close()``.
        """
        if self._closed:
            raise ServerClosed("server is closed")
        pinned = version is not None
        if pinned:
            # Fast path: a pinned, already-built pipeline needs no disk I/O.
            with self._lock:
                pipeline = self._pipelines.get((name, version))
                if pipeline is not None:
                    pipeline.pinned = True
                    return pipeline
        name, version, path = self.repository.resolve(name, version)
        key = (name, version)
        with self._lock:
            pipeline = self._pipelines.get(key)
            if pipeline is not None:
                if pinned:
                    pipeline.pinned = True
                return pipeline
        # Build outside the lock: artifact deserialization and worker spawns
        # are slow and must not stall traffic to already-built pipelines.  A
        # concurrent build of the same key is resolved by re-checking on
        # insert (the loser is closed before it ever saw a request).
        if self.worker_mode in ("process", "cluster"):
            # Workers (or replica nodes) load the artifact themselves; the
            # parent only needs the path and the input shape (header-only
            # read).  Cluster replicas hold their own synced repositories —
            # the digest in the header guarantees they serve the same bytes.
            meta = self.repository.metadata(name, version)
            candidate = _Pipeline(
                self, name, version, path, tuple(meta["input_shape"]), None,
                pipeline_report=meta.get("pipeline"),
            )
        else:
            loaded = self.repository.get(name, version)
            candidate = _Pipeline(
                self, name, version, loaded.path,
                tuple(loaded.program.input_shape), loaded.program,
                pipeline_report=(loaded.metadata or {}).get("pipeline"),
            )
        retired: List[_Pipeline] = []
        loser: Optional[_Pipeline] = None
        installed = False
        revived = False
        key_str = f"{name}/{version}"
        with self._lock:
            if self._closed:
                loser = candidate
                pipeline = None
            else:
                pipeline = self._pipelines.get(key)
                if pipeline is None:
                    pipeline = candidate
                    self._pipelines[key] = pipeline
                    installed = True
                    revived = key_str in self._parked
                    self._parked.discard(key_str)
                else:
                    loser = candidate
                if pinned:
                    pipeline.pinned = True
                for k in list(self._pipelines):
                    old = self._pipelines[k]
                    if k[0] == name and k[1] < version and not old.pinned:
                        retired.append(self._pipelines.pop(k))
        if loser is not None:
            loser.close()
        if installed and self.autoscaler is not None:
            self.autoscaler.watch(key_str, pipeline, revived=revived)
        # Retire superseded versions on a background thread: close() drains
        # the old queue (accepted requests still resolve), which can take as
        # long as the backlog — the request that happened to trigger the
        # hot-swap must not stall for it.
        for old in retired:
            if self.autoscaler is not None:
                self.autoscaler.unwatch(f"{old.name}/{old.version}")
            threading.Thread(
                target=old.close, name=f"retire-{old.name}-v{old.version}", daemon=True
            ).start()
        if pipeline is None:
            raise ServerClosed("server is closed")
        return pipeline

    def serving(self) -> List[Tuple[str, int]]:
        """(name, version) pairs with a live pipeline."""
        with self._lock:
            return sorted(self._pipelines)

    def _park(self, key: str) -> None:
        """Autoscaler scale-to-zero callback: retire the idle pipeline.

        The pipeline (pool, batcher, breaker) is torn down completely; the
        compiled program stays warm in the repository's LRU cache, so the
        next request rebuilds the pipeline from a cache hit — the *same*
        program object, hence bitwise-identical predictions after revival.
        """
        name, _, version_s = key.rpartition("/")
        try:
            version = int(version_s)
        except ValueError:
            return
        with self._lock:
            if self._closed:
                return
            pipeline = self._pipelines.pop((name, version), None)
            if pipeline is not None:
                self._parked.add(key)
        if pipeline is not None:
            # Idle by definition (that is why it parked), so the drain is
            # instant; drain=True still covers a last-instant straggler.
            pipeline.close(drain=True)

    # -- canary rollout ----------------------------------------------------------
    def start_rollout(
        self,
        name: str,
        canary: Optional[int] = None,
        stable: Optional[int] = None,
        policy: Optional[RolloutPolicy] = None,
    ) -> RolloutController:
        """Begin a staged canary rollout for ``name``.

        ``canary`` defaults to the latest published version, ``stable`` to
        the highest version below it.  Both pipelines are built (and pinned
        against hot-swap retirement) up front, then unversioned requests are
        routed through the controller's weighted router until it promotes
        or rolls back.  One rollout per model at a time.
        """
        with self._lock:
            existing = self._rollouts.get(name)
        if existing is not None and existing.state == "canary":
            raise ValueError(
                f"a rollout for {name!r} is already in progress "
                f"(stage {existing.stage_index}); abort or finish it first"
            )
        name, canary_version, _ = self.repository.resolve(name, canary)
        if stable is None:
            versions = self.repository.versions(name)
            below = [v for v in versions if v < canary_version]
            if not below:
                raise ValueError(
                    f"no stable version below canary v{canary_version} for {name!r}"
                )
            stable = below[-1]
        else:
            self.repository.resolve(name, stable)  # existence check
        controller = RolloutController(
            name, stable=stable, canary=canary_version, policy=policy
        )
        # Pin both arms before any routed traffic: a canary build must
        # never hot-swap-retire the stable pipeline mid-rollout.
        self._pipeline(name, stable)
        self._pipeline(name, canary_version)
        with self._lock:
            self._rollouts[name] = controller
        return controller

    def rollout_status(self, name: str) -> Optional[Dict]:
        """The model's rollout snapshot, or ``None`` when none is installed."""
        with self._lock:
            controller = self._rollouts.get(name)
        return controller.snapshot() if controller is not None else None

    def abort_rollout(self, name: str, reason: str = "aborted by operator") -> None:
        """Manually roll the model's canary back (no-op after promotion)."""
        with self._lock:
            controller = self._rollouts.get(name)
        if controller is not None:
            controller.abort(reason)

    def end_rollout(self, name: str) -> None:
        """Remove the model's rollout controller and return to normal
        latest-version resolution.  After a rollback, supersede or delete
        the bad version first — otherwise "latest" routes to it again."""
        with self._lock:
            self._rollouts.pop(name, None)

    def _route_version(
        self, name: str, version: Optional[int]
    ) -> Tuple[Optional[int], Optional[RolloutController]]:
        """Apply the model's rollout router to unversioned requests."""
        if version is not None:
            return version, None  # explicit pins bypass the rollout
        with self._lock:
            controller = self._rollouts.get(name)
        if controller is None:
            return None, None
        return controller.route(), controller

    def _settle_rollout(
        self,
        controller: RolloutController,
        version: int,
        error: bool,
        latency_ms: Optional[float],
    ) -> None:
        controller.record(version, error=error, latency_ms=latency_ms)
        controller.evaluate()

    # -- inference ---------------------------------------------------------------
    def _resolve_deadline(
        self, timeout_ms: Optional[float], deadline: Optional[float]
    ) -> Optional[float]:
        """Absolute perf_counter deadline from either form (or the server
        default); an explicit ``deadline`` wins over ``timeout_ms``."""
        if deadline is not None:
            return deadline
        if timeout_ms is None:
            timeout_ms = self.default_deadline_ms
        if timeout_ms is None:
            return None
        return time.perf_counter() + timeout_ms / 1e3

    @staticmethod
    def _await(
        future: Future, timeout: Optional[float], deadline: Optional[float]
    ):
        """``future.result`` bounded by the request deadline: a dispatched
        batch that outlives the deadline fails the *request* with
        :class:`DeadlineExceeded` instead of blocking on the batch."""
        if deadline is not None:
            remaining = deadline - time.perf_counter()
            timeout = remaining if timeout is None else min(timeout, remaining)
            if timeout <= 0:
                timeout = 0
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            if deadline is not None and time.perf_counter() >= deadline:
                future.cancel()  # drop it from the window if still queued
                raise DeadlineExceeded(
                    "request deadline expired while the batch executed"
                ) from None
            raise

    def predict_async(
        self,
        name: str,
        sample: np.ndarray,
        version: Optional[int] = None,
        priority: Optional[str] = None,
        timeout_ms: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> Future:
        """Submit one sample; the future resolves to its output row.

        The sample shape is validated here, before coalescing, so one
        malformed request fails alone instead of failing the batch it would
        have joined.  The request passes admission control first (shedding
        raises :class:`~repro.serve.admission.AdmissionRejected` without
        queueing anything) and carries its deadline — ``timeout_ms``
        relative, or ``deadline`` as an absolute ``time.perf_counter``
        timestamp — into the batcher, where expired requests are dropped
        from forming batches.
        """
        sample = np.asarray(sample)
        deadline = self._resolve_deadline(timeout_ms, deadline)
        version, rollout = self._route_version(name, version)
        start = time.perf_counter()
        budget = self.budget
        try:
            for attempt in (0, 1):
                pipeline = self._pipeline(name, version)
                if sample.shape != pipeline.input_shape:
                    raise ValueError(
                        f"sample shape {sample.shape} does not match model "
                        f"'{name}' input shape {pipeline.input_shape}"
                    )
                admission = pipeline.admission
                if budget is not None:
                    budget.acquire(name, stats=pipeline.stats)
                try:
                    admission.admit(priority)
                except BaseException:
                    if budget is not None:
                        budget.release(name)
                    raise
                try:
                    future = pipeline.batcher.submit(sample, deadline=deadline)
                except BatcherClosed:
                    # Lost the race against a concurrent hot-swap retirement;
                    # the retired pipeline is already out of the table, so the
                    # retry resolves to the replacement.
                    admission.release()
                    if budget is not None:
                        budget.release(name)
                    if attempt:
                        raise
                    continue
                except BaseException:
                    admission.release()
                    if budget is not None:
                        budget.release(name)
                    raise

                def _done(f, a=admission, served=pipeline.version):
                    a.release()
                    if budget is not None:
                        budget.release(name)
                    if rollout is not None and not f.cancelled():
                        self._settle_rollout(
                            rollout, served,
                            error=f.exception() is not None,
                            latency_ms=(time.perf_counter() - start) * 1e3,
                        )

                future.add_done_callback(_done)
                return future
            raise AssertionError("unreachable")  # pragma: no cover
        except AdmissionRejected:
            raise  # overload is never evidence against a rollout arm
        except BaseException:
            # Synchronous failures (shape mismatch, expired deadline) count
            # against the routed arm: a canary that rejects every request
            # must still trip the rollback gate.
            if rollout is not None and version is not None:
                self._settle_rollout(rollout, version, error=True, latency_ms=None)
            raise

    def predict(
        self,
        name: str,
        sample: np.ndarray,
        version: Optional[int] = None,
        timeout: Optional[float] = None,
        priority: Optional[str] = None,
        timeout_ms: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        """Blocking single-sample inference through the dynamic batcher."""
        deadline = self._resolve_deadline(timeout_ms, deadline)
        future = self.predict_async(
            name, sample, version, priority=priority, deadline=deadline
        )
        return self._await(future, timeout, deadline)

    def predict_batch(
        self,
        name: str,
        batch: np.ndarray,
        version: Optional[int] = None,
        timeout: Optional[float] = None,
        priority: Optional[str] = None,
        timeout_ms: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        """Run a pre-formed batch directly on the worker pool (no coalescing).

        Counts each row as a request in the model's stats (submitted,
        completed/failed, latency), so bulk traffic shows up consistently
        next to batched single-sample traffic.  The batch passes admission
        (concurrency budget and breaker apply; the queue-depth bound does
        not, since nothing queues) and dispatches through the resilient
        dispatcher, so crash retry and the circuit breaker cover bulk
        traffic too.
        """
        batch = np.asarray(batch)
        deadline = self._resolve_deadline(timeout_ms, deadline)
        version, rollout = self._route_version(name, version)
        pipeline = self._pipeline(name, version)
        admission = pipeline.admission
        budget = self.budget
        if budget is not None:
            budget.acquire(name, count=len(batch), stats=pipeline.stats)
        try:
            admission.admit(priority, count=len(batch))
        except BaseException:
            if budget is not None:
                budget.release(name, count=len(batch))
            raise
        stats = pipeline.stats
        stats.record_submit(count=len(batch))
        stats.record_batch(len(batch))
        start = time.perf_counter()
        ok = False
        try:
            outputs = self._await(
                pipeline.dispatch(batch), timeout, deadline
            )
            ok = True
        except BaseException:
            stats.record_done(time.perf_counter() - start, ok=False, count=len(batch))
            raise
        finally:
            admission.release(count=len(batch))
            if budget is not None:
                budget.release(name, count=len(batch))
            if rollout is not None:
                self._settle_rollout(
                    rollout, pipeline.version, error=not ok,
                    latency_ms=(time.perf_counter() - start) * 1e3 if ok else None,
                )
        stats.record_done(time.perf_counter() - start, ok=True, count=len(batch))
        return outputs

    # -- introspection -----------------------------------------------------------
    def models(self) -> Dict[str, List[int]]:
        """Published models and versions (from the repository)."""
        return self.repository.list_models()

    def metadata(self, name: str, version: Optional[int] = None) -> Dict:
        """Cheap program metadata of a published model version."""
        return self.repository.metadata(name, version)

    def predict_request(
        self,
        name: str,
        inputs: np.ndarray,
        version: Optional[int] = None,
        timeout: Optional[float] = None,
        priority: Optional[str] = None,
        timeout_ms: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[int, np.ndarray, bool]:
        """Serve one request body: a single sample or a batch of them.

        ``inputs`` either has the model's input shape (one sample) or one
        extra leading axis (a batch whose rows join the dynamic-batching
        window individually).  One pipeline resolution covers validation,
        inference, and the reported version, so the returned
        ``(version, outputs, batched)`` names the version that served —
        this is the HTTP front end's request path.  Raises
        :class:`ValueError` on a shape that matches neither form.

        If a hot-swap retires the pipeline mid-submission, rows already
        accepted still resolve on the retiring pipeline (its close() drains
        them) and only the remaining rows continue on the replacement — no
        row is inferred twice.  The reported version is then the
        replacement's (the one that served the request's tail).
        """
        inputs = np.asarray(inputs)
        deadline = self._resolve_deadline(timeout_ms, deadline)
        version, rollout = self._route_version(name, version)
        start = time.perf_counter()
        budget = self.budget
        futures: List[Future] = []
        try:
            for attempt in (0, 1):
                pipeline = self._pipeline(name, version)
                expected = pipeline.input_shape
                if inputs.shape == expected:
                    rows, batched = inputs[None], False
                elif inputs.ndim == len(expected) + 1 and inputs.shape[1:] == expected:
                    rows, batched = inputs, True
                else:
                    raise ValueError(
                        f"inputs shape {inputs.shape} matches neither the model's "
                        f"input shape {expected} nor a batch of it"
                    )
                admission = pipeline.admission
                try:
                    while len(futures) < len(rows):
                        # Row-wise admission: a shed mid-request fails the
                        # request; rows already accepted still resolve (and
                        # release their budget) through their own futures.
                        if budget is not None:
                            budget.acquire(name, stats=pipeline.stats)
                        try:
                            admission.admit(priority)
                        except BaseException:
                            if budget is not None:
                                budget.release(name)
                            raise
                        try:
                            future = pipeline.batcher.submit(
                                rows[len(futures)], deadline=deadline
                            )
                        except BaseException:
                            admission.release()
                            if budget is not None:
                                budget.release(name)
                            raise

                        def _release(_, a=admission):
                            a.release()
                            if budget is not None:
                                budget.release(name)

                        future.add_done_callback(_release)
                        futures.append(future)
                except BatcherClosed:
                    if attempt:  # see predict_async: hot-swap retirement race
                        raise
                    continue
                outputs = np.stack(
                    [self._await(future, timeout, deadline) for future in futures]
                )
                if rollout is not None:
                    self._settle_rollout(
                        rollout, pipeline.version, error=False,
                        latency_ms=(time.perf_counter() - start) * 1e3,
                    )
                return pipeline.version, outputs if batched else outputs[0], batched
            raise AssertionError("unreachable")  # pragma: no cover
        except AdmissionRejected:
            raise  # overload is never evidence against a rollout arm
        except BaseException:
            if rollout is not None and version is not None:
                self._settle_rollout(rollout, version, error=True, latency_ms=None)
            raise

    # -- streaming ---------------------------------------------------------------
    def stream_request(
        self,
        name: str,
        frames: np.ndarray,
        version: Optional[int] = None,
        session: Optional[str] = None,
        threshold: Optional[float] = None,
        close_session: bool = False,
    ):
        """Serve a chunk of one client's frame stream through its session.

        ``frames`` is one frame (the model's input shape) or a stack of
        them (one extra leading axis), processed **in order** through the
        session named by ``session`` — or a fresh session when ``None``
        (its id is returned; the client sends it back with the next chunk:
        that is the affinity token).  Returns ``(version, session_id,
        results)`` where ``results`` lazily yields one payload per frame
        (``outputs`` plus the execution mode and dirty-tile accounting), so
        the HTTP front end can stream each result as soon as it computes.
        ``close_session=True`` drops the session after the last frame.

        Streaming is capability-gated on the artifact metadata: programs
        without the schema-v3 ``stream`` block (or with non-streamable
        graphs) raise :class:`StreamUnsupported` before any state is built.
        Stream frames bypass the dynamic batcher — temporal state makes
        cross-client coalescing meaningless — but live in the same
        pipeline, so hot-swap retirement and ``close()`` drop sessions with
        the pipeline (clients re-open and the first frame recomputes in
        full: correct, just slower once).
        """
        frames = np.asarray(frames, dtype=np.float64)
        pipeline = self._pipeline(name, version)
        manager = pipeline.streaming()
        expected = pipeline.input_shape
        if frames.shape == expected:
            rows = frames[None]
        elif frames.ndim == len(expected) + 1 and frames.shape[1:] == expected:
            rows = frames
        else:
            raise ValueError(
                f"frames shape {frames.shape} matches neither the model's "
                f"input shape {expected} nor a stack of it"
            )
        if session is not None:
            manager._get(session)  # unknown ids fail before any work
            sid = session
        else:
            sid = manager.open(threshold=threshold)

        def results():
            try:
                for row in rows:
                    yield manager.process(sid, row)
            finally:
                if close_session:
                    manager.close_session(sid)

        return pipeline.version, sid, results()

    def stats(self, name: str, version: Optional[int] = None) -> Dict:
        """Stats snapshot for (name, version-or-latest).

        Read-only: never builds a pipeline.  A model that has served no
        traffic reports zeroed counters (the name/version must still exist —
        unknown models raise :class:`ModelNotFound`).
        """
        name, version, _ = self.repository.resolve(name, version)
        with self._lock:
            pipeline = self._pipelines.get((name, version))
        if pipeline is None:
            return ModelStats().snapshot()
        return self._pipeline_snapshot(pipeline)

    @staticmethod
    def _pipeline_snapshot(pipeline: _Pipeline) -> Dict:
        """One pipeline's stats, with the executor's planner counters
        (arena bytes, steps fused, shards) and the compile pipeline's
        report (optimization level, per-pass counters, verifier runs)
        attached when it has them."""
        snap = pipeline.stats.snapshot()
        plan_info = pipeline.plan_info()
        if plan_info:
            snap["executor"] = plan_info
        if pipeline.stream_manager is not None:
            snap["streaming"] = pipeline.stream_manager.snapshot()
        # Prefer the live program's report over the stored artifact header:
        # the executor's native (O4) bind updates it in place — recording a
        # ``fallback_reason``/``effective_level`` downgrade on hosts that
        # cannot build, or clearing a compile-time fallback when the build
        # cache satisfied O4 — and /stats must report what actually runs.
        report = None
        if pipeline.program is not None:
            report = pipeline.program.pipeline_report
        if report is None:
            report = pipeline.pipeline_report
        if report:
            snap["pipeline"] = report
        return snap

    def snapshot(self) -> Dict:
        """Stats snapshots of every live pipeline, keyed ``name/version``."""
        with self._lock:
            pipelines = dict(self._pipelines)
        return {
            f"{name}/{version}": self._pipeline_snapshot(pipeline)
            for (name, version), pipeline in sorted(pipelines.items())
        }

    def control_plane(self) -> Dict:
        """Autoscaler, rollout, and budget state (empty without any of them).

        Surfaced as the ``control_plane`` key of ``/stats`` and ``/healthz``
        so scaler decisions and rollout stages are auditable from outside.
        """
        payload: Dict = {}
        if self.autoscaler is not None:
            payload["autoscaler"] = self.autoscaler.snapshot()
        if self.cluster is not None:
            # Membership (alive/suspect/dead per replica), shard retry
            # counters, and the bounded transition log — the cluster's
            # whole failure-detection state is auditable from /healthz.
            payload["cluster"] = self.cluster.snapshot()
        with self._lock:
            rollouts = dict(self._rollouts)
        if rollouts:
            payload["rollouts"] = {
                name: controller.snapshot()
                for name, controller in sorted(rollouts.items())
            }
        if self.budget is not None:
            payload["budget"] = self.budget.snapshot()
        return payload

    def health(self) -> Dict:
        """Readiness rollup for ``/healthz``: ``ok`` / ``degraded`` / ``closed``.

        Degraded when any live pipeline's circuit breaker is open or its
        queue is saturated past the admission bound (the *current* bound:
        autoscaler resizes retarget it, so a scaled-up server is judged on
        its scaled capacity) — traffic to that model would be shed, so load
        balancers should prefer other replicas.
        """
        if self._closed:
            return {"status": "closed", "degraded": [], "models": {}, "totals": {}}
        rollup = self.server_stats.rollup(self.snapshot())
        control = self.control_plane()
        if control:
            rollup["control_plane"] = control
        return rollup

    # -- lifecycle ---------------------------------------------------------------
    def close(self, drain: bool = False) -> None:
        """Stop every pipeline; further predicts raise.

        By default (``drain=False``) shutdown is deterministic under load:
        requests still queued in a batcher fail immediately with
        :class:`ServerClosed` *before* the worker pools tear down; batches
        already dispatched to a pool still complete and resolve.  With
        ``drain=True`` queued requests are flushed through the pools first
        (shutdown then takes as long as the backlog).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pipelines = list(self._pipelines.values())
            self._pipelines.clear()
            self._rollouts.clear()
        if self.autoscaler is not None:
            # Stop the control loop before tearing down its targets.
            self.autoscaler.close()
        error = None if drain else ServerClosed("server is closed")
        for pipeline in pipelines:
            pipeline.close(drain=drain, error=error)

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
