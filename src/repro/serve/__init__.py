"""Model serving for compiled network programs.

This package turns the offline compile pipeline (calibrate → lower →
optimize → :class:`~repro.core.program.Executor`) into a request-serving
system — the deployment story of ``docs/SERVING.md``:

* :class:`ModelRepository` (:mod:`repro.serve.repository`) — on-disk store of
  :func:`~repro.core.export.save_program` artifacts, versioned by name, with
  LRU-cached loading and atomic hot-swap publishing.
* :class:`DynamicBatcher` / :class:`BatchPolicy` (:mod:`repro.serve.batcher`)
  — coalesce single-sample requests into executor-sized batches under a
  max-batch / max-delay policy.
* :class:`ThreadWorkerPool` / :class:`ProcessWorkerPool`
  (:mod:`repro.serve.workers`) — shard batches across workers, each owning
  its own executor (any registered backend); a crashed process worker fails
  its in-flight requests instead of hanging them.
* :class:`InferenceServer` (:mod:`repro.serve.server`) — the programmatic
  API tying the above together, with per-model latency/throughput/queue
  stats (:mod:`repro.serve.stats`).
* :class:`AdmissionController` / :class:`CircuitBreaker` /
  :class:`ResilientDispatcher` (:mod:`repro.serve.admission`) — overload
  safety: load shedding before queueing, per-model circuit breaking, and
  bounded crash retries with exponential backoff.
* :class:`FaultPlan` (:mod:`repro.serve.faults`) — deterministic seeded
  fault injection (worker crashes, slowdowns, queue stalls, corrupt
  artifacts, crashes mid-resize) for chaos testing; a no-op unless
  explicitly enabled.
* :class:`Autoscaler` / :class:`AutoscalePolicy`
  (:mod:`repro.serve.autoscaler`) — the control plane: a tick-driven
  scaler growing/shrinking worker pools with load (hysteresis + cooldown),
  parking idle pipelines (scale-to-zero with warm program-cache revival),
  all through an injectable :class:`Clock` (:mod:`repro.serve.clock`).
* :class:`RolloutController` / :class:`RolloutPolicy`
  (:mod:`repro.serve.rollout`) — staged canary rollout of new artifact
  versions with deterministic weighted routing and automatic rollback on
  error/latency regression; :class:`ConcurrencyBudget`
  (:mod:`repro.serve.admission`) isolates models from each other under
  load.
* :func:`serve_http` (:mod:`repro.serve.http`) — a stdlib JSON-over-HTTP
  front end with an overload-aware status-code contract (429/503/504 +
  ``Retry-After``).
* :class:`StreamManager` / :class:`StreamPolicy` (:mod:`repro.serve.streaming`)
  — stateful streaming inference: per-client sessions running the core's
  dirty-tile incremental executor (:mod:`repro.core.stream_plan`) with
  session affinity, TTL/LRU eviction, and reset-and-retry fault semantics;
  served over chunked HTTP at ``POST /v1/models/<name>/stream``.
* :mod:`repro.serve.cluster` — fault-tolerant multi-node serving:
  :class:`ReplicaNode` daemons behind a socket transport,
  :class:`ClusterRouter` sharding batches across health-checked replicas
  with retry-on-replica-failure, and digest-verified repository sync
  (``docs/CLUSTER.md``).

Quickstart::

    from repro.serve import InferenceServer, ModelRepository, serve_http

    repo = ModelRepository("model-repo")
    repo.publish(engine.compile(), "resnet14")      # or engine.export(path)

    server = InferenceServer(repo)
    logits = server.predict("resnet14", image)       # batched under the hood

    front = serve_http(server, port=8080)            # curl-able; see docs
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpen,
    ConcurrencyBudget,
    ResilientDispatcher,
    RetryPolicy,
)
from repro.serve.autoscaler import (
    AutoscalePolicy,
    Autoscaler,
    ScaleMetrics,
    ScalerDecision,
)
from repro.serve.batcher import (
    BatcherClosed,
    BatchPolicy,
    DeadlineExceeded,
    DynamicBatcher,
    QueueFull,
)
from repro.serve.clock import SYSTEM_CLOCK, Clock, Ticker, TimerHandle
from repro.serve.cluster import (
    ClusterRouter,
    MembershipPolicy,
    NoReplicas,
    ReplicaNode,
    TcpReplica,
    pull_from_node,
    sync_to_node,
)
from repro.serve.faults import (
    FaultPlan,
    FaultSession,
    FaultSpec,
    InjectedFault,
    NetFaultSession,
    ScaleFaultSession,
)
from repro.serve.http import HttpFrontEnd, serve_http
from repro.serve.repository import LoadedModel, ModelNotFound, ModelRepository
from repro.serve.rollout import RolloutController, RolloutPolicy
from repro.serve.server import InferenceServer, ServerClosed
from repro.serve.stats import LatencyWindow, ModelStats, ServerStats
from repro.serve.streaming import StreamManager, StreamPolicy, UnknownSession
from repro.serve.workers import (
    NoLiveWorkers,
    ProcessWorkerPool,
    ThreadWorkerPool,
    WorkerCrashed,
    WorkerError,
)

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionRejected",
    "BreakerPolicy",
    "CircuitBreaker",
    "CircuitOpen",
    "ConcurrencyBudget",
    "ResilientDispatcher",
    "RetryPolicy",
    "AutoscalePolicy",
    "Autoscaler",
    "ScaleMetrics",
    "ScalerDecision",
    "BatchPolicy",
    "BatcherClosed",
    "DeadlineExceeded",
    "DynamicBatcher",
    "QueueFull",
    "Clock",
    "SYSTEM_CLOCK",
    "Ticker",
    "TimerHandle",
    "ClusterRouter",
    "MembershipPolicy",
    "NoReplicas",
    "ReplicaNode",
    "TcpReplica",
    "pull_from_node",
    "sync_to_node",
    "FaultPlan",
    "FaultSession",
    "FaultSpec",
    "InjectedFault",
    "NetFaultSession",
    "ScaleFaultSession",
    "HttpFrontEnd",
    "serve_http",
    "RolloutController",
    "RolloutPolicy",
    "LoadedModel",
    "ModelNotFound",
    "ModelRepository",
    "InferenceServer",
    "ServerClosed",
    "LatencyWindow",
    "ModelStats",
    "ServerStats",
    "StreamManager",
    "StreamPolicy",
    "UnknownSession",
    "NoLiveWorkers",
    "ProcessWorkerPool",
    "ThreadWorkerPool",
    "WorkerCrashed",
    "WorkerError",
]
