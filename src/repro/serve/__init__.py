"""Model serving for compiled network programs.

This package turns the offline compile pipeline (calibrate → lower →
optimize → :class:`~repro.core.program.Executor`) into a request-serving
system — the deployment story of ``docs/SERVING.md``:

* :class:`ModelRepository` (:mod:`repro.serve.repository`) — on-disk store of
  :func:`~repro.core.export.save_program` artifacts, versioned by name, with
  LRU-cached loading and atomic hot-swap publishing.
* :class:`DynamicBatcher` / :class:`BatchPolicy` (:mod:`repro.serve.batcher`)
  — coalesce single-sample requests into executor-sized batches under a
  max-batch / max-delay policy.
* :class:`ThreadWorkerPool` / :class:`ProcessWorkerPool`
  (:mod:`repro.serve.workers`) — shard batches across workers, each owning
  its own executor (any registered backend); a crashed process worker fails
  its in-flight requests instead of hanging them.
* :class:`InferenceServer` (:mod:`repro.serve.server`) — the programmatic
  API tying the above together, with per-model latency/throughput/queue
  stats (:mod:`repro.serve.stats`).
* :func:`serve_http` (:mod:`repro.serve.http`) — a stdlib JSON-over-HTTP
  front end.

Quickstart::

    from repro.serve import InferenceServer, ModelRepository, serve_http

    repo = ModelRepository("model-repo")
    repo.publish(engine.compile(), "resnet14")      # or engine.export(path)

    server = InferenceServer(repo)
    logits = server.predict("resnet14", image)       # batched under the hood

    front = serve_http(server, port=8080)            # curl-able; see docs
"""

from repro.serve.batcher import BatcherClosed, BatchPolicy, DynamicBatcher, QueueFull
from repro.serve.http import HttpFrontEnd, serve_http
from repro.serve.repository import LoadedModel, ModelNotFound, ModelRepository
from repro.serve.server import InferenceServer
from repro.serve.stats import LatencyWindow, ModelStats
from repro.serve.workers import (
    ProcessWorkerPool,
    ThreadWorkerPool,
    WorkerCrashed,
    WorkerError,
)

__all__ = [
    "BatchPolicy",
    "BatcherClosed",
    "DynamicBatcher",
    "QueueFull",
    "HttpFrontEnd",
    "serve_http",
    "LoadedModel",
    "ModelNotFound",
    "ModelRepository",
    "InferenceServer",
    "LatencyWindow",
    "ModelStats",
    "ProcessWorkerPool",
    "ThreadWorkerPool",
    "WorkerCrashed",
    "WorkerError",
]
