"""Deterministic fault injection for the serving stack.

Production resilience code is exactly the code that never runs in a clean
test environment: workers do not crash on cue, queues do not stall, and
artifacts do not corrupt themselves.  This module makes those failures
*schedulable*.  A :class:`FaultPlan` is a picklable, seeded description of
faults to inject — it crosses the ``multiprocessing`` boundary into process
workers unchanged — and each worker incarnation evaluates it through its own
:class:`FaultSession` (a batch counter, per-spec trigger budgets, and a
seeded RNG), so a chaos test replays *identically* on every run.

Supported fault kinds (:data:`FAULT_KINDS`):

``crash``
    The worker dies while holding the batch.  Process workers hard-exit
    (``os._exit``) — a real SIGKILL-grade death exercising the crash
    detector, respawn, and retry paths; thread workers raise
    :class:`~repro.serve.workers.WorkerCrashed` (a simulated transient
    crash: the thread survives, the batch fails exactly like a real one).
``slow``
    The worker sleeps ``delay_ms`` before executing the batch — a degraded
    replica that makes deadlines and timeout-driven breakers testable.
``stall``
    The worker sleeps ``delay_ms`` before even looking at the message — a
    stalled queue consumer (distinct from ``slow``: the stall applies
    before any batch decode, so even shared-memory frees back up late).
``corrupt_artifact``
    The worker's artifact read fails at load time (process workers only:
    thread workers receive an already-deserialized program).  Drives the
    start-failure accounting and the respawn cap.

Network fault kinds (:data:`NET_FAULT_KINDS`) are evaluated inside the
cluster transport (:mod:`repro.serve.cluster.transport`) through a
:class:`NetFaultSession` — one per peer, counting *frames* instead of
batches, so chaos runs against a router replay identically:

``drop_conn``
    The connection is severed (socket closed, the operation fails) on the
    matching frame — a replica crash or an RST seen from the wire.
``slow_link``
    The frame is delayed ``delay_ms`` before transmission — a congested or
    degraded link that makes probe deadlines and request timeouts testable.
``partition``
    The peer becomes unreachable *from the matching frame onward*: every
    subsequent operation fails without touching the socket.  ``nth_batch``
    marks the first affected frame (>=, unlike the exact-match batch kinds)
    and ``times`` bounds how many frames fail before the partition heals
    (``None`` = never heals).

For network kinds ``worker`` selects the *peer* (replica index) and
``spawn`` is ignored — connections have no incarnation identity.

A ``crash`` spec may additionally set ``during_scale=True``: instead of
firing on a batch ordinal inside a worker, it fires when the pool's
``resize()`` runs — the parent evaluates it through a
:class:`ScaleFaultSession` and kills a live worker mid-scale (process
pools terminate the target's OS process; thread pools fail the next
batch), which is exactly the window where respawn bookkeeping and slot
accounting are easiest to get wrong.  ``nth_batch`` then counts *resizes*
(the Nth ``resize()`` call on the pool) and ``worker`` selects the victim
slot (``None`` = the lowest live slot).

Every knob is deterministic: ``worker`` selects a pool slot, ``spawn``
selects an incarnation of that slot (``0`` — the default — targets only the
first process spawned into the slot, so a respawned replacement is healthy
and recovery is observable; ``None`` poisons every incarnation), and
``nth_batch``/``times`` schedule the trigger on the worker's own batch
ordinals.  ``probability`` draws from the session RNG, which is seeded by
``(plan.seed, worker, spawn)`` — the same coin flips on every run.

The default everywhere is **no plan** (``None``): the hooks cost one ``is
None`` check per batch and inject nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

FAULT_KINDS = (
    "crash", "slow", "stall", "corrupt_artifact",
    "drop_conn", "slow_link", "partition",
)

#: The subset evaluated by the cluster transport's :class:`NetFaultSession`
#: (worker sessions never fire these, and vice versa).
NET_FAULT_KINDS = ("drop_conn", "slow_link", "partition")


@dataclass(frozen=True)
class FaultSpec:
    """One schedulable fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    worker:
        Pool slot index the fault targets; ``None`` matches every worker.
    spawn:
        Which incarnation of the slot (0 = the original worker, 1 = its
        first respawn, ...); ``None`` matches every incarnation.  The
        default 0 makes "crash once, recover" the easy case to write.
    nth_batch:
        1-based batch ordinal *on that worker* the fault triggers on;
        ``None`` makes every batch a candidate.  Ignored by
        ``corrupt_artifact`` (which triggers at load time).
    times:
        Trigger budget per session; ``None`` is unlimited.
    delay_ms:
        Sleep duration for ``slow``/``stall``.
    probability:
        Chance a candidate trigger actually fires, drawn from the
        session's seeded RNG (1.0 = always; still deterministic).
    during_scale:
        Fire at pool ``resize()`` time instead of on a worker's batch
        (``crash`` only).  ``worker`` then selects the victim slot,
        ``nth_batch`` the resize ordinal, and ``spawn`` is ignored — the
        parent evaluates the spec, not a worker incarnation.
    """

    kind: str
    worker: Optional[int] = None
    spawn: Optional[int] = 0
    nth_batch: Optional[int] = None
    times: Optional[int] = 1
    delay_ms: float = 0.0
    probability: float = 1.0
    during_scale: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.during_scale and self.kind != "crash":
            raise ValueError(
                f"during_scale only supports kind='crash', got {self.kind!r}"
            )
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {self.delay_ms}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 (or None), got {self.times}")
        if self.nth_batch is not None and self.nth_batch < 1:
            raise ValueError(f"nth_batch is 1-based, got {self.nth_batch}")


@dataclass(frozen=True)
class FaultPlan:
    """A picklable, seeded set of :class:`FaultSpec` entries.

    The plan itself is immutable state-free configuration; all mutable
    evaluation state (batch counters, budgets, RNG) lives in the
    :class:`FaultSession` each worker incarnation creates from it — which is
    what lets one plan object be shared by N workers across process
    boundaries and still behave deterministically per worker.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    # -- convenience constructors (the common chaos-test shapes) ---------------
    @staticmethod
    def crash_on_batch(nth: int, worker: Optional[int] = None, *,
                       spawn: Optional[int] = 0, times: Optional[int] = 1,
                       seed: int = 0) -> "FaultPlan":
        """Crash ``worker`` (or any) on its ``nth`` batch."""
        return FaultPlan(
            (FaultSpec("crash", worker=worker, spawn=spawn,
                       nth_batch=nth, times=times),),
            seed=seed,
        )

    @staticmethod
    def slow_worker(delay_ms: float, worker: Optional[int] = None, *,
                    spawn: Optional[int] = 0, times: Optional[int] = None,
                    seed: int = 0) -> "FaultPlan":
        """Delay every (or the first ``times``) batches on ``worker``."""
        return FaultPlan(
            (FaultSpec("slow", worker=worker, spawn=spawn,
                       times=times, delay_ms=delay_ms),),
            seed=seed,
        )

    @staticmethod
    def corrupt_artifact(worker: Optional[int] = None, *,
                         spawn: Optional[int] = 0, seed: int = 0) -> "FaultPlan":
        """Fail the artifact read at worker start (process workers)."""
        return FaultPlan(
            (FaultSpec("corrupt_artifact", worker=worker, spawn=spawn),),
            seed=seed,
        )

    @staticmethod
    def crash_during_scale(worker: Optional[int] = None, *,
                           nth_resize: Optional[int] = None,
                           times: Optional[int] = 1,
                           seed: int = 0) -> "FaultPlan":
        """Kill a live worker while the pool is resizing (the ``nth_resize``-th
        ``resize()`` call, or every one)."""
        return FaultPlan(
            (FaultSpec("crash", worker=worker, spawn=None,
                       nth_batch=nth_resize, times=times, during_scale=True),),
            seed=seed,
        )

    @staticmethod
    def queue_stall(delay_ms: float, worker: Optional[int] = None, *,
                    spawn: Optional[int] = 0, times: Optional[int] = 1,
                    seed: int = 0) -> "FaultPlan":
        """Stall the worker's queue consumption for ``delay_ms``."""
        return FaultPlan(
            (FaultSpec("stall", worker=worker, spawn=spawn,
                       times=times, delay_ms=delay_ms),),
            seed=seed,
        )

    @staticmethod
    def drop_connection(nth_frame: Optional[int] = None,
                        peer: Optional[int] = None, *,
                        times: Optional[int] = 1, seed: int = 0) -> "FaultPlan":
        """Sever the connection to ``peer`` on its ``nth_frame``-th frame."""
        return FaultPlan(
            (FaultSpec("drop_conn", worker=peer, spawn=None,
                       nth_batch=nth_frame, times=times),),
            seed=seed,
        )

    @staticmethod
    def slow_link(delay_ms: float, peer: Optional[int] = None, *,
                  times: Optional[int] = None, seed: int = 0) -> "FaultPlan":
        """Delay every (or the first ``times``) frames to ``peer``."""
        return FaultPlan(
            (FaultSpec("slow_link", worker=peer, spawn=None,
                       times=times, delay_ms=delay_ms),),
            seed=seed,
        )

    @staticmethod
    def partition(peer: Optional[int] = None, *,
                  after_frame: int = 1, heal_after: Optional[int] = None,
                  seed: int = 0) -> "FaultPlan":
        """Make ``peer`` unreachable from its ``after_frame``-th frame on.

        ``heal_after`` bounds the partition: that many frames fail, then
        traffic flows again (``None`` = the partition never heals).
        """
        return FaultPlan(
            (FaultSpec("partition", worker=peer, spawn=None,
                       nth_batch=after_frame, times=heal_after),),
            seed=seed,
        )

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        """Compose plans (left seed wins: one RNG stream per session)."""
        return FaultPlan(self.specs + tuple(other.specs), seed=self.seed)

    def session(self, worker: int = 0, spawn: int = 0) -> "FaultSession":
        """Evaluation state for one worker incarnation."""
        return FaultSession(self, worker=worker, spawn=spawn)

    def net_session(self, peer: int = 0) -> "NetFaultSession":
        """Evaluation state for one transport peer (replica index)."""
        return NetFaultSession(self, peer=peer)


class FaultSession:
    """Per-worker-incarnation evaluation of a :class:`FaultPlan`.

    Workers call :meth:`on_batch` once per batch (and process workers call
    :meth:`on_artifact_load` once at startup); matching specs come back as a
    list of actions for the caller to apply in order — sleeps first, crash
    last, so a ``slow`` + ``crash`` combination observes both.
    """

    def __init__(self, plan: FaultPlan, worker: int = 0, spawn: int = 0):
        self.plan = plan
        self.worker = worker
        self.spawn = spawn
        self.batches = 0
        self._budgets: List[Optional[int]] = [spec.times for spec in plan.specs]
        self._rng = random.Random(f"{plan.seed}:{worker}:{spawn}")

    def _matches(self, index: int, spec: FaultSpec, *, batch: Optional[int]) -> bool:
        if spec.worker is not None and spec.worker != self.worker:
            return False
        if spec.spawn is not None and spec.spawn != self.spawn:
            return False
        if batch is not None and spec.nth_batch is not None and spec.nth_batch != batch:
            return False
        budget = self._budgets[index]
        if budget is not None and budget <= 0:
            return False
        if spec.probability < 1.0 and self._rng.random() >= spec.probability:
            return False
        if budget is not None:
            self._budgets[index] = budget - 1
        return True

    def _fire(self, kinds: Sequence[str], batch: Optional[int]) -> List[FaultSpec]:
        fired = [
            spec
            for index, spec in enumerate(self.plan.specs)
            # during_scale specs belong to the parent's ScaleFaultSession,
            # never to a worker's batch/load hooks.
            if spec.kind in kinds
            and not spec.during_scale
            and self._matches(index, spec, batch=batch)
        ]
        # Sleeps before the crash: a slow death is still observably slow.
        order = {"stall": 0, "slow": 1, "crash": 2}
        fired.sort(key=lambda spec: order.get(spec.kind, 3))
        return fired

    def on_batch(self) -> List[FaultSpec]:
        """Advance the batch counter; actions to apply to this batch."""
        self.batches += 1
        return self._fire(("stall", "slow", "crash"), batch=self.batches)

    def on_artifact_load(self) -> Optional[FaultSpec]:
        """The ``corrupt_artifact`` spec to apply at load time, if any."""
        fired = self._fire(("corrupt_artifact",), batch=None)
        return fired[0] if fired else None


class ScaleFaultSession:
    """Parent-side evaluation of ``during_scale`` specs — one per pool.

    Worker pools call :meth:`on_resize` once per ``resize()``; the returned
    specs name the victims to kill mid-scale.  Evaluation state (a resize
    counter, per-spec budgets, a seeded RNG stream distinct from every
    worker's) lives here in the parent, because the crash targets a worker
    *from outside* — terminating its process, or failing its next batch —
    exactly as an external killer would.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.resizes = 0
        self._budgets: List[Optional[int]] = [spec.times for spec in plan.specs]
        self._rng = random.Random(f"{plan.seed}:scale")

    def on_resize(self) -> List[FaultSpec]:
        """Advance the resize counter; crash specs to apply to this resize."""
        self.resizes += 1
        fired: List[FaultSpec] = []
        for index, spec in enumerate(self.plan.specs):
            if not spec.during_scale:
                continue
            if spec.nth_batch is not None and spec.nth_batch != self.resizes:
                continue
            budget = self._budgets[index]
            if budget is not None and budget <= 0:
                continue
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                continue
            if budget is not None:
                self._budgets[index] = budget - 1
            fired.append(spec)
        return fired


class NetFaultSession:
    """Per-peer evaluation of a plan's network specs — one per replica.

    The cluster transport calls :meth:`on_frame` once per frame it is about
    to move (sends and receives both advance the counter), and applies the
    returned specs in order: ``partition`` first (the frame never reaches
    the wire), then ``slow_link`` (delay), then ``drop_conn`` (sever after
    any delay).  Frame ordinals are per-peer, so a plan targeting "the 3rd
    frame to replica 1" replays identically however the router interleaves
    its other peers.

    Matching semantics differ from batch faults in two deliberate ways:
    ``spawn`` never filters (connections have no incarnation), and a
    ``partition`` spec's ``nth_batch`` is a *lower bound* — the partition
    holds from that frame until its ``times`` budget heals it.
    """

    def __init__(self, plan: FaultPlan, peer: int = 0):
        self.plan = plan
        self.peer = peer
        self.frames = 0
        self._budgets: List[Optional[int]] = [spec.times for spec in plan.specs]
        self._rng = random.Random(f"{plan.seed}:net:{peer}")

    def _matches(self, index: int, spec: FaultSpec) -> bool:
        if spec.worker is not None and spec.worker != self.peer:
            return False
        if spec.nth_batch is not None:
            if spec.kind == "partition":
                if self.frames < spec.nth_batch:
                    return False
            elif spec.nth_batch != self.frames:
                return False
        budget = self._budgets[index]
        if budget is not None and budget <= 0:
            return False
        if spec.probability < 1.0 and self._rng.random() >= spec.probability:
            return False
        if budget is not None:
            self._budgets[index] = budget - 1
        return True

    def on_frame(self) -> List[FaultSpec]:
        """Advance the frame counter; actions to apply to this frame."""
        self.frames += 1
        fired = [
            spec
            for index, spec in enumerate(self.plan.specs)
            if spec.kind in NET_FAULT_KINDS and self._matches(index, spec)
        ]
        order = {"partition": 0, "slow_link": 1, "drop_conn": 2}
        fired.sort(key=lambda spec: order[spec.kind])
        return fired


class InjectedFault(RuntimeError):
    """Raised in place of real I/O when a ``corrupt_artifact`` fault fires."""
