"""Canary / A-B rollout of artifact versions with automatic rollback.

A rollout shifts traffic for one model from a *stable* version to a
*canary* version through staged weights (5% → 25% → 50% → 100% by
default), advancing a stage only after the canary has served enough
requests at the current weight **and** its observed error rate and latency
stay within the guardrails relative to the stable arm.  A canary that
regresses is rolled back automatically — a terminal trip, exactly like the
circuit breaker in :mod:`repro.serve.admission`: once a version rolled
back, the controller never routes to it again (publish a new version to
try again).

Routing is a **deterministic credit accumulator**, not a random draw: each
``route()`` call adds the current canary weight to a credit counter and
routes to the canary whenever the counter reaches 1 (subtracting 1).  Over
any window of N requests the canary receives ``round(N * weight)`` ± 1
requests, on every run, with no RNG to seed — which is what lets the
simulation suite assert exact routing counts.

The controller is pure bookkeeping: the server calls ``route()`` to pick a
version for each request, ``record(version, error=..., latency_ms=...)``
as each settles, and ``evaluate()`` from its control-loop tick (or the
tests call it directly).  No threads, no clocks — stage dwell is counted
in requests served, so the whole lifecycle is deterministic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class RolloutPolicy:
    """Guardrails and schedule for one canary rollout.

    Attributes
    ----------
    stages:
        Increasing canary traffic weights; the final stage should be 1.0
        (completing it promotes the canary).
    min_requests_per_stage:
        Canary requests that must settle at a stage before it can advance —
        a stage is judged on evidence, not elapsed time.
    max_error_rate:
        Absolute ceiling on the canary's error rate; crossing it (after
        ``min_failures`` errors) rolls back regardless of the stable arm.
    error_rate_margin:
        Relative guardrail: roll back when the canary's error rate exceeds
        ``stable_rate + margin`` (a canary may not be *meaningfully* worse
        even if both are erroring).
    latency_factor:
        Roll back when canary mean latency exceeds ``factor ×`` stable mean
        latency (only once both arms have latency samples).
    min_failures:
        Minimum canary errors before any error-based rollback — one unlucky
        request must not kill a rollout.
    """

    stages: Tuple[float, ...] = (0.05, 0.25, 0.5, 1.0)
    min_requests_per_stage: int = 20
    max_error_rate: float = 0.1
    error_rate_margin: float = 0.05
    latency_factor: float = 2.0
    min_failures: int = 3

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("stages must be non-empty")
        if any(not (0.0 < w <= 1.0) for w in self.stages):
            raise ValueError(f"stage weights must be in (0, 1], got {self.stages}")
        if list(self.stages) != sorted(self.stages):
            raise ValueError(f"stage weights must be increasing, got {self.stages}")
        if self.min_requests_per_stage < 1:
            raise ValueError("min_requests_per_stage must be >= 1")
        if not (0.0 < self.max_error_rate <= 1.0):
            raise ValueError(f"max_error_rate must be in (0, 1], got {self.max_error_rate}")
        if self.min_failures < 1:
            raise ValueError("min_failures must be >= 1")


@dataclass
class _ArmStats:
    """Per-version request accounting for one rollout (monotonic counters)."""

    requests: int = 0
    errors: int = 0
    latency_total_ms: float = 0.0
    latency_samples: int = 0

    def record(self, error: bool, latency_ms: Optional[float]) -> None:
        self.requests += 1
        if error:
            self.errors += 1
        if latency_ms is not None:
            self.latency_total_ms += latency_ms
            self.latency_samples += 1

    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    def mean_latency_ms(self) -> Optional[float]:
        if not self.latency_samples:
            return None
        return self.latency_total_ms / self.latency_samples

    def as_dict(self) -> Dict:
        mean = self.mean_latency_ms()
        return {
            "requests": self.requests,
            "errors": self.errors,
            "error_rate": round(self.error_rate(), 4),
            "mean_latency_ms": round(mean, 3) if mean is not None else None,
        }


class RolloutController:
    """Weighted stable/canary version router with staged promotion.

    One controller manages one model's rollout from ``stable`` to
    ``canary`` (both are version ints resolvable through the repository).
    States: ``"canary"`` (staged traffic shifting) → ``"promoted"`` or
    ``"rolled_back"`` (both terminal).  ``route()`` keeps answering in the
    terminal states — all-stable after a rollback, all-canary after
    promotion — so the server can leave the controller installed until it
    refreshes its pin.
    """

    def __init__(
        self,
        model: str,
        stable: int,
        canary: int,
        policy: Optional[RolloutPolicy] = None,
    ):
        if stable == canary:
            raise ValueError(
                f"canary version must differ from stable (both {stable})"
            )
        self.model = model
        self.stable = stable
        self.canary = canary
        self.policy = policy or RolloutPolicy()
        self._lock = threading.Lock()
        self.state = "canary"
        self.stage_index = 0
        self.reason: Optional[str] = None
        self._credit = 0.0
        # Canary requests settled at the *current* stage (stage dwell).
        self._stage_canary_settled = 0
        self._arms: Dict[int, _ArmStats] = {
            stable: _ArmStats(),
            canary: _ArmStats(),
        }
        self._history: List[Dict] = [
            {"event": "start", "stage": 0, "weight": self.weight()}
        ]

    # -- routing -----------------------------------------------------------------
    def weight(self) -> float:
        """Current canary traffic weight (0 after rollback, 1 after promote)."""
        if self.state == "rolled_back":
            return 0.0
        if self.state == "promoted":
            return 1.0
        return self.policy.stages[self.stage_index]

    def route(self) -> int:
        """Pick the version for one request (deterministic credit router)."""
        with self._lock:
            if self.state == "rolled_back":
                return self.stable
            if self.state == "promoted":
                return self.canary
            self._credit += self.policy.stages[self.stage_index]
            if self._credit >= 1.0 - 1e-9:
                self._credit -= 1.0
                return self.canary
            return self.stable

    # -- accounting --------------------------------------------------------------
    def record(
        self,
        version: int,
        error: bool = False,
        latency_ms: Optional[float] = None,
    ) -> None:
        """Account one settled request routed by this controller."""
        with self._lock:
            arm = self._arms.get(version)
            if arm is None:
                return  # a pinned request outside the rollout; not our arm
            arm.record(error, latency_ms)
            if version == self.canary and self.state == "canary":
                self._stage_canary_settled += 1

    # -- the gate ----------------------------------------------------------------
    def evaluate(self) -> str:
        """Advance, promote, or roll back based on the evidence so far.

        Returns the (possibly new) state.  Idempotent between records; the
        server calls it after each settled canary request and from its
        control tick.
        """
        with self._lock:
            if self.state != "canary":
                return self.state
            policy = self.policy
            canary = self._arms[self.canary]
            stable = self._arms[self.stable]

            # Rollback checks run on every settle — a regression must trip
            # immediately, not at the next stage boundary.
            if canary.errors >= policy.min_failures:
                rate = canary.error_rate()
                if rate > policy.max_error_rate:
                    return self._roll_back(
                        f"canary error rate {rate:.1%} over ceiling "
                        f"{policy.max_error_rate:.1%}"
                    )
                if rate > stable.error_rate() + policy.error_rate_margin:
                    return self._roll_back(
                        f"canary error rate {rate:.1%} exceeds stable "
                        f"{stable.error_rate():.1%} by more than "
                        f"{policy.error_rate_margin:.1%}"
                    )
            canary_lat = canary.mean_latency_ms()
            stable_lat = stable.mean_latency_ms()
            if (
                canary_lat is not None
                and stable_lat is not None
                and stable_lat > 0
                and canary.latency_samples >= policy.min_requests_per_stage
                and canary_lat > policy.latency_factor * stable_lat
            ):
                return self._roll_back(
                    f"canary mean latency {canary_lat:.1f}ms over "
                    f"{policy.latency_factor}x stable {stable_lat:.1f}ms"
                )

            # Advance only on sufficient evidence at this stage.
            if self._stage_canary_settled < policy.min_requests_per_stage:
                return self.state
            if self.stage_index + 1 < len(policy.stages):
                self.stage_index += 1
                self._stage_canary_settled = 0
                self._history.append(
                    {
                        "event": "advance",
                        "stage": self.stage_index,
                        "weight": policy.stages[self.stage_index],
                    }
                )
                return self.state
            self.state = "promoted"
            self.reason = (
                f"canary healthy through all {len(policy.stages)} stages"
            )
            self._history.append({"event": "promoted", "reason": self.reason})
            return self.state

    def _roll_back(self, reason: str) -> str:
        self.state = "rolled_back"
        self.reason = reason
        self._history.append({"event": "rolled_back", "reason": reason})
        return self.state

    def abort(self, reason: str = "aborted by operator") -> str:
        """Manual rollback (idempotent; no-op after promotion)."""
        with self._lock:
            if self.state != "canary":
                return self.state
            return self._roll_back(reason)

    # -- reporting ---------------------------------------------------------------
    def snapshot(self) -> Dict:
        """JSON-able rollout state for ``/stats`` and ``/healthz``."""
        with self._lock:
            return {
                "model": self.model,
                "stable": self.stable,
                "canary": self.canary,
                "state": self.state,
                "stage": self.stage_index,
                "weight": self.weight(),
                "reason": self.reason,
                "stages": list(self.policy.stages),
                "arms": {
                    str(version): arm.as_dict()
                    for version, arm in sorted(self._arms.items())
                },
                "history": list(self._history),
            }
