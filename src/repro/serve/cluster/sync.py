"""Repository replication: digest-diffed, sha256-verified artifact sync.

A replica node serves from its *own* :class:`~repro.serve.repository.
ModelRepository`; this module keeps replica repositories converged with the
front end's, using three guarantees already built elsewhere:

* **Header-only diff** — what a peer has is described by its manifest:
  ``{model: {version: sha256}}``, built from
  :func:`~repro.core.export.read_program_metadata` (publish sidecars cache
  it), so diffing never opens an archive.  Only (model, version) pairs the
  replica lacks — or holds with a *different* digest — transfer.
* **Verified transfer** — the artifact file ships as one frame whose
  metadata carries the file's sha256; the replica re-hashes the received
  bytes, then re-checks the *embedded content digest*
  (:func:`~repro.core.export.verify_program_digest`) before installing —
  corruption at either layer is rejected, and the push answer says so.
* **Atomic install** — the replica publishes through the repository's
  staged-rename path, so a reader on the replica sees either the old
  version set or the complete new version, never a half-written archive.

The front end *pushes* (``sync_to_node``: it knows when it published), and
a replica can equally *pull* (``pull_from_node``: a cold replica catching
up from a serving peer).  Both directions are the same three frames —
``manifest`` / ``push`` / ``fetch`` — handled by
:class:`~repro.serve.cluster.node.ReplicaNode`.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.cluster.transport import Connection, connect
from repro.serve.repository import ModelRepository


class SyncError(RuntimeError):
    """A sync step failed (transfer rejected, digest mismatch, peer error)."""


def repository_manifest(repository: ModelRepository) -> Dict[str, Dict[str, Dict]]:
    """``{model: {version: {"sha256", "file_bytes"}}}`` — header-only.

    Versions are string keys (the manifest crosses JSON frame headers,
    where integer dict keys do not survive).
    """
    manifest: Dict[str, Dict[str, Dict]] = {}
    for name, versions in repository.list_models().items():
        manifest[name] = {}
        for version in versions:
            meta = repository.metadata(name, version)
            manifest[name][str(version)] = {
                "sha256": meta.get("sha256"),
                "file_bytes": meta.get("file_bytes"),
            }
    return manifest


def diff_manifests(
    source: Dict[str, Dict[str, Dict]],
    target: Dict[str, Dict[str, Dict]],
) -> List[Tuple[str, int]]:
    """(model, version) pairs present in ``source`` that ``target`` lacks.

    A version the target holds with a *different* digest also diffs —
    versions are immutable, so that is corruption (or a partial install)
    the caller should surface rather than silently skip.
    """
    missing: List[Tuple[str, int]] = []
    for name, versions in source.items():
        have = target.get(name, {})
        for version, desc in versions.items():
            mine = have.get(version)
            if mine is None or (
                desc.get("sha256") is not None
                and mine.get("sha256") != desc.get("sha256")
            ):
                missing.append((name, int(version)))
    return sorted(missing)


def sync_to_node(
    conn_or_address,
    repository: ModelRepository,
    models: Optional[Sequence[str]] = None,
    timeout_s: float = 60.0,
) -> Dict:
    """Push every artifact the peer lacks; return a transfer report.

    ``conn_or_address`` is an open :class:`Connection` or a ``(host, port)``
    tuple (dialed and closed here).  ``models`` restricts the sync to named
    models (``None`` = everything published locally).

    Returns ``{"pushed": [(model, version), ...], "skipped": [...],
    "bytes": total_transferred}``; raises :class:`SyncError` when the peer
    rejects a transfer (digest mismatch survives retries — that artifact is
    corrupt at the source and needs re-export, not re-send).
    """
    own_conn = not isinstance(conn_or_address, Connection)
    conn = (
        connect(tuple(conn_or_address), timeout_s=timeout_s)
        if own_conn
        else conn_or_address
    )
    try:
        reply = conn.request("manifest", timeout_s=timeout_s)
        if reply.kind != "manifest_ok":
            raise SyncError(f"peer manifest failed: {reply.meta.get('error')}")
        local = repository_manifest(repository)
        if models is not None:
            wanted = set(models)
            local = {name: v for name, v in local.items() if name in wanted}
        plan = diff_manifests(local, reply.meta.get("models") or {})
        pushed: List[Tuple[str, int]] = []
        skipped: List[Tuple[str, int]] = []
        transferred = 0
        for name, version in plan:
            raw = repository.artifact_path(name, version).read_bytes()
            answer = conn.request(
                "push",
                {
                    "model": name,
                    "version": version,
                    "sha256": hashlib.sha256(raw).hexdigest(),
                },
                {"artifact": np.frombuffer(raw, dtype=np.uint8)},
                timeout_s=timeout_s,
            )
            if answer.kind != "push_ok":
                raise SyncError(
                    f"peer rejected {name} v{version}: {answer.meta.get('error')}"
                )
            transferred += len(raw)
            if answer.meta.get("installed"):
                pushed.append((name, version))
            else:
                skipped.append((name, version))
        already = [
            (name, int(version))
            for name, versions in local.items()
            for version in versions
            if (name, int(version)) not in set(plan)
        ]
        return {
            "pushed": pushed,
            "skipped": sorted(skipped + already),
            "bytes": transferred,
        }
    finally:
        if own_conn:
            conn.close()


def pull_from_node(
    conn_or_address,
    repository: ModelRepository,
    models: Optional[Sequence[str]] = None,
    timeout_s: float = 60.0,
) -> Dict:
    """Fetch every artifact the peer has that ``repository`` lacks.

    The mirror image of :func:`sync_to_node` for a cold replica catching up
    from a serving peer: diff the peer's manifest against the local one,
    ``fetch`` each missing artifact, verify the transfer sha256 *and* the
    embedded content digest, and install through the repository's atomic
    staged publish.  Returns the same report shape as :func:`sync_to_node`.
    """
    import os
    import tempfile

    from repro.core.export import verify_program_digest

    own_conn = not isinstance(conn_or_address, Connection)
    conn = (
        connect(tuple(conn_or_address), timeout_s=timeout_s)
        if own_conn
        else conn_or_address
    )
    try:
        reply = conn.request("manifest", timeout_s=timeout_s)
        if reply.kind != "manifest_ok":
            raise SyncError(f"peer manifest failed: {reply.meta.get('error')}")
        remote = reply.meta.get("models") or {}
        if models is not None:
            wanted = set(models)
            remote = {name: v for name, v in remote.items() if name in wanted}
        plan = diff_manifests(remote, repository_manifest(repository))
        pulled: List[Tuple[str, int]] = []
        transferred = 0
        for name, version in plan:
            answer = conn.request(
                "fetch", {"model": name, "version": version}, timeout_s=timeout_s
            )
            if answer.kind != "artifact":
                raise SyncError(
                    f"peer fetch of {name} v{version} failed: "
                    f"{answer.meta.get('error')}"
                )
            raw = answer.arrays["artifact"].astype(np.uint8, copy=False).tobytes()
            actual = hashlib.sha256(raw).hexdigest()
            if actual != answer.meta.get("sha256"):
                raise SyncError(
                    f"fetched artifact {name} v{version} failed sha256 "
                    f"verification (got {actual}, "
                    f"expected {answer.meta.get('sha256')})"
                )
            tmp = tempfile.NamedTemporaryFile(
                suffix=".npz", prefix="sync-", delete=False
            )
            try:
                tmp.write(raw)
                tmp.close()
                verify_program_digest(tmp.name)
                repository.publish_artifact(tmp.name, name, version)
            finally:
                try:
                    os.unlink(tmp.name)
                except OSError:
                    pass
            pulled.append((name, version))
            transferred += len(raw)
        return {"pushed": pulled, "skipped": [], "bytes": transferred}
    finally:
        if own_conn:
            conn.close()
