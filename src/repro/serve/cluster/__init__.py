"""Fault-tolerant multi-node serving: transport, replicas, router, sync.

The cluster tier turns the single-process serving stack into N replica
processes (or machines) behind one front end:

* :mod:`~repro.serve.cluster.transport` — length-prefixed array framing
  over TCP with per-operation deadlines and injectable network faults,
  sized by the same slot geometry as the shared-memory rings.
* :mod:`~repro.serve.cluster.node` — the replica daemon: a model
  repository plus cached executors behind a socket, answering predict /
  health / sync frames (``python -m repro.serve.cluster.node``).
* :mod:`~repro.serve.cluster.router` — the front end: shards batches
  across health-checked replicas, re-dispatches failed shards to
  survivors, and exposes membership + retry counters to ``/healthz``.
* :mod:`~repro.serve.cluster.sync` — digest-diffed, sha256-verified
  repository replication (push from the front end, pull for cold
  replicas).

See docs/CLUSTER.md for topology, knobs, and the failure-mode table.
"""

from repro.serve.cluster.node import ReplicaNode
from repro.serve.cluster.router import (
    ClusterRouter,
    MembershipPolicy,
    NoReplicas,
    ReplicaError,
    ReplicaHandle,
    RouterPool,
    TcpReplica,
)
from repro.serve.cluster.sync import (
    SyncError,
    diff_manifests,
    pull_from_node,
    repository_manifest,
    sync_to_node,
)
from repro.serve.cluster.transport import (
    Connection,
    ConnectionClosed,
    DeadlineExpired,
    Frame,
    FrameTooLarge,
    Partitioned,
    TransportError,
    TruncatedFrame,
    connect,
    frame_bound_for_artifact,
    recv_frame,
    send_frame,
)

__all__ = [
    "ClusterRouter",
    "Connection",
    "ConnectionClosed",
    "DeadlineExpired",
    "Frame",
    "FrameTooLarge",
    "MembershipPolicy",
    "NoReplicas",
    "Partitioned",
    "ReplicaError",
    "ReplicaHandle",
    "ReplicaNode",
    "RouterPool",
    "SyncError",
    "TcpReplica",
    "TransportError",
    "TruncatedFrame",
    "connect",
    "diff_manifests",
    "frame_bound_for_artifact",
    "pull_from_node",
    "recv_frame",
    "repository_manifest",
    "send_frame",
    "sync_to_node",
]
