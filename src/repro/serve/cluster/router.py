"""Front-end router: shard batches across health-checked replica nodes.

The :class:`ClusterRouter` is the cluster's worker pool.  It holds a set of
:class:`ReplicaHandle` s (TCP replicas by default, fakes in the simulation
suites), shards every submitted batch row-wise across the replicas its
failure detector currently believes in, and re-dispatches a failed shard to
a surviving replica — so one replica dying mid-load costs a retry, not a
failed request.

**Membership** is heartbeat-driven: a :class:`~repro.serve.clock.Ticker`
(on the injectable clock — every transition is testable in virtual time on
the SimClock harness) probes each replica under a probe deadline.  States::

    alive ──(probe/predict failure)──> suspect ──(dead_after fails)──> dead
      ^                                   │ success                      │
      └───────────────────────────────────┴──────(probe success)─────────┘

``suspect`` replicas stop receiving new shards but keep being probed;
``dead`` replicas likewise rejoin on their first successful probe (a
restarted node heals the membership with no operator action).  Every
transition is appended to a bounded event log surfaced in ``/healthz``.

**Failure handling** reuses the worker-pool contract: a shard that fails on
every candidate raises :class:`~repro.serve.workers.WorkerCrashed` (the
retriable error PR 6's :class:`~repro.serve.admission.ResilientDispatcher`
backs off and retries), and an empty membership raises :class:`NoReplicas`
— a :class:`~repro.serve.workers.NoLiveWorkers` subclass, so admission
control, the circuit breaker, and the HTTP 503 mapping all apply unchanged
(surfaced as reason ``no_replicas``).  Per-request deadlines flow through:
shard requests run under ``MembershipPolicy.request_timeout_s`` or the
caller's tighter per-submit timeout.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serve.clock import Clock, SYSTEM_CLOCK, Ticker
from repro.serve.cluster.transport import (
    Connection,
    TransportError,
    connect,
)
from repro.serve.workers import NoLiveWorkers, WorkerCrashed

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


class NoReplicas(NoLiveWorkers):
    """Every registered replica is currently dead (probes keep running).

    Subclassing :class:`NoLiveWorkers` keeps the whole resilience stack
    applicable: the dispatcher retries it, the breaker counts it, and the
    HTTP layer sheds with 503 (reason ``no_replicas``).
    """


class ReplicaError(RuntimeError):
    """The replica answered with an application error (not a transport
    failure): wrong model, oversized batch, executor bug.  Not retriable —
    every replica serves the same artifacts, so re-dispatching would fail
    identically."""


@dataclass(frozen=True)
class MembershipPolicy:
    """Failure-detection and retry knobs (see docs/CLUSTER.md).

    Attributes
    ----------
    probe_interval_s:
        Heartbeat period: how often the router probes every replica.
    probe_timeout_s:
        Per-probe deadline; a probe that answers slower is a failure.
    suspect_after:
        Consecutive failures that demote ``alive`` → ``suspect`` (stop
        routing new shards there).
    dead_after:
        Consecutive failures that demote to ``dead``.  Probing continues —
        one success at any state resurrects the replica to ``alive``.
    max_shard_retries:
        Re-dispatch attempts per shard before the batch fails with
        :class:`~repro.serve.workers.WorkerCrashed`.
    request_timeout_s:
        Deadline for one shard's predict round-trip.
    connect_timeout_s:
        Deadline for dialing a replica.
    history:
        Membership transition events retained for ``/healthz``.
    """

    probe_interval_s: float = 0.5
    probe_timeout_s: float = 0.5
    suspect_after: int = 1
    dead_after: int = 3
    max_shard_retries: int = 3
    request_timeout_s: float = 30.0
    connect_timeout_s: float = 2.0
    history: int = 64

    def __post_init__(self) -> None:
        if self.probe_interval_s <= 0:
            raise ValueError(f"probe_interval_s must be > 0, got {self.probe_interval_s}")
        if self.suspect_after < 1:
            raise ValueError(f"suspect_after must be >= 1, got {self.suspect_after}")
        if self.dead_after < self.suspect_after:
            raise ValueError(
                f"dead_after ({self.dead_after}) must be >= suspect_after "
                f"({self.suspect_after})"
            )
        if self.max_shard_retries < 0:
            raise ValueError(f"max_shard_retries must be >= 0, got {self.max_shard_retries}")


class ReplicaHandle:
    """What the router needs from a replica; subclass for real or fake ones."""

    name: str = "replica"

    def predict(
        self, model: str, version: Optional[int], batch: np.ndarray,
        timeout_s: Optional[float] = None,
    ) -> np.ndarray:
        raise NotImplementedError

    def probe(self, timeout_s: Optional[float] = None) -> Dict:
        """Health-check; returns the replica's health metadata or raises."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class TcpReplica(ReplicaHandle):
    """A replica node reached over the cluster transport.

    Keeps a small pool of framed connections (predicts from concurrent
    shards each check one out; broken ones are discarded, fresh ones are
    dialed on demand).  A shared per-peer
    :class:`~repro.serve.faults.NetFaultSession` rides on every connection,
    so injected network faults count frames across the replica's whole
    conversation — deterministic chaos regardless of pooling.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        name: Optional[str] = None,
        index: int = 0,
        request_timeout_s: float = 30.0,
        connect_timeout_s: float = 2.0,
        max_frame_bytes: Optional[int] = None,
        fault_plan=None,
        max_pooled: int = 4,
    ):
        from repro.serve.cluster.transport import DEFAULT_MAX_FRAME_BYTES

        self.address = (str(address[0]), int(address[1]))
        self.name = name or f"{self.address[0]}:{self.address[1]}"
        self.index = index
        self.request_timeout_s = request_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.max_frame_bytes = max_frame_bytes or DEFAULT_MAX_FRAME_BYTES
        self.faults = fault_plan.net_session(peer=index) if fault_plan is not None else None
        self._pool: List[Connection] = []
        self._pool_lock = threading.Lock()
        self._max_pooled = max_pooled
        self._closed = False

    def _checkout(self) -> Connection:
        with self._pool_lock:
            if self._closed:
                raise TransportError(f"replica handle {self.name} is closed")
            if self._pool:
                return self._pool.pop()
        return connect(
            self.address,
            timeout_s=self.request_timeout_s,
            connect_timeout_s=self.connect_timeout_s,
            max_frame_bytes=self.max_frame_bytes,
            faults=self.faults,
        )

    def _checkin(self, conn: Connection) -> None:
        with self._pool_lock:
            if not self._closed and not conn.closed and len(self._pool) < self._max_pooled:
                self._pool.append(conn)
                return
        conn.close()

    def _request(self, kind: str, meta=None, arrays=None, timeout_s=None):
        conn = self._checkout()
        try:
            reply = conn.request(
                kind, meta, arrays,
                timeout_s=self.request_timeout_s if timeout_s is None else timeout_s,
            )
        except BaseException:
            conn.close()
            raise
        self._checkin(conn)
        return reply

    def predict(self, model, version, batch, timeout_s=None) -> np.ndarray:
        meta = {"model": model}
        if version is not None:
            meta["version"] = int(version)
        reply = self._request(
            "predict", meta, {"batch": np.ascontiguousarray(batch)},
            timeout_s=timeout_s,
        )
        if reply.kind == "result":
            return reply.arrays["outputs"]
        message = reply.meta.get("error", f"unexpected reply kind {reply.kind!r}")
        if reply.meta.get("retriable"):
            raise TransportError(f"replica {self.name}: {message}")
        raise ReplicaError(f"replica {self.name}: {message}")

    def probe(self, timeout_s=None) -> Dict:
        reply = self._request("health", timeout_s=timeout_s)
        if reply.kind != "health_ok":
            raise TransportError(
                f"replica {self.name} health probe answered {reply.kind!r}"
            )
        return reply.meta

    def close(self) -> None:
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()


class _Member:
    """Router-side view of one replica: state machine + counters."""

    def __init__(self, handle: ReplicaHandle, index: int):
        self.handle = handle
        self.index = index
        self.state = ALIVE
        self.consecutive_failures = 0
        self.shards_served = 0
        self.shards_failed = 0
        self.probes_ok = 0
        self.probes_failed = 0
        self.transitions = 0
        self.last_probe_at: Optional[float] = None
        self.last_error: Optional[str] = None

    def snapshot(self) -> Dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "shards_served": self.shards_served,
            "shards_failed": self.shards_failed,
            "probes_ok": self.probes_ok,
            "probes_failed": self.probes_failed,
            "transitions": self.transitions,
            "last_probe_at": self.last_probe_at,
            "last_error": self.last_error,
        }


class ClusterRouter:
    """Shard batches across replicas; detect failures; retry around them.

    Parameters
    ----------
    replicas:
        ``(host, port)`` tuples (dialed as :class:`TcpReplica`) and/or
        ready-made :class:`ReplicaHandle` objects (the simulation suites
        pass fakes).
    policy:
        :class:`MembershipPolicy` knobs.
    clock:
        Heartbeat scheduling; inject a SimClock to drive membership in
        virtual time.
    fault_plan:
        Optional :class:`~repro.serve.faults.FaultPlan` whose network specs
        are evaluated inside each TCP replica's transport.
    start:
        Start the heartbeat ticker immediately (default).  Pass ``False``
        in tests that want to drive probes by hand via :meth:`probe_all`.
    """

    def __init__(
        self,
        replicas: Sequence[Union[Tuple[str, int], ReplicaHandle]],
        policy: Optional[MembershipPolicy] = None,
        clock: Clock = SYSTEM_CLOCK,
        fault_plan=None,
        start: bool = True,
    ):
        if not replicas:
            raise ValueError("a cluster needs at least one replica")
        self.policy = policy or MembershipPolicy()
        self.clock = clock
        self._lock = threading.Lock()
        self._members: List[_Member] = []
        for index, replica in enumerate(replicas):
            if isinstance(replica, ReplicaHandle):
                handle = replica
            else:
                handle = TcpReplica(
                    tuple(replica),
                    index=index,
                    request_timeout_s=self.policy.request_timeout_s,
                    connect_timeout_s=self.policy.connect_timeout_s,
                    fault_plan=fault_plan,
                )
            self._members.append(_Member(handle, index))
        # Router-wide counters (mirrored into /stats and /healthz).
        self.batches = 0
        self.shards = 0
        self.shard_retries = 0
        self.rerouted_shards = 0
        self.no_replica_failures = 0
        self.events: List[Dict] = []
        self._closed = False
        self._dispatch = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self._members)),
            thread_name_prefix="cluster-router",
        )
        self._ticker = Ticker(
            self.policy.probe_interval_s, self.probe_all, clock=clock,
            name="cluster-heartbeat",
        )
        if start:
            self._ticker.start()

    # -- membership ------------------------------------------------------------
    def _record_event(self, member: _Member, old: str, new: str, reason: str) -> None:
        """Append a membership transition (lock held by caller)."""
        member.transitions += 1
        self.events.append(
            {
                "at": self.clock.now(),
                "replica": member.handle.name,
                "from": old,
                "to": new,
                "reason": reason,
            }
        )
        del self.events[: -self.policy.history]

    def _note_success(self, member: _Member, probe: bool) -> None:
        with self._lock:
            member.consecutive_failures = 0
            if probe:
                member.probes_ok += 1
                member.last_probe_at = self.clock.now()
            if member.state != ALIVE:
                self._record_event(member, member.state, ALIVE, "probe succeeded")
                member.state = ALIVE

    def _note_failure(self, member: _Member, reason: str, probe: bool) -> None:
        with self._lock:
            member.consecutive_failures += 1
            member.last_error = reason
            if probe:
                member.probes_failed += 1
                member.last_probe_at = self.clock.now()
            else:
                member.shards_failed += 1
            failures = member.consecutive_failures
            if member.state == ALIVE and failures >= self.policy.suspect_after:
                self._record_event(member, ALIVE, SUSPECT, reason)
                member.state = SUSPECT
            if member.state == SUSPECT and failures >= self.policy.dead_after:
                self._record_event(member, SUSPECT, DEAD, reason)
                member.state = DEAD

    def probe_all(self) -> None:
        """One heartbeat round: probe every replica under the probe deadline.

        Dead replicas are probed too — that is how they rejoin.  Runs on
        the ticker (or directly from tests driving virtual time).
        """
        with self._lock:
            members = list(self._members)
        for member in members:
            try:
                member.handle.probe(timeout_s=self.policy.probe_timeout_s)
            except Exception as exc:
                self._note_failure(
                    member, f"probe failed: {type(exc).__name__}: {exc}", probe=True
                )
            else:
                self._note_success(member, probe=True)

    def _routable(self) -> List[_Member]:
        """Members eligible for new shards: alive ones, else suspects.

        Falling back to suspects keeps serving through a detector
        false-positive window; truly-dead suspects fail fast and are
        re-dispatched anyway.
        """
        with self._lock:
            alive = [m for m in self._members if m.state == ALIVE]
            if alive:
                return alive
            return [m for m in self._members if m.state == SUSPECT]

    # -- dispatch --------------------------------------------------------------
    def submit(
        self,
        model: str,
        version: Optional[int],
        batch: np.ndarray,
        stats=None,
        timeout_s: Optional[float] = None,
    ) -> Future:
        """Shard ``batch`` across live replicas; resolves to stacked outputs.

        The returned future fails with :class:`NoReplicas` (membership
        empty), :class:`~repro.serve.workers.WorkerCrashed` (a shard failed
        on every candidate — retriable upstream), or :class:`ReplicaError`
        (application error — not retriable).  ``stats`` is an optional
        per-model :class:`~repro.serve.stats.ModelStats` whose
        ``record_retry`` observes every shard re-dispatch.
        """
        batch = np.asarray(batch)
        future: Future = Future()
        with self._lock:
            if self._closed:
                future.set_exception(WorkerCrashed("cluster router is closed"))
                return future
            self.batches += 1
        self._dispatch.submit(self._run_batch, model, version, batch, stats, timeout_s, future)
        return future

    def _run_batch(self, model, version, batch, stats, timeout_s, future: Future) -> None:
        try:
            members = self._routable()
            if not members:
                with self._lock:
                    self.no_replica_failures += 1
                raise NoReplicas(
                    "no live replicas (all "
                    f"{len(self._members)} are dead; probes continue)"
                )
            rows = max(1, len(batch))
            shards = np.array_split(batch, min(len(members), rows))
            with self._lock:
                self.shards += len(shards)
            if len(shards) == 1:
                outputs = [self._run_shard(shards[0], members, 0, model, version, stats, timeout_s)]
            else:
                outputs = [None] * len(shards)
                errors: List[BaseException] = []

                def worker(slot: int) -> None:
                    try:
                        outputs[slot] = self._run_shard(
                            shards[slot], members, slot, model, version, stats, timeout_s
                        )
                    except BaseException as exc:
                        errors.append(exc)

                threads = [
                    threading.Thread(
                        target=worker, args=(slot,),
                        name=f"cluster-shard-{slot}", daemon=True,
                    )
                    for slot in range(len(shards))
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                if errors:
                    raise errors[0]
            result = outputs[0] if len(outputs) == 1 else np.concatenate(outputs, axis=0)
            future.set_result(result)
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)

    def _run_shard(
        self, shard, members: List[_Member], slot: int,
        model, version, stats, timeout_s,
    ) -> np.ndarray:
        """Run one shard, re-dispatching to survivors on transport failure."""
        attempts = 0
        tried: set = set()
        last_error: Optional[str] = None
        member = members[slot % len(members)]
        while True:
            tried.add(member.index)
            try:
                outputs = member.handle.predict(
                    model, version, shard,
                    timeout_s=self.policy.request_timeout_s if timeout_s is None else timeout_s,
                )
            except ReplicaError:
                # Application error: identical on every replica; surface it.
                with self._lock:
                    member.shards_failed += 1
                raise
            except Exception as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                self._note_failure(member, last_error, probe=False)
                attempts += 1
                if attempts > self.policy.max_shard_retries:
                    break
                with self._lock:
                    self.shard_retries += 1
                if stats is not None:
                    stats.record_retry()
                # Prefer a live replica we have not tried this shard yet;
                # fall back to any routable one (maybe the same, recovered).
                candidates = self._routable()
                fresh = [m for m in candidates if m.index not in tried]
                if fresh:
                    with self._lock:
                        self.rerouted_shards += 1
                    member = fresh[0]
                elif candidates:
                    member = candidates[0]
                else:
                    break
            else:
                self._note_success(member, probe=False)
                with self._lock:
                    member.shards_served += 1
                return outputs
        if not self._routable():
            with self._lock:
                self.no_replica_failures += 1
            raise NoReplicas(
                f"shard failed and no replicas remain (last error: {last_error})"
            )
        raise WorkerCrashed(
            f"shard failed on {len(tried)} replica(s) after {attempts} "
            f"attempt(s) (last error: {last_error})"
        )

    # -- introspection ---------------------------------------------------------
    def live_count(self) -> int:
        with self._lock:
            return sum(1 for m in self._members if m.state == ALIVE)

    def member_states(self) -> Dict[str, str]:
        with self._lock:
            return {m.handle.name: m.state for m in self._members}

    def snapshot(self) -> Dict:
        """Membership + counters for ``/stats`` and ``/healthz``."""
        with self._lock:
            replicas = {m.handle.name: m.snapshot() for m in self._members}
            return {
                "replicas": replicas,
                "live": sum(1 for m in self._members if m.state == ALIVE),
                "suspect": sum(1 for m in self._members if m.state == SUSPECT),
                "dead": sum(1 for m in self._members if m.state == DEAD),
                "counters": {
                    "batches": self.batches,
                    "shards": self.shards,
                    "shard_retries": self.shard_retries,
                    "rerouted_shards": self.rerouted_shards,
                    "no_replica_failures": self.no_replica_failures,
                },
                "heartbeat": {
                    "interval_s": self.policy.probe_interval_s,
                    "probe_timeout_s": self.policy.probe_timeout_s,
                    "ticks": self._ticker.ticks,
                },
                "events": list(self.events),
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            members = list(self._members)
        self._ticker.stop()
        self._dispatch.shutdown(wait=True)
        for member in members:
            try:
                member.handle.close()
            except Exception:
                pass


class RouterPool:
    """Adapter: one (model, version)'s worker-pool view of the router.

    The server's pipelines talk to worker pools (``submit(batch) ->
    Future``, ``num_workers``, ``resize``, ``close``); this wraps the
    shared :class:`ClusterRouter` in that shape so the batcher, dispatcher,
    admission controller, and stats all work over the cluster unchanged.
    ``close()`` does *not* close the router — it is shared across pipelines
    and owned by whoever built it.
    """

    def __init__(self, router: ClusterRouter, name: str, version: Optional[int],
                 stats=None, timeout_s: Optional[float] = None):
        self.router = router
        self.name = name
        self.version = version
        self.stats = stats
        self.timeout_s = timeout_s
        self.plan_info = None

    def submit(self, batch: np.ndarray) -> Future:
        return self.router.submit(
            self.name, self.version, batch,
            stats=self.stats, timeout_s=self.timeout_s,
        )

    @property
    def num_workers(self) -> int:
        return max(1, self.router.live_count())

    def resize(self, num_workers: int) -> int:
        """Remote membership is not resizable from here; report reality."""
        return self.num_workers

    def close(self, timeout: Optional[float] = None) -> None:
        pass
