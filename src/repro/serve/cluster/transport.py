"""Socket-based batch transport: the shared-memory ring framing, over TCP.

PR 4's :class:`~repro.serve.workers._ShmRing` moves batches between
processes as fixed-size slots whose geometry derives from the artifact
header.  This module is the same idea across the machine boundary: a
**frame** is one length-prefixed message — a small JSON header describing
the arrays it carries, then their raw bytes — and the per-frame payload
bound defaults to the very same slot geometry
(:func:`repro.serve.workers.artifact_slot_bytes`), so a batch that fits a
replica's ring also fits the wire frame that carries it there.

Wire format (all integers big-endian)::

    magic   b"RPRF"                      4 bytes
    version 1                            1 byte
    hlen    u32                          4 bytes
    header  JSON (utf-8), hlen bytes:
            {"kind": str, "meta": {...},
             "arrays": [[name, shape, dtype, nbytes], ...]}
    payload concatenated raw array bytes (C order, header order)

Robustness is explicit, not accidental:

* **Length prefixes are bounded** — a header over :data:`MAX_HEADER_BYTES`
  or a payload over the connection's ``max_frame_bytes`` raises
  :class:`FrameTooLarge` *before* any allocation, on both the send and the
  receive side (a malicious or corrupt prefix cannot make the receiver
  allocate gigabytes).
* **Truncation is loud** — EOF mid-frame raises :class:`TruncatedFrame`;
  a clean EOF at a frame boundary raises :class:`ConnectionClosed`.
* **Every operation carries a deadline** — send and recv each budget
  against a per-call (or per-connection default) timeout, raising
  :class:`DeadlineExpired`; a stalled peer cannot hang the router.

Deterministic chaos rides along: a :class:`~repro.serve.faults.NetFaultSession`
attached to a :class:`Connection` is consulted once per frame moved, so
``drop_conn`` / ``slow_link`` / ``partition`` faults replay identically
(see :mod:`repro.serve.faults`).
"""

from __future__ import annotations

import json
import socket
import struct
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.serve.workers import artifact_slot_bytes

MAGIC = b"RPRF"
WIRE_VERSION = 1
_PREFIX = struct.Struct(">4sBI")  # magic, version, header length

#: Hard bound on the JSON header — headers describe array *shapes*, not
#: data, so anything near this is a corrupt or hostile prefix.
MAX_HEADER_BYTES = 1 << 20

#: Default per-frame payload bound when no artifact geometry is supplied.
DEFAULT_MAX_FRAME_BYTES = 64 << 20


class TransportError(RuntimeError):
    """Base class: the frame could not be moved; the connection is suspect.

    After any transport error the stream position is unknown — callers
    must close the connection and (if they retry) dial a fresh one.
    """


class ConnectionClosed(TransportError):
    """The peer closed the connection at a frame boundary (clean EOF)."""


class TruncatedFrame(TransportError):
    """The stream ended (or broke) in the middle of a frame."""


class FrameTooLarge(TransportError):
    """A frame exceeds the header or payload bound (rejected pre-allocation)."""


class DeadlineExpired(TransportError):
    """The send/recv deadline lapsed before the frame finished moving."""


class Partitioned(TransportError):
    """An injected ``partition`` fault: the peer is unreachable."""


@dataclass
class Frame:
    """One decoded message: a kind tag, JSON-able metadata, named arrays."""

    kind: str
    meta: Dict = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)


def frame_bound_for_artifact(artifact_path: Union[str, Path]) -> int:
    """Per-frame payload bound from the artifact header's slot geometry.

    Identical sizing to the shared-memory rings (64-row batch of the larger
    of input/output, clamped to [1, 32] MiB) — one geometry, two transports.
    """
    return artifact_slot_bytes(artifact_path)


# ---------------------------------------------------------------------------
# Encoding / decoding
# ---------------------------------------------------------------------------
def encode_frame(
    kind: str,
    meta: Optional[Dict] = None,
    arrays: Optional[Dict[str, np.ndarray]] = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> List[bytes]:
    """Encode one frame as a list of byte chunks ready for ``sendall``.

    Raises :class:`FrameTooLarge` before building the payload when the
    arrays would exceed ``max_frame_bytes`` — the sender fails fast rather
    than shipping a frame the peer is bound to reject.
    """
    descs: List[List] = []
    chunks: List[bytes] = []
    payload_bytes = 0
    for name, array in (arrays or {}).items():
        array = np.asarray(array)
        if not array.flags["C_CONTIGUOUS"]:
            # Not ascontiguousarray unconditionally: it promotes 0-d arrays
            # to 1-d, which would silently change the decoded shape.
            array = np.ascontiguousarray(array)
        descs.append([name, list(array.shape), array.dtype.str, int(array.nbytes)])
        payload_bytes += int(array.nbytes)
        chunks.append(array.tobytes())
    if payload_bytes > max_frame_bytes:
        raise FrameTooLarge(
            f"frame payload is {payload_bytes} bytes, over the "
            f"{max_frame_bytes}-byte bound (batch exceeds the slot geometry)"
        )
    header = json.dumps({"kind": kind, "meta": meta or {}, "arrays": descs}).encode(
        "utf-8"
    )
    if len(header) > MAX_HEADER_BYTES:
        raise FrameTooLarge(
            f"frame header is {len(header)} bytes, over the "
            f"{MAX_HEADER_BYTES}-byte bound"
        )
    return [_PREFIX.pack(MAGIC, WIRE_VERSION, len(header)), header] + chunks


def _remaining(deadline: Optional[float]) -> Optional[float]:
    if deadline is None:
        return None
    left = deadline - time.monotonic()
    if left <= 0:
        raise DeadlineExpired("transport deadline expired")
    return left


def _recv_exact(sock: socket.socket, count: int, deadline: Optional[float]) -> bytearray:
    """Read exactly ``count`` bytes or raise (truncated / deadline)."""
    buffer = bytearray(count)
    view = memoryview(buffer)
    got = 0
    while got < count:
        try:
            sock.settimeout(_remaining(deadline))
            read = sock.recv_into(view[got:], count - got)
        except socket.timeout:
            raise DeadlineExpired(
                f"recv deadline expired after {got}/{count} bytes"
            ) from None
        except OSError as exc:
            raise TruncatedFrame(f"connection broke mid-frame: {exc}") from exc
        if read == 0:
            if got == 0:
                raise ConnectionClosed("peer closed the connection")
            raise TruncatedFrame(
                f"peer closed the connection mid-frame ({got}/{count} bytes)"
            )
        got += read
    return buffer


def send_frame(
    sock: socket.socket,
    kind: str,
    meta: Optional[Dict] = None,
    arrays: Optional[Dict[str, np.ndarray]] = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    deadline: Optional[float] = None,
) -> None:
    """Encode and send one frame under ``deadline`` (``time.monotonic``)."""
    chunks = encode_frame(kind, meta, arrays, max_frame_bytes=max_frame_bytes)
    try:
        for chunk in chunks:
            sock.settimeout(_remaining(deadline))
            sock.sendall(chunk)
    except socket.timeout:
        raise DeadlineExpired("send deadline expired mid-frame") from None
    except OSError as exc:
        raise TruncatedFrame(f"connection broke mid-send: {exc}") from exc


def recv_frame(
    sock: socket.socket,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    deadline: Optional[float] = None,
) -> Frame:
    """Receive one frame under ``deadline``; bounds-check before allocating."""
    prefix = _recv_exact(sock, _PREFIX.size, deadline)
    magic, version, header_len = _PREFIX.unpack(bytes(prefix))
    if magic != MAGIC:
        raise TransportError(
            f"bad frame magic {magic!r} (not a cluster transport stream)"
        )
    if version != WIRE_VERSION:
        raise TransportError(
            f"unsupported wire version {version} (this build speaks {WIRE_VERSION})"
        )
    if header_len > MAX_HEADER_BYTES:
        raise FrameTooLarge(
            f"frame header claims {header_len} bytes, over the "
            f"{MAX_HEADER_BYTES}-byte bound"
        )
    try:
        header = json.loads(bytes(_recv_exact(sock, header_len, deadline)))
        kind = header["kind"]
        meta = header.get("meta") or {}
        descs = header.get("arrays") or []
        payload_bytes = sum(int(desc[3]) for desc in descs)
    except (ValueError, KeyError, IndexError, TypeError) as exc:
        raise TransportError(f"unparseable frame header: {exc}") from exc
    if payload_bytes > max_frame_bytes:
        raise FrameTooLarge(
            f"frame payload claims {payload_bytes} bytes, over the "
            f"{max_frame_bytes}-byte bound"
        )
    arrays: Dict[str, np.ndarray] = {}
    for name, shape, dtype_str, nbytes in descs:
        raw = _recv_exact(sock, int(nbytes), deadline)
        try:
            arrays[str(name)] = np.frombuffer(raw, dtype=np.dtype(dtype_str)).reshape(
                tuple(shape)
            )
        except (ValueError, TypeError) as exc:
            raise TransportError(
                f"array {name!r} does not decode as {dtype_str}{tuple(shape)}: {exc}"
            ) from exc
    return Frame(kind=str(kind), meta=meta, arrays=arrays)


# ---------------------------------------------------------------------------
# Connections
# ---------------------------------------------------------------------------
class Connection:
    """One framed TCP connection with deadlines and optional injected faults.

    ``timeout_s`` is the per-operation default budget; every public method
    also accepts an explicit ``timeout_s`` (PR 6's request deadlines flow
    through here, so a request that has 80 ms left probes with 80 ms, not
    the connection default).  After any :class:`TransportError` the
    connection is closed and unusable — reconnect to retry.
    """

    def __init__(
        self,
        sock: socket.socket,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        timeout_s: Optional[float] = 30.0,
        faults=None,  # Optional[repro.serve.faults.NetFaultSession]
    ):
        self.sock = sock
        self.max_frame_bytes = max_frame_bytes
        self.timeout_s = timeout_s
        self.faults = faults
        self.closed = False
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not a TCP socket (socketpair tests)

    def _deadline(self, timeout_s: Optional[float]) -> Optional[float]:
        budget = self.timeout_s if timeout_s is None else timeout_s
        return None if budget is None else time.monotonic() + budget

    def _apply_faults(self) -> None:
        """Consult the per-peer fault session for the frame about to move."""
        if self.faults is None:
            return
        for spec in self.faults.on_frame():
            if spec.kind == "partition":
                raise Partitioned(
                    f"injected partition (frame {self.faults.frames})"
                )
            if spec.kind == "slow_link":
                time.sleep(spec.delay_ms / 1e3)
            elif spec.kind == "drop_conn":
                self.close()
                raise ConnectionClosed(
                    f"injected drop_conn (frame {self.faults.frames})"
                )

    def send(
        self,
        kind: str,
        meta: Optional[Dict] = None,
        arrays: Optional[Dict[str, np.ndarray]] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        self._check_open()
        self._apply_faults()
        try:
            send_frame(
                self.sock, kind, meta, arrays,
                max_frame_bytes=self.max_frame_bytes,
                deadline=self._deadline(timeout_s),
            )
        except TransportError:
            self.close()
            raise

    def recv(self, timeout_s: Optional[float] = None) -> Frame:
        self._check_open()
        self._apply_faults()
        try:
            return recv_frame(
                self.sock,
                max_frame_bytes=self.max_frame_bytes,
                deadline=self._deadline(timeout_s),
            )
        except TransportError:
            self.close()
            raise

    def request(
        self,
        kind: str,
        meta: Optional[Dict] = None,
        arrays: Optional[Dict[str, np.ndarray]] = None,
        timeout_s: Optional[float] = None,
    ) -> Frame:
        """Send one frame and receive the reply under a *single* budget."""
        self._check_open()
        budget = self.timeout_s if timeout_s is None else timeout_s
        deadline = None if budget is None else time.monotonic() + budget
        self._apply_faults()
        try:
            send_frame(
                self.sock, kind, meta, arrays,
                max_frame_bytes=self.max_frame_bytes, deadline=deadline,
            )
        except TransportError:
            self.close()
            raise
        self._apply_faults()
        try:
            return recv_frame(
                self.sock, max_frame_bytes=self.max_frame_bytes, deadline=deadline
            )
        except TransportError:
            self.close()
            raise

    def _check_open(self) -> None:
        if self.closed:
            raise ConnectionClosed("connection already closed")

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


def connect(
    address: Tuple[str, int],
    timeout_s: Optional[float] = 30.0,
    connect_timeout_s: float = 5.0,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    faults=None,
) -> Connection:
    """Dial ``(host, port)`` and wrap the socket in a :class:`Connection`.

    An injected ``partition``/``drop_conn`` fault also blocks the *dial*
    (a partitioned peer is unreachable for new connections too), so a
    router retrying against a partitioned replica keeps failing
    deterministically instead of slipping through on a fresh socket.
    """
    if faults is not None:
        for spec in faults.on_frame():
            if spec.kind == "partition":
                raise Partitioned(f"injected partition (frame {faults.frames})")
            if spec.kind == "slow_link":
                time.sleep(spec.delay_ms / 1e3)
            elif spec.kind == "drop_conn":
                raise ConnectionClosed(
                    f"injected drop_conn at connect (frame {faults.frames})"
                )
    try:
        sock = socket.create_connection(address, timeout=connect_timeout_s)
    except OSError as exc:
        raise TransportError(f"cannot connect to {address}: {exc}") from exc
    return Connection(
        sock, max_frame_bytes=max_frame_bytes, timeout_s=timeout_s, faults=faults
    )
