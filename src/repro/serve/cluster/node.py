"""Replica node daemon: a model repository + executors behind TCP.

One :class:`ReplicaNode` is a single replica of the serving tier: it owns a
local :class:`~repro.serve.repository.ModelRepository` (usually populated
by :mod:`repro.serve.cluster.sync` from the front end's repository),
answers ``predict`` frames with executor outputs, ``health`` probes with a
liveness snapshot, and the sync protocol's ``manifest`` / ``push`` /
``fetch`` frames with repository state.  The front-end
:class:`~repro.serve.cluster.router.ClusterRouter` treats a set of these
exactly like a worker pool — a replica node is a worker pool you can SIGKILL
from another machine.

Concurrency model: one daemon accept thread, one handler thread per
connection.  Executors are cached per ``(model, version)``; thread-safe
executors (planned shard pools) are shared across connections, anything
else is serialized behind a per-executor lock — the same degradation rule
as :class:`~repro.serve.workers.ThreadWorkerPool`.

Batch payloads are bounded by the artifact's slot geometry
(:func:`~repro.serve.cluster.transport.frame_bound_for_artifact`) — the
shared-memory rings' sizing rule — so a batch too large for a replica's
ring is rejected at the frame layer with a clean error frame instead of
OOMing the node.

Runnable as a daemon::

    python -m repro.serve.cluster.node --repo /path/to/repo --port 7070

which prints ``READY host:port pid=<pid>`` on stdout once the socket
listens (the cluster benchmark and the kill-one-replica smoke test parse
that line, then SIGKILL the process mid-load).
"""

from __future__ import annotations

import argparse
import hashlib
import os
import socket
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.export import ProgramFormatError, verify_program_digest
from repro.core.program import Executor, auto_backend
from repro.serve.cluster.transport import (
    Connection,
    ConnectionClosed,
    DEFAULT_MAX_FRAME_BYTES,
    Frame,
    TransportError,
    frame_bound_for_artifact,
)
from repro.serve.repository import ModelNotFound, ModelRepository


class _CachedExecutor:
    """One executor for a (model, version), shared or lock-serialized."""

    def __init__(self, executor: Executor, frame_bound: int):
        self.executor = executor
        self.frame_bound = frame_bound
        self.lock: Optional[threading.Lock] = (
            None if getattr(executor, "thread_safe", False) else threading.Lock()
        )

    def run(self, batch: np.ndarray) -> np.ndarray:
        if self.lock is not None:
            with self.lock:
                return self.executor.run(batch)
        return self.executor.run(batch)


class ReplicaNode:
    """Serve a repository's models over the cluster transport.

    Parameters
    ----------
    repository:
        A :class:`ModelRepository` or a root path one is built from (created
        empty if missing — a fresh replica syncs before serving).
    host / port:
        Bind address; port 0 picks a free port (see :attr:`address`).
    backend:
        Executor backend for every model (``plan`` / ``reference`` / ...).
    name:
        Replica name reported in health probes (default ``host:port``).
    """

    def __init__(
        self,
        repository: Union[ModelRepository, str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        backend: str = "plan",
        name: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        if not isinstance(repository, ModelRepository):
            repository = ModelRepository(Path(repository))
        self.repository = repository
        self.backend = backend
        self.max_frame_bytes = max_frame_bytes
        self._lock = threading.Lock()
        self._executors: Dict[Tuple[str, int], _CachedExecutor] = {}
        self._closed = False
        self._started_at = time.monotonic()
        # Counters reported by health probes (and asserted by chaos tests).
        self.served_batches = 0
        self.errors = 0
        self.syncs = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self.name = name or f"{self.address[0]}:{self.address[1]}"
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: set = set()

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "ReplicaNode":
        """Begin accepting connections on a daemon thread; returns self."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name=f"replica-{self.name}", daemon=True
            )
            self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant for ``python -m`` daemon use."""
        self.start()
        self._accept_thread.join()

    def close(self) -> None:
        """Stop serving: close the listener *and* every open connection.

        Dropping live connections is deliberate — from a peer's point of
        view a closed node is indistinguishable from a crashed one, which is
        exactly what the router's failure detection must handle (and what
        the in-process kill tests rely on).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connections = list(self._connections)
        try:
            self._listener.close()
        except OSError:
            pass
        for conn in connections:
            conn.close()

    # -- accept / dispatch -----------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            conn = Connection(sock, max_frame_bytes=self.max_frame_bytes)
            with self._lock:
                if self._closed:
                    conn.close()
                    continue
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                name=f"replica-{self.name}-conn", daemon=True,
            ).start()

    def _serve_connection(self, conn: Connection) -> None:
        try:
            while True:
                try:
                    frame = conn.recv(timeout_s=None)  # idle connections are fine
                except (ConnectionClosed, TransportError):
                    return
                handler = getattr(self, f"_handle_{frame.kind}", None)
                if handler is None:
                    conn.send(
                        "error",
                        {"error": f"unknown frame kind {frame.kind!r}",
                         "retriable": False},
                    )
                    continue
                try:
                    reply_kind, meta, arrays = handler(frame)
                except TransportError:
                    raise
                except Exception as exc:  # handler bug: answer, don't hang
                    self.errors += 1
                    reply_kind, meta, arrays = (
                        "error",
                        {"error": f"{type(exc).__name__}: {exc}", "retriable": False},
                        None,
                    )
                conn.send(reply_kind, meta, arrays)
        except TransportError:
            pass  # peer went away mid-reply; nothing to clean up
        finally:
            conn.close()
            with self._lock:
                self._connections.discard(conn)

    # -- executors -------------------------------------------------------------
    def _executor_for(self, model: str, version: Optional[int]) -> Tuple[_CachedExecutor, int]:
        loaded = self.repository.get(model, version)
        key = (loaded.name, loaded.version)
        with self._lock:
            cached = self._executors.get(key)
            if cached is not None:
                return cached, loaded.version
        backend = auto_backend(self.backend, loaded.program)
        executor = Executor(loaded.program, backend=backend)
        entry = _CachedExecutor(executor, frame_bound_for_artifact(loaded.path))
        with self._lock:
            cached = self._executors.setdefault(key, entry)
        return cached, loaded.version

    # -- protocol handlers -----------------------------------------------------
    def _handle_predict(self, frame: Frame):
        model = frame.meta.get("model")
        version = frame.meta.get("version")
        batch = frame.arrays.get("batch")
        if not model or batch is None:
            return (
                "error",
                {"error": "predict frame needs meta.model and arrays.batch",
                 "retriable": False},
                None,
            )
        try:
            entry, resolved = self._executor_for(model, version)
        except (ModelNotFound, ProgramFormatError) as exc:
            return (
                "error",
                {"error": f"{type(exc).__name__}: {exc}", "retriable": False},
                None,
            )
        if batch.nbytes > entry.frame_bound:
            return (
                "error",
                {"error": (
                    f"batch of {batch.nbytes} bytes exceeds the artifact's "
                    f"{entry.frame_bound}-byte slot geometry"
                ), "retriable": False},
                None,
            )
        outputs = entry.run(batch)
        self.served_batches += 1
        return (
            "result",
            {"model": model, "version": resolved},
            {"outputs": np.ascontiguousarray(outputs)},
        )

    def _handle_health(self, frame: Frame):
        return (
            "health_ok",
            {
                "name": self.name,
                "pid": os.getpid(),
                "uptime_s": time.monotonic() - self._started_at,
                "served_batches": self.served_batches,
                "errors": self.errors,
                "syncs": self.syncs,
                "models": self.repository.list_models(),
            },
            None,
        )

    def _handle_manifest(self, frame: Frame):
        from repro.serve.cluster.sync import repository_manifest

        return (
            "manifest_ok",
            {"models": repository_manifest(self.repository)},
            None,
        )

    def _handle_fetch(self, frame: Frame):
        model = frame.meta.get("model")
        version = frame.meta.get("version")
        try:
            path = self.repository.artifact_path(model, version)
            meta = self.repository.metadata(model, version)
        except (ModelNotFound, ValueError) as exc:
            return (
                "error",
                {"error": f"{type(exc).__name__}: {exc}", "retriable": False},
                None,
            )
        raw = path.read_bytes()
        return (
            "artifact",
            {
                "model": meta["name"],
                "version": meta["version"],
                "sha256": hashlib.sha256(raw).hexdigest(),
            },
            {"artifact": np.frombuffer(raw, dtype=np.uint8)},
        )

    def _handle_push(self, frame: Frame):
        """Install a pushed artifact: sha256-verify, then staged publish.

        Verification is two-layer: the *file* digest in the frame metadata
        guards the transfer, and :func:`verify_program_digest` re-checks the
        artifact's embedded content digest before the atomic publish — a
        frame that arrived intact but was corrupt at the source still fails
        here, loudly, instead of serving wrong predictions later.
        """
        model = frame.meta.get("model")
        version = frame.meta.get("version")
        claimed = frame.meta.get("sha256")
        payload = frame.arrays.get("artifact")
        if not model or version is None or payload is None or not claimed:
            return (
                "error",
                {"error": "push frame needs meta.{model,version,sha256} and "
                          "arrays.artifact", "retriable": False},
                None,
            )
        raw = payload.astype(np.uint8, copy=False).tobytes()
        actual = hashlib.sha256(raw).hexdigest()
        if actual != claimed:
            return (
                "error",
                {"error": (
                    f"pushed artifact for {model} v{version} failed sha256 "
                    f"verification (got {actual}, expected {claimed})"
                ), "retriable": True},  # a re-send may arrive intact
                None,
            )
        if int(version) in self.repository.versions(model):
            # Versions are immutable; an identical re-push is a no-op.
            return (
                "push_ok",
                {"model": model, "version": int(version), "installed": False},
                None,
            )
        tmp = tempfile.NamedTemporaryFile(
            suffix=".npz", prefix="sync-", delete=False
        )
        try:
            tmp.write(raw)
            tmp.close()
            verify_program_digest(tmp.name)  # embedded content digest
            self.repository.publish_artifact(tmp.name, model, int(version))
        except (ProgramFormatError, FileExistsError) as exc:
            return (
                "error",
                {"error": f"{type(exc).__name__}: {exc}", "retriable": False},
                None,
            )
        finally:
            try:
                os.unlink(tmp.name)
            except OSError:
                pass
        self.syncs += 1
        return (
            "push_ok",
            {"model": model, "version": int(version), "installed": True},
            None,
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run one serving replica node (see docs/CLUSTER.md)."
    )
    parser.add_argument("--repo", required=True, help="model repository root")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--backend", default="plan")
    parser.add_argument("--name", default=None)
    args = parser.parse_args(argv)
    node = ReplicaNode(
        args.repo, host=args.host, port=args.port,
        backend=args.backend, name=args.name,
    )
    print(
        f"READY {node.address[0]}:{node.address[1]} pid={os.getpid()}",
        flush=True,
    )
    try:
        node.serve_forever()
    except KeyboardInterrupt:
        node.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
