"""Dynamic micro-batching: coalesce single-sample requests into batches.

The serving hot path accepts one sample per request, but the executor's
throughput comes from batched kernels (one bit-encode amortized over the
batch, BLAS-shaped float ops).  :class:`DynamicBatcher` bridges the two with
the classic dynamic-batching policy:

* a request arriving at an empty queue opens a new batch window;
* the window closes — and the batch dispatches — as soon as **either** the
  batch reaches ``max_batch_size`` **or** ``max_delay_ms`` has elapsed since
  the window opened (so a lone request never waits longer than the latency
  budget);
* results scatter back to per-request futures in submission order.

The batcher is asynchronous end to end: ``submit`` returns a
:class:`concurrent.futures.Future` immediately, batches dispatch to the
worker pool's ``submit`` (itself returning a future), and completion
callbacks resolve the per-request futures — the collector thread never blocks
on inference, so batch k+1 forms while batch k executes.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.serve.stats import ModelStats


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the dynamic batching window.

    Attributes
    ----------
    max_batch_size:
        Hard cap on samples per dispatched batch (the executor batch size).
        1 disables coalescing — every request is its own batch.
    max_delay_ms:
        Longest a request may wait for co-batched company.  The first
        request of a window starts the clock; when it expires the batch
        flushes at whatever size it reached.  0 flushes immediately.
    max_queue:
        Backpressure bound: ``submit`` raises :class:`QueueFull` once this
        many requests are waiting in the queue, instead of buffering
        unboundedly under overload.  (Up to ``max_batch_size`` further
        requests may sit in the batch currently forming, so the total
        buffered is bounded by ``max_queue + max_batch_size``.)
    """

    max_batch_size: int = 16
    max_delay_ms: float = 2.0
    max_queue: int = 4096

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be >= 0, got {self.max_delay_ms}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")


class QueueFull(RuntimeError):
    """The batcher's request queue hit ``BatchPolicy.max_queue``."""


class BatcherClosed(RuntimeError):
    """submit() after close()."""


class DeadlineExceeded(RuntimeError):
    """The request's deadline expired before it could be served.

    Raised synchronously by ``submit`` when the deadline is already past,
    and set on the request future when the deadline expires while the
    request waits in the queue or the batching window — an expired request
    is dropped from the forming batch instead of occupying a slot.
    """


@dataclass
class _Pending:
    sample: np.ndarray
    future: Future
    arrival: float
    deadline: Optional[float] = None  # absolute time.perf_counter() timestamp

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


_SHUTDOWN = object()


class DynamicBatcher:
    """Coalesces submitted samples into batches dispatched to a worker pool.

    ``dispatch`` receives a stacked ``(B, *sample_shape)`` array and returns
    a future resolving to the ``(B, ...)`` output (a worker pool's
    ``submit``).  Per-request latency (arrival → scatter) and batch sizes are
    recorded into ``stats`` when given.
    """

    def __init__(
        self,
        dispatch: Callable[[np.ndarray], "Future"],
        policy: Optional[BatchPolicy] = None,
        stats: Optional[ModelStats] = None,
        name: str = "batcher",
    ):
        self.dispatch = dispatch
        self.policy = policy or BatchPolicy()
        self.stats = stats
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._abort_error: Optional[BaseException] = None
        # Orders submit() against close(): once the shutdown sentinel is in
        # the queue no further request can be enqueued behind it, so every
        # accepted future is guaranteed to flush.
        self._submit_lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._run, name=f"{name}-collector", daemon=True
        )
        self._thread.start()

    # -- client side -----------------------------------------------------------
    def submit(self, sample: np.ndarray, deadline: Optional[float] = None) -> Future:
        """Enqueue one sample; the future resolves to its output row.

        ``deadline`` is an absolute :func:`time.perf_counter` timestamp;
        once it passes, the request fails with :class:`DeadlineExceeded`
        (synchronously if already expired, otherwise when the collector
        would have batched it) instead of occupying a batch slot.
        """
        arrival = time.perf_counter()
        if deadline is not None and arrival >= deadline:
            if self.stats is not None:
                self.stats.record_deadline_expired()
            raise DeadlineExceeded(
                f"deadline expired {arrival - deadline:.3f}s before submission"
            )
        future: Future = Future()
        pending = _Pending(np.asarray(sample), future, arrival, deadline)
        with self._submit_lock:
            if self._closed:
                raise BatcherClosed("batcher is closed")
            # Depth check under the submit lock: concurrent submitters
            # cannot all pass at max_queue - 1, so the documented bound
            # holds exactly for the queue itself.
            depth = self._queue.qsize()
            if depth >= self.policy.max_queue:
                raise QueueFull(
                    f"request queue at capacity ({self.policy.max_queue}); "
                    "shed load or raise BatchPolicy.max_queue"
                )
            if self.stats is not None:
                self.stats.record_submit(queue_depth=depth + 1)
            self._queue.put(pending)
        return future

    def queue_depth(self) -> int:
        """Requests waiting to be batched (excludes dispatched batches)."""
        return self._queue.qsize()

    def close(
        self,
        timeout: Optional[float] = 10.0,
        drain: bool = True,
        error: Optional[BaseException] = None,
    ) -> None:
        """Stop accepting requests, settle what is queued, stop the thread.

        With ``drain=True`` (default) requests already submitted still
        dispatch; their futures resolve through the worker pool's
        completion callbacks as usual.  With ``drain=False`` every request
        still waiting in the queue (or the forming window) fails
        immediately with ``error`` (default :class:`BatcherClosed`) —
        deterministic shutdown under load, nothing left to teardown
        ordering.  Batches already dispatched are unaffected either way.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                # Read by the collector without a lock: set-once before the
                # sentinel is enqueued, so it is visible by the time the
                # collector could drain past it.
                self._abort_error = error or BatcherClosed("batcher is closed")
            self._queue.put(_SHUTDOWN)
        self._thread.join(timeout=timeout)

    # -- collector thread --------------------------------------------------------
    def _run(self) -> None:
        max_delay = self.policy.max_delay_ms / 1e3
        running = True
        while running:
            head = self._queue.get()
            if head is _SHUTDOWN:
                break
            pending: List[_Pending] = [head]
            deadline = head.arrival + max_delay
            while len(pending) < self.policy.max_batch_size:
                if self._abort_error is not None:
                    break  # aborting close: stop forming, fail fast below
                timeout = deadline - time.perf_counter()
                try:
                    # An already-expired deadline (the collector fell behind
                    # the offered load) still drains whatever is queued right
                    # now: under backlog the batches must grow toward
                    # max_batch_size, not collapse to size 1.
                    nxt = (
                        self._queue.get_nowait()
                        if timeout <= 0
                        else self._queue.get(timeout=timeout)
                    )
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    running = False
                    break
                pending.append(nxt)
            # Under an aborting close every flush fails its requests with
            # the abort error, so this loop drains the whole queue (the
            # sentinel is behind everything) without dispatching anything.
            self._flush(pending)

    def _flush(self, pending: List[_Pending]) -> None:
        abort = self._abort_error
        if abort is not None:
            self._scatter_error(pending, abort)
            return
        # Expired requests are dropped here — at batch formation — so they
        # fail fast and never occupy a slot a live request could have used.
        now = time.perf_counter()
        expired = [p for p in pending if p.expired(now)]
        if expired:
            if self.stats is not None:
                self.stats.record_deadline_expired(len(expired))
            self._scatter_error(
                expired,
                DeadlineExceeded("deadline expired while waiting in the batch queue"),
            )
            pending = [p for p in pending if not p.expired(now)]
            if not pending:
                return
        if self.stats is not None:
            self.stats.record_batch(len(pending))
            # Queue wait = arrival → dispatch: the early saturation signal
            # the autoscaler scales on (end-to-end latency lags behind it).
            for p in pending:
                self.stats.record_queue_wait(now - p.arrival)
        try:
            # stack() is inside the guard: mismatched sample shapes must fail
            # the batch's requests, not kill the collector thread.
            batch = np.stack([p.sample for p in pending])
            batch_future = self.dispatch(batch)
        except Exception as exc:  # bad samples, or dispatch refused (pool dead)
            self._scatter_error(pending, exc)
            return
        batch_future.add_done_callback(lambda f: self._scatter(pending, f))

    def _scatter(self, pending: List[_Pending], batch_future: Future) -> None:
        exc = batch_future.exception()
        if exc is not None:
            self._scatter_error(pending, exc)
            return
        outputs = batch_future.result()
        now = time.perf_counter()
        for i, p in enumerate(pending):
            if self.stats is not None:
                self.stats.record_done(now - p.arrival, ok=True)
            _resolve(p.future, result=outputs[i])

    def _scatter_error(self, pending: List[_Pending], exc: BaseException) -> None:
        now = time.perf_counter()
        for p in pending:
            if self.stats is not None:
                self.stats.record_done(now - p.arrival, ok=False)
            _resolve(p.future, error=exc)


def _resolve(future: Future, result=None, error: Optional[BaseException] = None) -> None:
    """Set a request future's outcome, tolerating client-side cancellation.

    A caller may cancel() its future while the request waits in the batching
    window; setting a cancelled future raises InvalidStateError, and letting
    that escape the scatter loop would strand every later request in the
    same batch.
    """
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass
