"""Stateful streaming inference: per-client sessions over the stream plan.

The core's :class:`~repro.core.stream_plan.StreamSession` exploits temporal
redundancy between consecutive frames of one client's stream — which makes
it *stateful*: the previous frame's intermediate buffers must survive
between requests, and frames of one stream must always reach the session
holding them.  This module is the serve-side of that contract:

* :class:`StreamManager` — one per served (name, version) pipeline.  Owns
  the compiled :class:`~repro.core.stream_plan.StreamPlan` (shared,
  immutable) and a table of named sessions (per-client state).  Session
  affinity is structural: a session id maps to exactly one session object,
  and the manager serializes execution so concurrent requests can never
  interleave half-updated state (kernel-plan crop clones share scratch
  buffers, so cross-session execution is serialized too).
* TTL eviction — sessions idle past ``session_ttl_s`` are dropped by a
  sweep ticker driven by the server's injectable clock (the deterministic
  test harness advances a virtual clock; production uses wall time), and
  lazily whenever the table is touched.  ``max_sessions`` bounds resident
  state by evicting the least-recently-used session.
* Fault semantics — an exception inside a session's incremental step resets
  the session (dropping all persistent state) and retries the frame as a
  full recompute, exactly once.  A fault can therefore cost latency, never
  a wrong answer; a second failure evicts the session and surfaces as a
  retriable :class:`~repro.serve.workers.WorkerError`.

Capability gating lives in :meth:`InferenceServer.stream_request`: the
artifact's metadata must carry the schema-v3 ``stream`` block and declare
``supported`` — anything else is rejected with
:class:`~repro.core.stream_plan.StreamUnsupported` *before* any state is
built, which the HTTP front end maps to a 400 with reason
``stream_unsupported`` (see docs/SERVING.md).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.core.program import NetworkProgram
from repro.core.stream_plan import StreamUnsupported, compile_stream_plan
from repro.serve.clock import SYSTEM_CLOCK, Clock, Ticker
from repro.serve.workers import WorkerError

__all__ = ["StreamPolicy", "StreamManager", "UnknownSession"]


class UnknownSession(KeyError):
    """The request named a session id this server does not hold.

    Expected after TTL eviction or a capacity eviction: the client re-opens
    by sending its next frame without a session id (the first frame of a
    fresh session is a full recompute, so recovery is always correct).
    """

    def __str__(self) -> str:  # KeyError quotes its payload; keep it readable
        return self.args[0] if self.args else ""


@dataclass
class StreamPolicy:
    """Streaming behaviour of a server (shared by every served model).

    ``tile``/``crossover``/``verify`` feed :func:`compile_stream_plan`
    (``crossover=None`` measures it at compile time); ``threshold`` is the
    default per-session diff threshold (0 ⇒ bit-exact); ``session_ttl_s``
    and ``max_sessions`` bound resident per-client state;
    ``sweep_interval_s`` is the eviction ticker period.
    """

    session_ttl_s: float = 300.0
    max_sessions: int = 64
    sweep_interval_s: float = 30.0
    tile: int = 8
    crossover: Optional[float] = None
    threshold: float = 0.0
    verify: bool = True

    def __post_init__(self) -> None:
        if self.session_ttl_s <= 0:
            raise ValueError(f"session_ttl_s must be > 0, got {self.session_ttl_s}")
        if self.max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {self.max_sessions}")
        if self.sweep_interval_s <= 0:
            raise ValueError(
                f"sweep_interval_s must be > 0, got {self.sweep_interval_s}"
            )


class StreamManager:
    """Session table + shared stream plan of one served pipeline."""

    def __init__(
        self,
        program: NetworkProgram,
        policy: Optional[StreamPolicy] = None,
        clock: Clock = SYSTEM_CLOCK,
        name: str = "model",
    ):
        self.policy = policy or StreamPolicy()
        self.clock = clock
        self.name = name
        self.plan = compile_stream_plan(
            program,
            tile=self.policy.tile,
            crossover=self.policy.crossover,
            verify=self.policy.verify,
        )
        self._sessions: Dict[str, Any] = {}  # sid -> StreamSession
        self._lock = threading.Lock()  # the session table
        self._exec_lock = threading.Lock()  # frame execution (affinity)
        self._ids = itertools.count(1)
        self._closed = False
        # Lifetime counters (evictions happen silently between requests, so
        # they must be visible in /stats rather than in any response).
        self.opened = 0
        self.expired = 0  # TTL sweeps
        self.evicted = 0  # capacity (LRU) evictions
        self.faults = 0  # session resets on execution failure
        self._ticker = Ticker(
            self.policy.sweep_interval_s, self.sweep, clock=clock,
            name=f"stream-sweep-{name}",
        ).start()

    # -- session lifecycle -------------------------------------------------------
    def open(self, threshold: Optional[float] = None) -> str:
        """Create a session; returns its id (the client's affinity token)."""
        with self._lock:
            if self._closed:
                raise WorkerError("stream manager is closed")
            sid = f"{self.name}-s{next(self._ids)}"
            session = self.plan.session(
                threshold=self.policy.threshold if threshold is None else threshold
            )
            session.last_used = self.clock.now()
            self._sessions[sid] = session
            self.opened += 1
            self._evict_over_capacity_locked()
        return sid

    def close_session(self, sid: str) -> bool:
        """Drop a session explicitly; ``False`` if it was not held."""
        with self._lock:
            return self._sessions.pop(sid, None) is not None

    def sweep(self) -> int:
        """Evict sessions idle past the TTL; returns how many."""
        horizon = self.clock.now() - self.policy.session_ttl_s
        with self._lock:
            stale = [
                sid for sid, session in self._sessions.items()
                if session.last_used <= horizon
            ]
            for sid in stale:
                del self._sessions[sid]
            self.expired += len(stale)
        return len(stale)

    def _evict_over_capacity_locked(self) -> None:
        while len(self._sessions) > self.policy.max_sessions:
            lru = min(self._sessions, key=lambda s: self._sessions[s].last_used)
            del self._sessions[lru]
            self.evicted += 1

    def _get(self, sid: str):
        with self._lock:
            session = self._sessions.get(sid)
        if session is None:
            raise UnknownSession(
                f"unknown stream session {sid!r} (expired, evicted, or never "
                f"opened here) — re-open by streaming without a session id"
            )
        return session

    # -- the per-frame entry point -----------------------------------------------
    def process(self, sid: str, frame: np.ndarray) -> Dict[str, Any]:
        """Run one frame through the session; returns the result payload.

        Fault path: an exception mid-frame leaves the session's buffers
        half-updated, so the session is reset (all persistent state dropped)
        and the frame retried as a full recompute — a delayed answer, never
        a wrong one.  A failure of the retry itself evicts the session and
        raises :class:`WorkerError` (HTTP 503, retriable).
        """
        session = self._get(sid)
        with self._exec_lock:
            session.last_used = self.clock.now()
            try:
                outputs, info = session.process(frame)
            except ValueError:
                raise  # malformed frame: the caller's error, state untouched
            except Exception as exc:
                self.faults += 1
                session.reset()
                try:
                    outputs, info = session.process(frame)
                except Exception:
                    self.close_session(sid)
                    raise WorkerError(
                        f"stream session {sid!r} failed even after a reset "
                        f"({type(exc).__name__}: {exc})"
                    ) from exc
                info["recovered"] = True
        return {"session": sid, "outputs": outputs, **info}

    # -- introspection / lifecycle -----------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Aggregate streaming stats (the ``streaming`` key of /stats)."""
        with self._lock:
            sessions = dict(self._sessions)
        frames = full = incremental = cached = state_bytes = 0
        for session in sessions.values():
            stats = session.stats()
            frames += stats["frames"]
            full += stats["full"]
            incremental += stats["incremental"]
            cached += stats["cached"]
            state_bytes += stats["state_bytes"]
        return {
            "sessions": len(sessions),
            "opened": self.opened,
            "expired": self.expired,
            "evicted": self.evicted,
            "faults": self.faults,
            "frames": frames,
            "full": full,
            "incremental": incremental,
            "cached": cached,
            "state_bytes": state_bytes,
            "crossover": self.plan.crossover,
            "tile": self.plan.tile,
        }

    def close(self) -> None:
        self._ticker.stop()
        with self._lock:
            self._closed = True
            self._sessions.clear()
