"""Injectable time for the serving control plane.

Every control-plane component (autoscaler, rollout controller, circuit
breaker, retry timers) reads time and schedules callbacks through a
:class:`Clock` instead of touching :mod:`time`/:mod:`threading` directly.
Production uses :data:`SYSTEM_CLOCK` (monotonic time + daemon
``threading.Timer``); the deterministic test harness substitutes a virtual
clock (``tests/serve/simclock.py``) whose ``advance()`` runs due callbacks
on the calling thread — the same control-plane code, zero wall-clock sleeps,
identical decisions on every run.

The contract is deliberately tiny:

``now()``
    Monotonic seconds.  Only differences are meaningful.
``timer(delay_s, fn)``
    Schedule ``fn()`` after ``delay_s``; returns a :class:`TimerHandle`
    whose ``cancel()`` is idempotent and safe after firing.
``sleep(seconds)``
    Block the calling thread.  Control-plane code never calls it (tickers
    are timer-driven); it exists so *test* clocks can forbid it outright.

:class:`Ticker` builds the one recurring shape on top: a fixed-interval
callback that re-arms itself after each run and never overlaps executions
(the next timer is armed only when the previous callback returns).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional


class TimerHandle:
    """Cancellation handle for a scheduled callback."""

    def __init__(self, cancel: Callable[[], None]):
        self._cancel = cancel

    def cancel(self) -> None:
        self._cancel()


class Clock:
    """Wall-clock implementation of the clock contract (the default)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)

    def timer(self, delay_s: float, fn: Callable[[], None]) -> TimerHandle:
        if delay_s <= 0:
            fn()
            return TimerHandle(lambda: None)
        timer = threading.Timer(delay_s, fn)
        timer.daemon = True
        timer.start()
        return TimerHandle(timer.cancel)


SYSTEM_CLOCK = Clock()


class Ticker:
    """A fixed-interval callback driven entirely through a :class:`Clock`.

    ``fn`` runs once per ``interval_s``; the next firing is armed only after
    ``fn`` returns, so a slow tick delays (never overlaps) the next one.  An
    exception in ``fn`` is swallowed after re-arming — a control loop must
    keep ticking through a bad sample, not die on it.  ``stop()`` cancels
    the pending timer and prevents any further re-arm; it is safe to call
    from inside ``fn``.
    """

    def __init__(
        self,
        interval_s: float,
        fn: Callable[[], None],
        clock: Clock = SYSTEM_CLOCK,
        name: str = "ticker",
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = interval_s
        self.fn = fn
        self.clock = clock
        self.name = name
        self._lock = threading.Lock()
        self._handle: Optional[TimerHandle] = None
        self._stopped = False
        self.ticks = 0

    def start(self) -> "Ticker":
        with self._lock:
            if self._stopped or self._handle is not None:
                return self
            self._handle = self.clock.timer(self.interval_s, self._fire)
        return self

    def _fire(self) -> None:
        with self._lock:
            if self._stopped:
                return
            self._handle = None
            self.ticks += 1
        try:
            self.fn()
        except Exception:
            pass  # the loop outlives one bad tick; state shows up in snapshots
        finally:
            with self._lock:
                if not self._stopped and self._handle is None:
                    self._handle = self.clock.timer(self.interval_s, self._fire)

    def stop(self) -> None:
        with self._lock:
            self._stopped = True
            handle, self._handle = self._handle, None
        if handle is not None:
            handle.cancel()
