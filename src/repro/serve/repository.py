"""On-disk model repository for compiled :class:`NetworkProgram` artifacts.

Layout (one directory per model, one numeric subdirectory per version)::

    <root>/
      resnet14/
        1/ program.npz  metadata.json
        2/ program.npz  metadata.json     <- latest
      tinyconv/
        1/ program.npz  metadata.json

``program.npz`` is exactly what :func:`repro.core.export.save_program`
writes; ``metadata.json`` mirrors the artifact's embedded
:meth:`~repro.core.program.NetworkProgram.metadata` summary so listings never
open the archive.  Publishing a new version is atomic (written to a temp
directory, then renamed), and *hot-swap* falls out of the layout: resolving a
model without an explicit version always picks the highest version directory,
so a publish followed by the next request switches traffic with no restart.

Loaded programs are cached with LRU eviction (``capacity`` programs).
Eviction only drops the cache entry — a :class:`LoadedModel` held by an
in-flight request (or by a server worker pool) keeps its program alive until
released, so eviction can never corrupt running inference.
"""

from __future__ import annotations

import itertools
import json
import os
import shutil
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.export import (
    PROGRAM_SCHEMA_VERSION,
    load_program,
    read_program_metadata,
    save_program,
)
from repro.core.program import NetworkProgram

ARTIFACT_NAME = "program.npz"
METADATA_NAME = "metadata.json"


class ModelNotFound(KeyError):
    """No such model name (or version) in the repository."""


@dataclass
class LoadedModel:
    """A resolved (name, version) with its deserialized program."""

    name: str
    version: int
    path: Path
    program: NetworkProgram
    metadata: Dict = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, int]:
        return (self.name, self.version)


class ModelRepository:
    """Loads, caches and publishes compiled program artifacts by name/version.

    Parameters
    ----------
    root:
        Repository directory (created on first publish if missing).
    capacity:
        Maximum number of deserialized programs kept in the LRU cache.
        ``get`` on a cached (name, version) is a dict lookup; a miss pays one
        :func:`load_program` and may evict the least-recently-used entry.
    """

    def __init__(self, root: Union[str, Path], capacity: int = 4):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.root = Path(root)
        self.capacity = capacity
        self._lock = threading.Lock()
        self._cache: "OrderedDict[Tuple[str, int], LoadedModel]" = OrderedDict()
        self._staging_ids = itertools.count()
        self.loads = 0  # artifact deserializations (cache misses)
        self.evictions = 0

    # -- directory layout ------------------------------------------------------
    def _model_dir(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid model name {name!r}")
        return self.root / name

    def versions(self, name: str) -> List[int]:
        """Published versions of ``name``, ascending (empty when unknown)."""
        model_dir = self._model_dir(name)
        if not model_dir.is_dir():
            return []
        found = []
        for entry in model_dir.iterdir():
            if entry.is_dir() and entry.name.isdigit() and (entry / ARTIFACT_NAME).exists():
                found.append(int(entry.name))
        return sorted(found)

    def list_models(self) -> Dict[str, List[int]]:
        """Every model name in the repository with its version list."""
        if not self.root.is_dir():
            return {}
        models = {}
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir():
                versions = self.versions(entry.name)
                if versions:
                    models[entry.name] = versions
        return models

    def resolve(self, name: str, version: Optional[int] = None) -> Tuple[str, int, Path]:
        """Resolve (name, version) to the artifact path; latest when ``None``."""
        versions = self.versions(name)
        if not versions:
            raise ModelNotFound(f"model '{name}' has no published versions under {self.root}")
        if version is None:
            version = versions[-1]
        elif version not in versions:
            raise ModelNotFound(
                f"model '{name}' has no version {version} (published: {versions})"
            )
        return name, version, self._model_dir(name) / str(version) / ARTIFACT_NAME

    def artifact_path(self, name: str, version: Optional[int] = None) -> Path:
        """Path of the ``.npz`` artifact for (name, version-or-latest)."""
        return self.resolve(name, version)[2]

    def metadata(self, name: str, version: Optional[int] = None) -> Dict:
        """The cheap metadata summary of a published model version.

        Always carries ``name``/``version``/``schema``/``file_bytes`` on top
        of the program summary, whether it comes from the publish-time
        sidecar or (for hand-placed version directories) from the artifact
        header, so clients see one consistent key set.
        """
        name, version, artifact = self.resolve(name, version)
        sidecar = artifact.parent / METADATA_NAME
        if sidecar.exists():
            meta = json.loads(sidecar.read_text())
        else:
            meta = read_program_metadata(artifact)
        meta.setdefault("name", name)
        meta.setdefault("version", version)
        meta.setdefault("schema", PROGRAM_SCHEMA_VERSION)
        meta.setdefault("file_bytes", artifact.stat().st_size)
        return meta

    # -- publishing ------------------------------------------------------------
    def _stage_and_publish(
        self, name: str, version: Optional[int], metadata: Dict, write_artifact
    ) -> int:
        """Shared staging protocol of both publish paths.

        ``version`` defaults to ``latest + 1`` (1 for a new model).
        ``write_artifact(path)`` produces the archive inside a temp staging
        directory, which is then atomically renamed into place — a concurrent
        reader sees either the old latest or the complete new version, never
        a half-written one.  The (slow) artifact serialization happens
        *outside* the repository lock, so publishing a large model never
        stalls concurrent cache lookups on the serving hot path; only the
        version pick, the small metadata write, and the rename are locked.
        """
        model_dir = self._model_dir(name)
        model_dir.mkdir(parents=True, exist_ok=True)
        staging = model_dir / f".staging-{os.getpid()}-{next(self._staging_ids)}"
        staging.mkdir(parents=True, exist_ok=True)
        try:
            write_artifact(staging / ARTIFACT_NAME)  # slow; unlocked
            with self._lock:
                existing = self.versions(name)
                if version is None:
                    version = (existing[-1] + 1) if existing else 1
                elif version in existing:
                    raise FileExistsError(
                        f"model '{name}' version {version} already published; "
                        "versions are immutable (publish a new one to hot-swap)"
                    )
                meta = dict(metadata)
                meta["name"] = name
                meta["version"] = version
                meta.setdefault("schema", PROGRAM_SCHEMA_VERSION)
                meta["file_bytes"] = (staging / ARTIFACT_NAME).stat().st_size
                if "sha256" not in meta:
                    # Header-only read: the sidecar mirrors the artifact's
                    # content digest so replica sync can diff repositories
                    # without opening archives.
                    meta["sha256"] = read_program_metadata(
                        staging / ARTIFACT_NAME
                    ).get("sha256")
                (staging / METADATA_NAME).write_text(json.dumps(meta, indent=2) + "\n")
                staging.rename(model_dir / str(version))
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return version

    def publish(
        self,
        program: NetworkProgram,
        name: str,
        version: Optional[int] = None,
    ) -> int:
        """Serialize ``program`` as a new version of ``name`` and return it."""
        return self._stage_and_publish(
            name, version, program.metadata(), lambda path: save_program(program, path)
        )

    def publish_artifact(
        self, artifact: Union[str, Path], name: str, version: Optional[int] = None
    ) -> int:
        """Publish an existing ``save_program`` artifact file (copied in).

        Validates the artifact's schema first, so a bad file fails loudly at
        publish time instead of at first request.
        """
        artifact = Path(artifact)
        self._model_dir(name)  # validate the name before touching the artifact
        meta = read_program_metadata(artifact)  # raises ProgramFormatError if bad
        return self._stage_and_publish(
            name, version, meta, lambda path: shutil.copyfile(artifact, path)
        )

    # -- loading with LRU eviction ----------------------------------------------
    def get(self, name: str, version: Optional[int] = None) -> LoadedModel:
        """The deserialized program for (name, version-or-latest), LRU-cached."""
        name, version, artifact = self.resolve(name, version)
        key = (name, version)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                return cached
        # Deserialize outside the lock: loads can be slow and concurrent
        # misses for different models should not serialize each other.
        program = load_program(artifact)
        loaded = LoadedModel(
            name=name,
            version=version,
            path=artifact,
            program=program,
            metadata=self.metadata(name, version),
        )
        with self._lock:
            self._cache[key] = loaded
            self._cache.move_to_end(key)
            self.loads += 1
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)
                self.evictions += 1
        return loaded

    @property
    def cached(self) -> List[Tuple[str, int]]:
        """Cache keys, least-recently-used first."""
        with self._lock:
            return list(self._cache)

    def evict(self, name: Optional[str] = None, version: Optional[int] = None) -> int:
        """Drop cache entries (all, by name, or one version); returns count.

        Only the cache reference is dropped — callers holding a
        :class:`LoadedModel` keep a working program.
        """
        with self._lock:
            doomed = [
                key
                for key in self._cache
                if (name is None or key[0] == name)
                and (version is None or key[1] == version)
            ]
            for key in doomed:
                del self._cache[key]
            self.evictions += len(doomed)
        return len(doomed)
