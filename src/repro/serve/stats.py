"""Serving metrics: per-request latency, batching behaviour, queue depth.

Every served model owns one :class:`ModelStats`.  The dynamic batcher and the
server feed it from their worker/callback threads; :meth:`ModelStats.snapshot`
renders a JSON-able summary (the HTTP front end's ``/stats`` endpoint and the
throughput benchmark both consume it).  All updates take a single lock, and a
latency reservoir keeps only the most recent observations, so the cost per
request is constant and the memory bounded regardless of uptime.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Callable, Dict, Optional

import numpy as np


class LatencyWindow:
    """Sliding window of the last ``capacity`` latency observations (seconds).

    Percentiles are computed over the window on demand; recording is O(1).
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._values = deque(maxlen=capacity)

    def record(self, seconds: float, count: int = 1) -> None:
        """Record an observation (``count`` > 1 weights it as that many
        requests, e.g. one timed bulk batch)."""
        if count == 1:
            self._values.append(float(seconds))
        else:
            self._values.extend(itertools.repeat(float(seconds), count))

    def __len__(self) -> int:
        return len(self._values)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the window, 0.0 when empty."""
        if not self._values:
            return 0.0
        return float(np.percentile(np.fromiter(self._values, dtype=np.float64), q))

    def summary_ms(self) -> Dict[str, float]:
        """Mean/p50/p99/max of the window, in milliseconds."""
        if not self._values:
            return {"mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
        values = np.fromiter(self._values, dtype=np.float64) * 1e3
        return {
            "mean_ms": round(float(values.mean()), 3),
            "p50_ms": round(float(np.percentile(values, 50)), 3),
            "p99_ms": round(float(np.percentile(values, 99)), 3),
            "max_ms": round(float(values.max()), 3),
        }


class ModelStats:
    """Thread-safe request/batch/latency counters for one served model.

    ``queue_depth_fn`` is an optional gauge (the batcher's live queue size)
    sampled at snapshot time; the high-water mark is tracked on every submit.
    """

    def __init__(self, window: int = 4096,
                 queue_depth_fn: Optional[Callable[[], int]] = None):
        self._lock = threading.Lock()
        self._latency = LatencyWindow(window)
        self.queue_depth_fn = queue_depth_fn
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.batches = 0
        self.batched_samples = 0
        self.max_batch = 0
        self.max_queue_depth = 0
        self._first_submit: Optional[float] = None
        self._last_done: Optional[float] = None

    # -- recording -----------------------------------------------------------
    def record_submit(self, queue_depth: int = 0, count: int = 1) -> None:
        with self._lock:
            self.submitted += count
            self.max_queue_depth = max(self.max_queue_depth, queue_depth)
            if self._first_submit is None:
                self._first_submit = time.perf_counter()

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_samples += size
            self.max_batch = max(self.max_batch, size)

    def record_done(self, latency_seconds: float, ok: bool = True, count: int = 1) -> None:
        """Record ``count`` requests finishing with the same latency (bulk
        batches are timed once but weighted per row)."""
        with self._lock:
            if ok:
                self.completed += count
                self._latency.record(latency_seconds, count)
            else:
                self.failed += count
            self._last_done = time.perf_counter()

    # -- reporting -----------------------------------------------------------
    def snapshot(self) -> Dict:
        """JSON-able summary of everything recorded so far."""
        with self._lock:
            elapsed = (
                self._last_done - self._first_submit
                if self._first_submit is not None and self._last_done is not None
                else 0.0
            )
            snap = {
                "requests": {
                    "submitted": self.submitted,
                    "completed": self.completed,
                    "failed": self.failed,
                    "in_flight": self.submitted - self.completed - self.failed,
                },
                "batches": {
                    "count": self.batches,
                    "mean_size": round(self.batched_samples / self.batches, 2)
                    if self.batches
                    else 0.0,
                    "max_size": self.max_batch,
                },
                "queue": {
                    "depth": int(self.queue_depth_fn()) if self.queue_depth_fn else 0,
                    "max_depth": self.max_queue_depth,
                },
                "latency": self._latency.summary_ms(),
                "throughput_rps": round(self.completed / elapsed, 2) if elapsed > 0 else 0.0,
            }
        return snap
