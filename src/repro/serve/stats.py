"""Serving metrics: per-request latency, batching behaviour, queue depth.

Every served model owns one :class:`ModelStats`.  The dynamic batcher and the
server feed it from their worker/callback threads; :meth:`ModelStats.snapshot`
renders a JSON-able summary (the HTTP front end's ``/stats`` endpoint and the
throughput benchmark both consume it).  All updates take a single lock, and a
latency reservoir keeps only the most recent observations, so the cost per
request is constant and the memory bounded regardless of uptime.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Callable, Dict, Optional

import numpy as np


class LatencyWindow:
    """Sliding window of the last ``capacity`` latency observations (seconds).

    Percentiles are computed over the window on demand; recording is O(1).
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._values = deque(maxlen=capacity)

    def record(self, seconds: float, count: int = 1) -> None:
        """Record an observation (``count`` > 1 weights it as that many
        requests, e.g. one timed bulk batch)."""
        if count == 1:
            self._values.append(float(seconds))
        else:
            self._values.extend(itertools.repeat(float(seconds), count))

    def __len__(self) -> int:
        return len(self._values)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the window, 0.0 when empty."""
        if not self._values:
            return 0.0
        return float(np.percentile(np.fromiter(self._values, dtype=np.float64), q))

    def summary_ms(self) -> Dict[str, float]:
        """Mean/p50/p99/max of the window, in milliseconds."""
        if not self._values:
            return {"mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
        values = np.fromiter(self._values, dtype=np.float64) * 1e3
        return {
            "mean_ms": round(float(values.mean()), 3),
            "p50_ms": round(float(np.percentile(values, 50)), 3),
            "p99_ms": round(float(np.percentile(values, 99)), 3),
            "max_ms": round(float(values.max()), 3),
        }


class ModelStats:
    """Thread-safe request/batch/latency counters for one served model.

    ``queue_depth_fn`` is an optional gauge (the batcher's live queue size)
    sampled at snapshot time; the high-water mark is tracked on every submit.
    """

    def __init__(self, window: int = 4096,
                 queue_depth_fn: Optional[Callable[[], int]] = None,
                 breaker_fn: Optional[Callable[[], Dict]] = None):
        self._lock = threading.Lock()
        self._latency = LatencyWindow(window)
        # Queue wait (arrival → batch dispatch): the autoscaler's SLO
        # signal — it rises as soon as the pool falls behind offered load,
        # well before end-to-end latency fully reflects the backlog.
        self._queue_wait = LatencyWindow(window)
        self.queue_depth_fn = queue_depth_fn
        # Gauge for the pipeline's current worker count (the pool's
        # num_workers), sampled at snapshot time; None = no pool attached.
        self.workers_fn: Optional[Callable[[], int]] = None
        # Gauge for the pipeline's circuit-breaker state (CircuitBreaker
        # .snapshot), sampled at snapshot time like the queue depth.
        self.breaker_fn = breaker_fn
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.batches = 0
        self.batched_samples = 0
        self.max_batch = 0
        self.max_queue_depth = 0
        # The queue bound requests are shed/refused at (admission policy's
        # max_queue_depth, else the batch policy's max_queue); the pipeline
        # sets it so readiness can reason about saturation.
        self.queue_capacity: Optional[int] = None
        # Resilience counters: load shedding, deadline expiry, crash
        # retries, and breaker state transitions.
        self.admitted = 0
        self.shed: Dict[str, int] = {}
        self.deadline_expired = 0
        self.retries = 0
        self.breaker_transitions: Dict[str, int] = {}
        self._first_submit: Optional[float] = None
        self._last_done: Optional[float] = None

    # -- recording -----------------------------------------------------------
    def record_submit(self, queue_depth: int = 0, count: int = 1) -> None:
        with self._lock:
            self.submitted += count
            self.max_queue_depth = max(self.max_queue_depth, queue_depth)
            if self._first_submit is None:
                self._first_submit = time.perf_counter()

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_samples += size
            self.max_batch = max(self.max_batch, size)

    def record_done(self, latency_seconds: float, ok: bool = True, count: int = 1) -> None:
        """Record ``count`` requests finishing with the same latency (bulk
        batches are timed once but weighted per row)."""
        with self._lock:
            if ok:
                self.completed += count
                self._latency.record(latency_seconds, count)
            else:
                self.failed += count
            self._last_done = time.perf_counter()

    def record_queue_wait(self, seconds: float, count: int = 1) -> None:
        """Time a request spent waiting between arrival and batch dispatch."""
        with self._lock:
            self._queue_wait.record(seconds, count)

    def queue_wait_p95_ms(self) -> float:
        """95th-percentile queue wait (ms) over the sliding window."""
        with self._lock:
            return self._queue_wait.percentile(95) * 1e3

    def backlog(self) -> int:
        """Requests accepted but not yet settled (queued, batching, or in a
        worker) — the pipeline-wide depth admission control sheds on.  The
        batcher's own queue empties into the worker pool almost instantly
        (dispatch is non-blocking), so the raw queue size is near zero even
        under heavy overload; this counter is where the backlog actually
        shows up."""
        with self._lock:
            return max(0, self.submitted - self.completed - self.failed)

    # -- resilience counters ---------------------------------------------------
    def record_admitted(self, count: int = 1) -> None:
        with self._lock:
            self.admitted += count

    def record_shed(self, reason: str, count: int = 1) -> None:
        """A request was shed before queueing (admission control)."""
        with self._lock:
            self.shed[reason] = self.shed.get(reason, 0) + count

    def record_deadline_expired(self, count: int = 1) -> None:
        """A request's deadline expired before it could be served."""
        with self._lock:
            self.deadline_expired += count

    def record_retry(self, count: int = 1) -> None:
        """A crashed batch was re-dispatched to surviving workers."""
        with self._lock:
            self.retries += count

    def record_breaker_transition(self, old: str, new: str) -> None:
        """The pipeline's circuit breaker moved between states."""
        key = f"{old}->{new}"
        with self._lock:
            self.breaker_transitions[key] = self.breaker_transitions.get(key, 0) + 1

    # -- reporting -----------------------------------------------------------
    def snapshot(self) -> Dict:
        """JSON-able summary of everything recorded so far."""
        with self._lock:
            elapsed = (
                self._last_done - self._first_submit
                if self._first_submit is not None and self._last_done is not None
                else 0.0
            )
            snap = {
                "requests": {
                    "submitted": self.submitted,
                    "completed": self.completed,
                    "failed": self.failed,
                    "in_flight": self.submitted - self.completed - self.failed,
                },
                "batches": {
                    "count": self.batches,
                    "mean_size": round(self.batched_samples / self.batches, 2)
                    if self.batches
                    else 0.0,
                    "max_size": self.max_batch,
                },
                "queue": {
                    "depth": int(self.queue_depth_fn()) if self.queue_depth_fn else 0,
                    "backlog": max(0, self.submitted - self.completed - self.failed),
                    "max_depth": self.max_queue_depth,
                    "capacity": self.queue_capacity,
                    "wait_p95_ms": round(self._queue_wait.percentile(95) * 1e3, 3),
                },
                "workers": None,
                "latency": self._latency.summary_ms(),
                "throughput_rps": round(self.completed / elapsed, 2) if elapsed > 0 else 0.0,
                "resilience": {
                    "admitted": self.admitted,
                    "shed": dict(self.shed),
                    "shed_total": sum(self.shed.values()),
                    "deadline_expired": self.deadline_expired,
                    "retries": self.retries,
                    "breaker_transitions": dict(self.breaker_transitions),
                },
            }
            breaker_fn = self.breaker_fn
            workers_fn = self.workers_fn
        if breaker_fn is not None:
            # Sampled outside the stats lock: the breaker has its own lock
            # and may call back into stats on a transition.
            snap["resilience"]["breaker"] = breaker_fn()
        if workers_fn is not None:
            # Same reasoning: the pool's worker count sits behind its own lock.
            snap["workers"] = int(workers_fn())
        return snap


class ServerStats:
    """Server-wide rollup of per-model snapshots, plus readiness.

    The per-model :class:`ModelStats` hold the raw counters; this class sums
    the resilience counters across pipelines and derives the readiness
    answer the ``/healthz`` endpoint reports: a server is ``degraded`` when
    any pipeline's circuit breaker is open (its pool cannot take traffic)
    or any queue is saturated past ``saturation_threshold`` of its
    admission bound (the next request would be shed anyway).
    """

    def __init__(self, saturation_threshold: float = 0.9):
        if not 0.0 < saturation_threshold <= 1.0:
            raise ValueError(
                f"saturation_threshold must be in (0, 1], got {saturation_threshold}"
            )
        self.saturation_threshold = saturation_threshold

    def rollup(self, snapshots: Dict[str, Dict]) -> Dict:
        """Aggregate ``{name/version: ModelStats.snapshot()}`` into the
        server-wide health/totals payload."""
        totals = {
            "submitted": 0, "completed": 0, "failed": 0,
            "shed_total": 0, "deadline_expired": 0, "retries": 0,
            "breaker_transitions": 0,
        }
        models: Dict[str, Dict] = {}
        degraded = []
        for key, snap in sorted(snapshots.items()):
            requests = snap.get("requests", {})
            resilience = snap.get("resilience", {})
            totals["submitted"] += requests.get("submitted", 0)
            totals["completed"] += requests.get("completed", 0)
            totals["failed"] += requests.get("failed", 0)
            totals["shed_total"] += resilience.get("shed_total", 0)
            totals["deadline_expired"] += resilience.get("deadline_expired", 0)
            totals["retries"] += resilience.get("retries", 0)
            totals["breaker_transitions"] += sum(
                resilience.get("breaker_transitions", {}).values()
            )
            breaker = resilience.get("breaker") or {}
            breaker_state = breaker.get("state", "closed")
            queue = snap.get("queue", {})
            capacity = queue.get("capacity")
            # Saturation is judged on the pipeline-wide backlog, not just the
            # batcher queue (which drains into the pool near-instantly).
            depth = max(queue.get("depth", 0), queue.get("backlog", 0))
            saturated = bool(
                capacity and depth >= self.saturation_threshold * capacity
            )
            reasons = []
            if breaker_state == "open":
                reasons.append("breaker_open")
            if saturated:
                reasons.append("queue_saturated")
            if reasons:
                degraded.append(key)
            models[key] = {
                "ready": not reasons,
                "reasons": reasons,
                "breaker": breaker_state,
                "queue_depth": depth,
                "queue_capacity": capacity,
            }
        return {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "models": models,
            "totals": totals,
        }
