"""Autoscaling control loop: grow, shrink, and park worker pools.

The :class:`Autoscaler` is a tick-driven controller over *scalable targets*
(the server wraps each live pipeline in one; the simulation harness feeds it
synthetic queues).  Every ``tick_interval_s`` it samples each target's
:class:`ScaleMetrics` — pipeline backlog, queue-wait p95, current worker
count — and applies an :class:`AutoscalePolicy`:

* **scale up** when the per-worker backlog exceeds ``backlog_high_per_worker``
  or the queue-wait p95 breaches ``queue_wait_slo_ms``, by ``scale_up_step``
  workers, at most once per ``up_cooldown_ticks`` — bursts grow the pool
  quickly but never faster than the cooldown;
* **scale down** only after ``down_hysteresis_ticks`` *consecutive* low-load
  ticks (backlog under ``backlog_low_per_worker`` per worker and the SLO
  comfortably met), and at most once per ``down_cooldown_ticks`` — the
  asymmetry (fast up, deliberate down) is what keeps the scaler from
  flapping on noisy load;
* **scale to zero**: a target idle (no new submissions, empty backlog) for
  ``idle_ticks_to_zero`` consecutive ticks is *parked* — the server retires
  the pipeline entirely (worker pool, batcher, everything) while the
  compiled program stays warm in the repository's LRU cache, so the next
  request revives it with a cache hit and bitwise-identical predictions.

All thresholds are counted in **ticks**, not seconds: the controller itself
is clock-free and fully deterministic given a metric sequence.  Real time
enters only through the :class:`~repro.serve.clock.Ticker` that calls
:meth:`Autoscaler.tick`, which is exactly the seam the deterministic
simulation tests (``tests/serve/simclock.py``) drive by hand.

Every action (and every *refusal* to act, when load asked for one) is
recorded as a :class:`ScalerDecision` in a bounded log surfaced through
``/stats`` — scaling that cannot be audited cannot be trusted.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.serve.clock import SYSTEM_CLOCK, Clock, Ticker


@dataclass(frozen=True)
class ScaleMetrics:
    """One tick's sample of a scalable target.

    ``backlog`` is the pipeline-wide accepted-but-unsettled request count
    (:meth:`repro.serve.stats.ModelStats.backlog`); ``queue_wait_p95_ms`` is
    the 95th percentile of time requests spent waiting for dispatch;
    ``submitted`` is the monotonically-increasing total used for idleness
    detection; ``workers`` is the pool's current size.
    """

    backlog: int
    workers: int
    submitted: int = 0
    queue_wait_p95_ms: float = 0.0


@dataclass(frozen=True)
class AutoscalePolicy:
    """When to grow, shrink, and park a pipeline's worker pool.

    Attributes
    ----------
    min_workers / max_workers:
        Hard bounds on the pool size; the scaler never resizes outside them.
    tick_interval_s:
        Control-loop period (real time; everything else counts ticks).
    backlog_high_per_worker:
        Scale up once ``backlog > high * workers``.
    backlog_low_per_worker:
        A tick is "low" when ``backlog <= low * workers`` (and the SLO is
        comfortably met); only consecutive low ticks shrink the pool.
    queue_wait_slo_ms:
        Optional latency SLO: queue-wait p95 above it scales up even with a
        small backlog; scale-down additionally requires p95 under half of it.
    scale_up_step / scale_down_step:
        Workers added/removed per action.
    up_cooldown_ticks / down_cooldown_ticks:
        Minimum ticks between two scale-ups / two scale-downs (a scale-up
        also resets the down cooldown: never shrink right after growing).
    down_hysteresis_ticks:
        Consecutive low ticks required before any scale-down.
    idle_ticks_to_zero:
        Park the target (scale-to-zero) after this many consecutive ticks
        with zero backlog and no new submissions; ``None`` disables parking.
    scale_queue_bound:
        Grow/shrink the pipeline's admission queue bound proportionally with
        the worker count (the server's target adapter applies it), so a
        scaled-up pool also accepts a proportionally deeper backlog — and
        readiness is judged against the *current* bound, not the startup one.
    """

    min_workers: int = 1
    max_workers: int = 4
    tick_interval_s: float = 0.25
    backlog_high_per_worker: float = 8.0
    backlog_low_per_worker: float = 1.0
    queue_wait_slo_ms: Optional[float] = None
    scale_up_step: int = 1
    scale_down_step: int = 1
    up_cooldown_ticks: int = 2
    down_cooldown_ticks: int = 4
    down_hysteresis_ticks: int = 4
    idle_ticks_to_zero: Optional[int] = None
    scale_queue_bound: bool = True

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {self.min_workers}")
        if self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers ({self.max_workers}) must be >= min_workers "
                f"({self.min_workers})"
            )
        if self.tick_interval_s <= 0:
            raise ValueError(f"tick_interval_s must be > 0, got {self.tick_interval_s}")
        if self.backlog_high_per_worker <= self.backlog_low_per_worker:
            raise ValueError(
                "backlog_high_per_worker must exceed backlog_low_per_worker "
                f"(got high={self.backlog_high_per_worker}, "
                f"low={self.backlog_low_per_worker}); equal thresholds flap"
            )
        if self.scale_up_step < 1 or self.scale_down_step < 1:
            raise ValueError("scale steps must be >= 1")
        if self.up_cooldown_ticks < 1 or self.down_cooldown_ticks < 1:
            raise ValueError("cooldowns must be >= 1 tick")
        if self.down_hysteresis_ticks < 1:
            raise ValueError(
                f"down_hysteresis_ticks must be >= 1, got {self.down_hysteresis_ticks}"
            )
        if self.idle_ticks_to_zero is not None and self.idle_ticks_to_zero < 1:
            raise ValueError(
                f"idle_ticks_to_zero must be >= 1 (or None), got {self.idle_ticks_to_zero}"
            )


@dataclass(frozen=True)
class ScalerDecision:
    """One audited control action (or blocked intent) for one target."""

    tick: int
    model: str
    action: str  # "scale_up" / "scale_down" / "park" / "revive" / "blocked_cooldown"
    from_workers: int
    to_workers: int
    reason: str
    backlog: int = 0
    queue_wait_p95_ms: float = 0.0

    def as_dict(self) -> Dict:
        return {
            "tick": self.tick,
            "model": self.model,
            "action": self.action,
            "from_workers": self.from_workers,
            "to_workers": self.to_workers,
            "reason": self.reason,
            "backlog": self.backlog,
            "queue_wait_p95_ms": round(self.queue_wait_p95_ms, 3),
        }


class ScalableTarget:
    """What the autoscaler needs from a pipeline (duck-typed; this class
    documents the contract and serves as a base for test fakes).

    ``metrics()`` samples the current :class:`ScaleMetrics`; ``resize(n)``
    applies a new worker count and returns the count actually in effect;
    ``park()`` retires the target entirely (scale-to-zero) — after it the
    scaler drops the target from its watch table.
    """

    def metrics(self) -> ScaleMetrics:  # pragma: no cover - interface
        raise NotImplementedError

    def resize(self, workers: int) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def park(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class _TargetState:
    target: ScalableTarget
    low_ticks: int = 0
    idle_ticks: int = 0
    last_submitted: Optional[int] = None
    ticks_since_up: int = 10**9  # "long ago": the first tick is never blocked
    ticks_since_down: int = 10**9


class Autoscaler:
    """Periodic controller applying one :class:`AutoscalePolicy` to many targets.

    ``watch(key, target)`` registers a pipeline; ``unwatch(key)`` removes it
    (the server calls both as pipelines build and retire).  ``tick()``
    evaluates every watched target once — it is called by the internal
    :class:`~repro.serve.clock.Ticker` in production and directly (or via a
    simulated clock) in tests.  ``on_park(key)`` is the server callback that
    actually retires a pipeline; the scaler only ever *asks* for a park.
    """

    def __init__(
        self,
        policy: Optional[AutoscalePolicy] = None,
        clock: Clock = SYSTEM_CLOCK,
        on_park: Optional[Callable[[str], None]] = None,
        decision_log: int = 256,
    ):
        self.policy = policy or AutoscalePolicy()
        self.clock = clock
        self.on_park = on_park
        self._lock = threading.Lock()
        self._targets: Dict[str, _TargetState] = {}
        self._decisions: Deque[ScalerDecision] = deque(maxlen=decision_log)
        self.tick_count = 0
        self.parks = 0
        self.revivals = 0
        self._ticker = Ticker(
            self.policy.tick_interval_s, self.tick, clock=clock, name="autoscaler"
        )

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "Autoscaler":
        self._ticker.start()
        return self

    def close(self) -> None:
        self._ticker.stop()

    # -- watch table -------------------------------------------------------------
    def watch(self, key: str, target: ScalableTarget, revived: bool = False) -> None:
        with self._lock:
            self._targets[key] = _TargetState(target)
            if revived:
                self.revivals += 1
                workers = self.policy.min_workers
                self._decisions.append(
                    ScalerDecision(
                        self.tick_count, key, "revive", 0, workers,
                        "request arrived for a parked model",
                    )
                )

    def unwatch(self, key: str) -> None:
        with self._lock:
            self._targets.pop(key, None)

    def watched(self) -> List[str]:
        with self._lock:
            return sorted(self._targets)

    # -- the control loop --------------------------------------------------------
    def tick(self) -> List[ScalerDecision]:
        """Evaluate every watched target once; returns this tick's decisions."""
        with self._lock:
            self.tick_count += 1
            tick = self.tick_count
            items = list(self._targets.items())
        decisions: List[ScalerDecision] = []
        parked: List[str] = []
        for key, state in items:
            decision = self._evaluate(tick, key, state)
            if decision is not None:
                decisions.append(decision)
                if decision.action == "park":
                    parked.append(key)
        if decisions:
            with self._lock:
                self._decisions.extend(decisions)
                self.parks += len(parked)
                for key in parked:
                    self._targets.pop(key, None)
        # The park callback tears down a pipeline (drains its batcher) —
        # run it outside the scaler lock.
        if self.on_park is not None:
            for key in parked:
                self.on_park(key)
        return decisions

    def _evaluate(
        self, tick: int, key: str, state: _TargetState
    ) -> Optional[ScalerDecision]:
        policy = self.policy
        try:
            metrics = state.target.metrics()
        except Exception:
            return None  # target mid-teardown; it will be unwatched shortly
        state.ticks_since_up += 1
        state.ticks_since_down += 1
        workers = max(1, metrics.workers)
        backlog = metrics.backlog
        p95 = metrics.queue_wait_p95_ms

        # -- idleness (scale to zero) -------------------------------------------
        idle_now = (
            backlog == 0
            and state.last_submitted is not None
            and metrics.submitted == state.last_submitted
        )
        state.idle_ticks = state.idle_ticks + 1 if idle_now else 0
        state.last_submitted = metrics.submitted
        if (
            policy.idle_ticks_to_zero is not None
            and state.idle_ticks >= policy.idle_ticks_to_zero
        ):
            return ScalerDecision(
                tick, key, "park", metrics.workers, 0,
                f"idle for {state.idle_ticks} ticks",
                backlog=backlog, queue_wait_p95_ms=p95,
            )

        # -- scale up -------------------------------------------------------------
        slo_breached = (
            policy.queue_wait_slo_ms is not None and p95 > policy.queue_wait_slo_ms
        )
        wants_up = backlog > policy.backlog_high_per_worker * workers or slo_breached
        if wants_up:
            state.low_ticks = 0
            reason = (
                f"queue-wait p95 {p95:.1f}ms over SLO {policy.queue_wait_slo_ms}ms"
                if slo_breached
                else f"backlog {backlog} over {policy.backlog_high_per_worker}/worker"
            )
            if metrics.workers >= policy.max_workers:
                return None  # pinned at the ceiling; nothing to audit every tick
            if state.ticks_since_up < policy.up_cooldown_ticks:
                return ScalerDecision(
                    tick, key, "blocked_cooldown", metrics.workers, metrics.workers,
                    f"{reason} (cooldown: {state.ticks_since_up}/"
                    f"{policy.up_cooldown_ticks} ticks since last scale-up)",
                    backlog=backlog, queue_wait_p95_ms=p95,
                )
            goal = min(policy.max_workers, metrics.workers + policy.scale_up_step)
            actual = state.target.resize(goal)
            state.ticks_since_up = 0
            state.ticks_since_down = 0  # growing resets the shrink clock too
            state.low_ticks = 0
            return ScalerDecision(
                tick, key, "scale_up", metrics.workers, actual, reason,
                backlog=backlog, queue_wait_p95_ms=p95,
            )

        # -- scale down -----------------------------------------------------------
        slo_comfortable = (
            policy.queue_wait_slo_ms is None or p95 <= 0.5 * policy.queue_wait_slo_ms
        )
        is_low = backlog <= policy.backlog_low_per_worker * workers and slo_comfortable
        state.low_ticks = state.low_ticks + 1 if is_low else 0
        if (
            is_low
            and metrics.workers > policy.min_workers
            and state.low_ticks >= policy.down_hysteresis_ticks
            and state.ticks_since_down >= policy.down_cooldown_ticks
        ):
            goal = max(policy.min_workers, metrics.workers - policy.scale_down_step)
            actual = state.target.resize(goal)
            state.ticks_since_down = 0
            state.low_ticks = 0
            return ScalerDecision(
                tick, key, "scale_down", metrics.workers, actual,
                f"low load for {policy.down_hysteresis_ticks} ticks "
                f"(backlog {backlog} <= {policy.backlog_low_per_worker}/worker)",
                backlog=backlog, queue_wait_p95_ms=p95,
            )
        return None

    # -- reporting ---------------------------------------------------------------
    def decisions(self, limit: Optional[int] = None) -> List[ScalerDecision]:
        with self._lock:
            log = list(self._decisions)
        return log[-limit:] if limit else log

    def snapshot(self) -> Dict:
        """JSON-able controller state for ``/stats``."""
        with self._lock:
            return {
                "policy": {
                    "min_workers": self.policy.min_workers,
                    "max_workers": self.policy.max_workers,
                    "tick_interval_s": self.policy.tick_interval_s,
                    "backlog_high_per_worker": self.policy.backlog_high_per_worker,
                    "backlog_low_per_worker": self.policy.backlog_low_per_worker,
                    "queue_wait_slo_ms": self.policy.queue_wait_slo_ms,
                    "idle_ticks_to_zero": self.policy.idle_ticks_to_zero,
                },
                "ticks": self.tick_count,
                "watched": sorted(self._targets),
                "parks": self.parks,
                "revivals": self.revivals,
                "decisions": [d.as_dict() for d in list(self._decisions)[-32:]],
            }
