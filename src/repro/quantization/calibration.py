"""Activation-range calibration strategies.

The paper (§5.3.3) uses "an iterative search algorithm to determine the
optimal range when quantizing activations"; :func:`calibrate_iterative`
implements that strategy as a golden-section-free grid refinement over
clipping thresholds that minimises quantization MSE on calibration data.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

import numpy as np

from repro.quantization.quantizer import QuantParams, quantization_mse


class CalibrationMethod(str, Enum):
    """Supported calibration strategies."""

    MINMAX = "minmax"
    PERCENTILE = "percentile"
    ITERATIVE = "iterative"


def calibrate_minmax(samples: np.ndarray, bitwidth: int, signed: bool = False) -> QuantParams:
    """Range = observed min/max."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ValueError("cannot calibrate on an empty sample")
    return QuantParams.from_range(samples.min(), samples.max(), bitwidth, signed)


def calibrate_percentile(
    samples: np.ndarray, bitwidth: int, percentile: float = 99.9, signed: bool = False
) -> QuantParams:
    """Range = symmetric percentile clip of the observed distribution."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ValueError("cannot calibrate on an empty sample")
    if not 50.0 < percentile <= 100.0:
        raise ValueError(f"percentile must be in (50, 100], got {percentile}")
    low = np.percentile(samples, 100.0 - percentile)
    high = np.percentile(samples, percentile)
    return QuantParams.from_range(low, high, bitwidth, signed)


def calibrate_iterative(
    samples: np.ndarray,
    bitwidth: int,
    signed: bool = False,
    num_candidates: int = 40,
    num_refinements: int = 3,
) -> QuantParams:
    """Search for the clipping range that minimises quantization MSE.

    Starting from the observed maximum magnitude, the search evaluates a grid
    of candidate clipping thresholds, keeps the best one, and refines the grid
    around it ``num_refinements`` times.  This mirrors the iterative range
    search the paper uses before Table 6.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ValueError("cannot calibrate on an empty sample")
    max_abs = float(np.max(np.abs(samples)))
    if max_abs == 0.0:
        return QuantParams.from_range(0.0, 1.0, bitwidth, signed)

    def params_for(threshold: float) -> QuantParams:
        if signed:
            return QuantParams.from_range(-threshold, threshold, bitwidth, signed=True)
        low = min(float(samples.min()), 0.0)
        return QuantParams.from_range(low, threshold, bitwidth, signed=False)

    low_frac, high_frac = 0.05, 1.0
    best_threshold = max_abs
    best_mse = np.inf
    for _ in range(num_refinements):
        candidates = np.linspace(low_frac, high_frac, num_candidates) * max_abs
        for threshold in candidates:
            if threshold <= 0:
                continue
            mse = quantization_mse(samples, params_for(float(threshold)))
            if mse < best_mse:
                best_mse = mse
                best_threshold = float(threshold)
        # Refine the grid around the current best threshold.
        span = (high_frac - low_frac) / num_candidates
        center = best_threshold / max_abs
        low_frac = max(0.01, center - 2 * span)
        high_frac = min(1.0, center + 2 * span)

    return params_for(best_threshold)


def calibrate(
    samples: np.ndarray,
    bitwidth: int,
    method: CalibrationMethod = CalibrationMethod.ITERATIVE,
    signed: bool = False,
) -> QuantParams:
    """Dispatch to the requested calibration strategy."""
    method = CalibrationMethod(method)
    if method is CalibrationMethod.MINMAX:
        return calibrate_minmax(samples, bitwidth, signed)
    if method is CalibrationMethod.PERCENTILE:
        return calibrate_percentile(samples, bitwidth, signed=signed)
    return calibrate_iterative(samples, bitwidth, signed=signed)
