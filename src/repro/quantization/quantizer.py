"""Uniform affine quantization primitives."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantParams:
    """Parameters of a uniform quantizer ``q = clip(round(x / scale) + zero_point)``.

    Attributes
    ----------
    scale:
        Step size between adjacent quantization levels (must be positive).
    zero_point:
        Integer level that represents real value 0.
    bitwidth:
        Number of bits of the integer representation.
    signed:
        If True the integer range is ``[-2^(b-1), 2^(b-1) - 1]``; otherwise
        ``[0, 2^b - 1]``.  The bit-serial engine uses unsigned activations.
    """

    scale: float
    zero_point: int
    bitwidth: int
    signed: bool = False

    def __post_init__(self) -> None:
        if self.scale <= 0 or not np.isfinite(self.scale):
            raise ValueError(f"scale must be positive and finite, got {self.scale}")
        if not 1 <= self.bitwidth <= 32:
            raise ValueError(f"bitwidth must be in [1, 32], got {self.bitwidth}")
        if not self.qmin <= self.zero_point <= self.qmax:
            raise ValueError(
                f"zero_point {self.zero_point} outside representable range "
                f"[{self.qmin}, {self.qmax}]"
            )

    @property
    def qmin(self) -> int:
        return -(1 << (self.bitwidth - 1)) if self.signed else 0

    @property
    def qmax(self) -> int:
        return (1 << (self.bitwidth - 1)) - 1 if self.signed else (1 << self.bitwidth) - 1

    @property
    def num_levels(self) -> int:
        return self.qmax - self.qmin + 1

    @classmethod
    def from_range(
        cls, low: float, high: float, bitwidth: int, signed: bool = False
    ) -> "QuantParams":
        """Build parameters covering the real interval ``[low, high]``.

        For unsigned quantization the interval is first clipped to include 0 so
        that the zero point is exactly representable (required for ReLU
        activations and for the bit-decomposition of Eq. 2 in the paper).
        """
        if high < low:
            raise ValueError(f"invalid range [{low}, {high}]")
        low = min(float(low), 0.0)
        high = max(float(high), 0.0)
        if high == low:
            # Degenerate (all-zero) tensors still need a valid scale.
            high = low + 1.0
        qmin = -(1 << (bitwidth - 1)) if signed else 0
        qmax = (1 << (bitwidth - 1)) - 1 if signed else (1 << bitwidth) - 1
        scale = (high - low) / (qmax - qmin)
        zero_point = int(round(qmin - low / scale))
        zero_point = int(np.clip(zero_point, qmin, qmax))
        return cls(scale=scale, zero_point=zero_point, bitwidth=bitwidth, signed=signed)

    @classmethod
    def symmetric(cls, max_abs: float, bitwidth: int) -> "QuantParams":
        """Signed symmetric quantizer for weights (zero_point = 0)."""
        max_abs = float(max_abs)
        if max_abs <= 0:
            max_abs = 1.0
        qmax = (1 << (bitwidth - 1)) - 1
        return cls(scale=max_abs / qmax, zero_point=0, bitwidth=bitwidth, signed=True)


def quantize(x: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantize real values to integers (stored as int64 for headroom)."""
    q = np.round(np.asarray(x, dtype=np.float64) / params.scale) + params.zero_point
    return np.clip(q, params.qmin, params.qmax).astype(np.int64)


def dequantize(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """Map integer levels back to real values."""
    return (np.asarray(q, dtype=np.float64) - params.zero_point) * params.scale


def fake_quantize(x: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantize then dequantize (simulated quantization in the real domain)."""
    return dequantize(quantize(x, params), params)


def quantization_mse(x: np.ndarray, params: QuantParams) -> float:
    """Mean squared error introduced by quantizing ``x`` with ``params``."""
    return float(np.mean((fake_quantize(x, params) - x) ** 2))
