"""Activation observer / fake-quantization module."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.module import Module
from repro.quantization.calibration import CalibrationMethod, calibrate
from repro.quantization.quantizer import QuantParams, fake_quantize


class ActivationQuantizer(Module):
    """Observes activation statistics, then applies fake quantization.

    Life cycle:

    1. ``observe`` mode — forward passes record samples (sub-sampled to bound
       memory); gradients pass straight through.
    2. :meth:`freeze` — computes :class:`QuantParams` from the recorded
       samples using the configured calibration method.
    3. frozen mode — forward applies fake quantization; backward uses a
       straight-through estimator (gradients pass through unchanged inside the
       representable range, zero outside), which is what quantization-aware
       retraining in the paper relies on.
    """

    def __init__(
        self,
        bitwidth: int = 8,
        method: CalibrationMethod = CalibrationMethod.ITERATIVE,
        max_samples: int = 100_000,
    ):
        super().__init__()
        if bitwidth < 1:
            raise ValueError(f"bitwidth must be >= 1, got {bitwidth}")
        self.bitwidth = bitwidth
        self.method = CalibrationMethod(method)
        self.max_samples = max_samples
        self.params: Optional[QuantParams] = None
        self.observing = True
        self._samples: List[np.ndarray] = []
        self._mask = None

    # -- calibration ---------------------------------------------------------
    def reset(self) -> None:
        """Clear recorded samples and any frozen parameters."""
        self.params = None
        self.observing = True
        self._samples = []

    def freeze(self, bitwidth: Optional[int] = None) -> QuantParams:
        """Compute quantization parameters from observed samples and stop observing."""
        if bitwidth is not None:
            self.bitwidth = bitwidth
        if not self._samples:
            raise RuntimeError("no activation samples observed before freeze()")
        samples = np.concatenate([s.ravel() for s in self._samples])
        self.params = calibrate(samples, self.bitwidth, self.method, signed=False)
        self.observing = False
        return self.params

    def set_bitwidth(self, bitwidth: int) -> QuantParams:
        """Re-derive parameters for a new bitwidth from the already-observed samples.

        Reducing the activation bitwidth at runtime is the paper's central
        knob; this keeps the calibrated clipping range and just changes the
        number of levels.
        """
        if not self._samples:
            raise RuntimeError("no activation samples observed; cannot re-calibrate")
        self.bitwidth = bitwidth
        samples = np.concatenate([s.ravel() for s in self._samples])
        self.params = calibrate(samples, bitwidth, self.method, signed=False)
        return self.params

    # -- forward/backward ----------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.observing:
            flat = np.asarray(x, dtype=np.float64).ravel()
            if flat.size > self.max_samples:
                # Deterministic stride subsampling keeps calibration reproducible.
                stride = int(np.ceil(flat.size / self.max_samples))
                flat = flat[::stride]
            self._samples.append(flat.copy())
            self._mask = np.ones_like(x, dtype=bool)
            return x
        if self.params is None:
            raise RuntimeError("ActivationQuantizer used after observe without freeze()")
        # Straight-through estimator: pass gradients inside the clip range.
        low = (self.params.qmin - self.params.zero_point) * self.params.scale
        high = (self.params.qmax - self.params.zero_point) * self.params.scale
        self._mask = (x >= low) & (x <= high)
        return fake_quantize(x, self.params)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() called before forward()")
        return grad_output * self._mask
