"""Weight quantization helpers (used by the CMSIS-style int8 baseline)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.quantization.quantizer import QuantParams, dequantize, quantize


def quantize_weight_tensor(
    weight: np.ndarray, bitwidth: int = 8
) -> Tuple[np.ndarray, QuantParams]:
    """Per-tensor symmetric quantization of a weight tensor.

    Returns the integer weights and their quantization parameters.  The
    CMSIS-NN baseline in the paper stores 8-bit (q7) weights; the weight-pool
    path never stores weights explicitly (only LUT entries), so this helper is
    used by the baseline and by the LUT bitwidth quantization.
    """
    weight = np.asarray(weight, dtype=np.float64)
    params = QuantParams.symmetric(np.max(np.abs(weight)) if weight.size else 1.0, bitwidth)
    return quantize(weight, params), params


def dequantize_weight_tensor(q_weight: np.ndarray, params: QuantParams) -> np.ndarray:
    """Inverse of :func:`quantize_weight_tensor`."""
    return dequantize(q_weight, params)
