"""Uniform quantization substrate.

The bit-serial weight-pool engine operates on unsigned quantized activations
(the bit-decomposition of Eq. 2 assumes non-negative integers, which holds
after ReLU with an unsigned affine quantizer).  This package provides:

* :class:`QuantParams` / :func:`quantize` / :func:`dequantize` — uniform
  affine quantization.
* range calibration strategies, including the paper's iterative search for the
  optimal clipping range (§5.3.3).
* :class:`ActivationQuantizer` — an observer/fake-quant module.
* weight quantization helpers used by the CMSIS-style int8 baseline.
"""

from repro.quantization.quantizer import (
    QuantParams,
    dequantize,
    fake_quantize,
    quantize,
)
from repro.quantization.calibration import (
    calibrate_minmax,
    calibrate_percentile,
    calibrate_iterative,
    CalibrationMethod,
)
from repro.quantization.activation import ActivationQuantizer
from repro.quantization.weights import quantize_weight_tensor

__all__ = [
    "QuantParams",
    "quantize",
    "dequantize",
    "fake_quantize",
    "calibrate_minmax",
    "calibrate_percentile",
    "calibrate_iterative",
    "CalibrationMethod",
    "ActivationQuantizer",
    "quantize_weight_tensor",
]
